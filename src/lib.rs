//! # graphh
//!
//! Facade crate for the GraphH reproduction (CLUSTER 2017: *GraphH: High Performance
//! Big Graph Analytics in Small Clusters*, Sun et al.). It re-exports the public API
//! of every workspace crate so applications can depend on a single crate:
//!
//! ```
//! use graphh::prelude::*;
//!
//! // 1. Get a graph (here: a small synthetic web-like graph).
//! let graph = RmatGenerator::new(10, 8).generate(42);
//!
//! // 2. Pre-process it into tiles (the paper's SPE / two-stage partitioning).
//! let partitioned = Spe::partition(&graph, &SpeConfig::with_tile_count("demo", &graph, 16)).unwrap();
//!
//! // 3. Run a GAB program on a simulated cluster (the paper's MPE).
//! let engine = GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(3)));
//! let result = engine.run(&partitioned, &PageRank::new(10)).unwrap();
//!
//! assert_eq!(result.values.len() as u64, graph.num_vertices());
//! assert!(result.metrics.total_seconds() > 0.0);
//! ```
//!
//! The individual layers are documented in their own crates:
//!
//! * [`graph`] — graph data structures, generators, dataset stand-ins,
//! * [`storage`] — DFS substrate and metered local storage,
//! * [`compress`] — snappy / zlib / varint-delta codecs,
//! * [`partition`] — two-stage partitioning into tiles,
//! * [`cluster`] — the simulated cluster: config, metrics, cost model, broadcast,
//! * [`cache`] — the edge cache,
//! * [`pool`] — the persistent fork-join worker pool behind intra-server tile
//!   parallelism (the paper's `T` compute threads) and the SPE's parallel
//!   passes,
//! * [`core`] — the GAB model, the GraphH engine, executors and the algorithms,
//! * [`runtime`] — the parallel worker runtime (one OS thread per server ×
//!   `T` tile threads inside it; broadcast planes over in-process channels or
//!   TCP sockets — the latter runs each server as its own process via the
//!   `graphh-node` binary — plus superstep barriers),
//! * [`baselines`] — Pregel+, GraphD, PowerGraph, PowerLyra and Chaos.
//!
//! To run the engine on real threads instead of the sequential reference loop:
//!
//! ```
//! use graphh::prelude::*;
//! use std::sync::Arc;
//!
//! let graph = RmatGenerator::new(8, 4).generate(1);
//! let partitioned = Spe::partition(&graph, &SpeConfig::with_tile_count("demo", &graph, 8)).unwrap();
//! let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(3));
//! let threaded = GraphHEngine::with_executor(config, Arc::new(ThreadedExecutor::new()));
//! let result = threaded.run(&partitioned, &PageRank::new(5)).unwrap();
//! assert_eq!(result.executor, "threaded");
//! ```

pub use graphh_baselines as baselines;
pub use graphh_cache as cache;
pub use graphh_cluster as cluster;
pub use graphh_compress as compress;
pub use graphh_core as core;
pub use graphh_graph as graph;
pub use graphh_obs as obs;
pub use graphh_partition as partition;
pub use graphh_pool as pool;
pub use graphh_runtime as runtime;
pub use graphh_storage as storage;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use graphh_baselines::{
        ChaosConfig, ChaosEngine, CostSheet, GasConfig, GasEngine, PregelConfig, PregelEngine,
        SystemKind,
    };
    pub use graphh_cache::{CacheMode, EdgeCache, EdgeCacheConfig};
    pub use graphh_cluster::{ClusterConfig, CommunicationMode, CostModel, MachineSpec};
    pub use graphh_compress::Codec;
    pub use graphh_core::{
        Bfs, DegreeCentrality, Direction, DirectionMode, DirectionOptimizingBfs, Executor,
        FrontierStats, GabProgram, GraphHConfig, GraphHEngine, LabelPropagation, PageRank,
        RunResult, SequentialExecutor, Sssp, Wcc,
    };
    pub use graphh_graph::datasets::{Dataset, DatasetSpec};
    pub use graphh_graph::generators::{
        ChungLuGenerator, ErdosRenyiGenerator, GraphGenerator, RmatGenerator,
    };
    pub use graphh_graph::{Edge, EdgeList, Graph, GraphBuilder};
    pub use graphh_partition::{PartitionedGraph, Spe, SpeConfig, Tile};
    pub use graphh_runtime::ThreadedExecutor;
    pub use graphh_storage::{Dfs, DfsConfig, LocalDiskBackend, MemoryBackend};
}
