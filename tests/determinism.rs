//! Differential determinism suite: the threaded runtime must be a drop-in
//! replacement for the sequential reference executor.
//!
//! 3 seeds × {PageRank, SSSP, WCC} × {sequential, threaded} on a 4-server
//! cluster: `result.values` must be **bit-identical** (not approximately
//! equal), the superstep counts must agree, and the scheduling-independent
//! byte counters must match exactly.

use graphh::prelude::*;
use std::sync::Arc;

const SEEDS: [u64; 3] = [2017, 42, 7];
const SERVERS: u32 = 4;

fn engine_pair() -> (GraphHEngine, GraphHEngine) {
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
    (
        GraphHEngine::with_executor(config.clone(), Arc::new(SequentialExecutor::new())),
        GraphHEngine::with_executor(config, Arc::new(ThreadedExecutor::new())),
    )
}

fn assert_bit_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.values.len(), b.values.len(), "{what}: value count");
    for (i, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: vertex {i} diverged ({x} vs {y})"
        );
    }
    assert_eq!(
        a.supersteps_run, b.supersteps_run,
        "{what}: superstep count"
    );
    assert_eq!(
        a.updated_ratio_per_superstep, b.updated_ratio_per_superstep,
        "{what}: convergence trajectory"
    );
    assert_eq!(
        a.metrics.total_network_bytes(),
        b.metrics.total_network_bytes(),
        "{what}: network bytes"
    );
    assert_eq!(
        a.metrics.total_disk_bytes(),
        b.metrics.total_disk_bytes(),
        "{what}: disk bytes"
    );
}

#[test]
fn threaded_matches_sequential_on_pagerank() {
    let (seq, thr) = engine_pair();
    for seed in SEEDS {
        let g = RmatGenerator::new(8, 6).generate(seed);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("det", &g, 11)).unwrap();
        let a = seq.run(&p, &PageRank::new(10)).unwrap();
        let b = thr.run(&p, &PageRank::new(10)).unwrap();
        assert_bit_identical(&a, &b, &format!("pagerank seed {seed}"));
    }
}

#[test]
fn threaded_matches_sequential_on_sssp() {
    let (seq, thr) = engine_pair();
    for seed in SEEDS {
        let g = RmatGenerator::new(8, 5).generate(seed);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("det", &g, 11)).unwrap();
        let source = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.out_degree(v))
            .unwrap_or(0);
        let a = seq.run(&p, &Sssp::new(source)).unwrap();
        let b = thr.run(&p, &Sssp::new(source)).unwrap();
        assert_bit_identical(&a, &b, &format!("sssp seed {seed}"));
    }
}

#[test]
fn threaded_matches_sequential_on_wcc() {
    let (seq, thr) = engine_pair();
    for seed in SEEDS {
        // WCC needs the symmetrised graph.
        let g = RmatGenerator::new(7, 4).simplified().generate(seed);
        let mut b = GraphBuilder::new()
            .with_num_vertices(g.num_vertices())
            .symmetric(true);
        for e in g.edges().iter() {
            b.add_edge(e);
        }
        let sym = b.build().unwrap();
        let p = Spe::partition(&sym, &SpeConfig::with_tile_count("det", &sym, 11)).unwrap();
        let a = seq.run(&p, &Wcc::new()).unwrap();
        let t = thr.run(&p, &Wcc::new()).unwrap();
        assert_bit_identical(&a, &t, &format!("wcc seed {seed}"));
    }
}

/// The executors also agree across every communication mode / compressor
/// combination, so the wire path cannot smuggle in nondeterminism.
#[test]
fn threaded_matches_sequential_across_wire_configs() {
    use graphh::cluster::CommunicationMode;
    use graphh::compress::Codec;

    let g = RmatGenerator::new(7, 5).generate(13);
    let p = Spe::partition(&g, &SpeConfig::with_tile_count("det", &g, 9)).unwrap();
    for mode in [
        CommunicationMode::Dense,
        CommunicationMode::Sparse,
        CommunicationMode::default(),
    ] {
        for compressor in [None, Some(Codec::Snappy), Some(Codec::Zlib1)] {
            let mut config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
            config.communication = mode;
            config.message_compressor = compressor;
            let seq =
                GraphHEngine::with_executor(config.clone(), Arc::new(SequentialExecutor::new()));
            let thr = GraphHEngine::with_executor(config, Arc::new(ThreadedExecutor::new()));
            let a = seq.run(&p, &PageRank::new(5)).unwrap();
            let b = thr.run(&p, &PageRank::new(5)).unwrap();
            assert_bit_identical(&a, &b, &format!("mode {mode:?} codec {compressor:?}"));
        }
    }
}
