//! Differential determinism suite: the threaded runtime must be a drop-in
//! replacement for the sequential reference executor.
//!
//! 3 seeds × {PageRank, SSSP, WCC} × {sequential, threaded} on a 4-server
//! cluster: `result.values` must be **bit-identical** (not approximately
//! equal), the superstep counts must agree, and the scheduling-independent
//! byte counters must match exactly. The direction axis rides the same
//! harness: forced-push, forced-pull and auto-switching runs of the
//! min-combine kernels must also agree bit for bit, on both executors and on
//! every registered program.

use graphh::prelude::*;
use std::sync::Arc;

const SEEDS: [u64; 3] = [2017, 42, 7];
const SERVERS: u32 = 4;

fn engine_pair() -> (GraphHEngine, GraphHEngine) {
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
    (
        GraphHEngine::with_executor(config.clone(), Arc::new(SequentialExecutor::new())),
        GraphHEngine::with_executor(config, Arc::new(ThreadedExecutor::new())),
    )
}

fn assert_bit_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.values.len(), b.values.len(), "{what}: value count");
    for (i, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: vertex {i} diverged ({x} vs {y})"
        );
    }
    assert_eq!(
        a.supersteps_run, b.supersteps_run,
        "{what}: superstep count"
    );
    assert_eq!(
        a.updated_ratio_per_superstep, b.updated_ratio_per_superstep,
        "{what}: convergence trajectory"
    );
    assert_eq!(
        a.metrics.total_network_bytes(),
        b.metrics.total_network_bytes(),
        "{what}: network bytes"
    );
    assert_eq!(
        a.metrics.total_disk_bytes(),
        b.metrics.total_disk_bytes(),
        "{what}: disk bytes"
    );
}

#[test]
fn threaded_matches_sequential_on_pagerank() {
    let (seq, thr) = engine_pair();
    for seed in SEEDS {
        let g = RmatGenerator::new(8, 6).generate(seed);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("det", &g, 11)).unwrap();
        let a = seq.run(&p, &PageRank::new(10)).unwrap();
        let b = thr.run(&p, &PageRank::new(10)).unwrap();
        assert_bit_identical(&a, &b, &format!("pagerank seed {seed}"));
    }
}

#[test]
fn threaded_matches_sequential_on_sssp() {
    let (seq, thr) = engine_pair();
    for seed in SEEDS {
        let g = RmatGenerator::new(8, 5).generate(seed);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("det", &g, 11)).unwrap();
        let source = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.out_degree(v))
            .unwrap_or(0);
        let a = seq.run(&p, &Sssp::new(source)).unwrap();
        let b = thr.run(&p, &Sssp::new(source)).unwrap();
        assert_bit_identical(&a, &b, &format!("sssp seed {seed}"));
    }
}

#[test]
fn threaded_matches_sequential_on_wcc() {
    let (seq, thr) = engine_pair();
    for seed in SEEDS {
        // WCC needs the symmetrised graph.
        let g = RmatGenerator::new(7, 4).simplified().generate(seed);
        let mut b = GraphBuilder::new()
            .with_num_vertices(g.num_vertices())
            .symmetric(true);
        for e in g.edges().iter() {
            b.add_edge(e);
        }
        let sym = b.build().unwrap();
        let p = Spe::partition(&sym, &SpeConfig::with_tile_count("det", &sym, 11)).unwrap();
        let a = seq.run(&p, &Wcc::new()).unwrap();
        let t = thr.run(&p, &Wcc::new()).unwrap();
        assert_bit_identical(&a, &t, &format!("wcc seed {seed}"));
    }
}

/// The second parallelism axis: `threads_per_server` (the paper's T compute
/// threads inside every server) must never change a single bit of the result,
/// on either executor. The T=1 sequential run is the pinned reference.
#[test]
fn threads_per_server_axis_is_bit_identical() {
    let g = RmatGenerator::new(8, 6).generate(SEEDS[0]);
    let p = Spe::partition(&g, &SpeConfig::with_tile_count("det", &g, 11)).unwrap();
    let sym = {
        let base = RmatGenerator::new(7, 4).simplified().generate(SEEDS[0]);
        let mut b = GraphBuilder::new()
            .with_num_vertices(base.num_vertices())
            .symmetric(true);
        for e in base.edges().iter() {
            b.add_edge(e);
        }
        b.build().unwrap()
    };
    let psym = Spe::partition(&sym, &SpeConfig::with_tile_count("det", &sym, 11)).unwrap();

    type Workload<'a> = (&'a str, &'a PartitionedGraph, Box<dyn GabProgram>);
    let workloads: Vec<Workload> = vec![
        ("pagerank", &p, Box::new(PageRank::new(8))),
        ("sssp", &p, Box::new(Sssp::new(0))),
        ("wcc", &psym, Box::new(Wcc::new())),
    ];
    for (name, part, program) in workloads {
        let reference = GraphHEngine::with_executor(
            GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS))
                .with_threads_per_server(1),
            Arc::new(SequentialExecutor::new()),
        )
        .run(part, program.as_ref())
        .unwrap();
        for threads in [1u32, 2, 4] {
            let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS))
                .with_threads_per_server(threads);
            let seq =
                GraphHEngine::with_executor(config.clone(), Arc::new(SequentialExecutor::new()))
                    .run(part, program.as_ref())
                    .unwrap();
            let thr = GraphHEngine::with_executor(config, Arc::new(ThreadedExecutor::new()))
                .run(part, program.as_ref())
                .unwrap();
            assert_bit_identical(&reference, &seq, &format!("{name} seq T={threads}"));
            assert_bit_identical(&reference, &thr, &format!("{name} thr T={threads}"));
        }
    }
}

/// The executors also agree across every communication mode / compressor
/// combination, so the wire path cannot smuggle in nondeterminism.
#[test]
fn threaded_matches_sequential_across_wire_configs() {
    use graphh::cluster::CommunicationMode;
    use graphh::compress::Codec;

    let g = RmatGenerator::new(7, 5).generate(13);
    let p = Spe::partition(&g, &SpeConfig::with_tile_count("det", &g, 9)).unwrap();
    for mode in [
        CommunicationMode::Dense,
        CommunicationMode::Sparse,
        CommunicationMode::default(),
    ] {
        for compressor in [
            None,
            Some(Codec::Raw),
            Some(Codec::Snappy),
            Some(Codec::Zlib1),
            Some(Codec::Zlib3),
            Some(Codec::VarintDelta),
        ] {
            let mut config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
            config.communication = mode;
            config.message_compressor = compressor;
            let seq =
                GraphHEngine::with_executor(config.clone(), Arc::new(SequentialExecutor::new()));
            let thr = GraphHEngine::with_executor(config, Arc::new(ThreadedExecutor::new()));
            let a = seq.run(&p, &PageRank::new(5)).unwrap();
            let b = thr.run(&p, &PageRank::new(5)).unwrap();
            assert_bit_identical(&a, &b, &format!("mode {mode:?} codec {compressor:?}"));
        }
    }
}

/// Corrupt wire bytes must surface as `Err` from the wire path — never as a
/// panic (the worker converts decode errors into a clean abort; a panic would
/// take the whole process down). Random byte flips over real encoded messages
/// exercise every decode branch in every wire config.
#[test]
fn corrupt_wire_bytes_error_but_never_panic() {
    use graphh::cluster::{BroadcastMessage, CommunicationMode, MessageCodec, ServerMetrics};
    use graphh::compress::Codec;

    // Deterministic xorshift so failures are reproducible.
    let mut state = 0x2017_2017_2017_2017u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let messages = [
        BroadcastMessage::new(0, 64, (0..64).map(|v| (v, v as f64 * 0.5)).collect()),
        BroadcastMessage::new(100, 1100, vec![(100, 1.0), (512, -2.0), (1099, 3.5)]),
        BroadcastMessage::new(7, 7, vec![]),
    ];
    for mode in [
        CommunicationMode::Dense,
        CommunicationMode::Sparse,
        CommunicationMode::default(),
    ] {
        for compressor in [
            None,
            Some(Codec::Snappy),
            Some(Codec::Zlib1),
            Some(Codec::Zlib3),
            Some(Codec::VarintDelta),
        ] {
            let codec = MessageCodec::new(mode, compressor);
            for message in &messages {
                let mut sender = ServerMetrics::default();
                let (wire, _) = codec.encode(message, &mut sender);
                for _ in 0..200 {
                    let mut corrupt = wire.clone();
                    // 1-3 random byte flips, occasionally a truncation.
                    for _ in 0..(1 + next() as usize % 3) {
                        let i = next() as usize % corrupt.len().max(1);
                        corrupt[i] ^= (1 + next() % 255) as u8;
                    }
                    if next() % 4 == 0 {
                        corrupt.truncate(next() as usize % (corrupt.len() + 1));
                    }
                    let outcome = std::panic::catch_unwind(|| {
                        let mut receiver = ServerMetrics::default();
                        codec.decode(&corrupt, &mut receiver).map(|m| m.updates)
                    });
                    // Ok(Ok(_)) (the flip happened to stay valid) and
                    // Ok(Err(_)) are both acceptable; a panic is not.
                    assert!(
                        outcome.is_ok(),
                        "decode panicked on corrupt wire bytes (mode {mode:?}, compressor {compressor:?})"
                    );
                }
            }
        }
    }

    // Decoded-but-corrupt payloads must be rejected, not handed to
    // apply_updates: ids outside the range or out of order are the cases that
    // used to panic with an out-of-bounds index.
    let mut bad_sparse = vec![1u8];
    bad_sparse.extend_from_slice(&10u32.to_le_bytes()); // range_start
    bad_sparse.extend_from_slice(&20u32.to_le_bytes()); // range_end
    bad_sparse.extend_from_slice(&1u32.to_le_bytes()); // count
    bad_sparse.extend_from_slice(&9999u32.to_le_bytes()); // id outside range
    bad_sparse.extend_from_slice(&1.0f64.to_le_bytes());
    assert!(BroadcastMessage::decode(&bad_sparse).is_err());
}

/// A directed RMAT partition and its symmetrised sibling, shared by the
/// registry-wide sweeps below.
fn workload_graphs(seed: u64) -> (Graph, PartitionedGraph, Graph, PartitionedGraph) {
    let dir = RmatGenerator::new(8, 5).generate(seed);
    let pdir = Spe::partition(&dir, &SpeConfig::with_tile_count("det", &dir, 11)).unwrap();
    let base = RmatGenerator::new(7, 4).simplified().generate(seed);
    let mut b = GraphBuilder::new()
        .with_num_vertices(base.num_vertices())
        .symmetric(true);
    for e in base.edges().iter() {
        b.add_edge(e);
    }
    let sym = b.build().unwrap();
    let psym = Spe::partition(&sym, &SpeConfig::with_tile_count("det", &sym, 11)).unwrap();
    (dir, pdir, sym, psym)
}

/// *Every* registered program — including the kernels that used to be
/// orphaned (`bfs`, `degree-centrality`) and the new ones (`bfs-dopt`,
/// `labelprop`) — is bit-identical between the sequential reference and the
/// threaded runtime.
#[test]
fn every_registry_program_is_bit_identical_across_executors() {
    use graphh::core::registry::{ProgramContext, ProgramOptions, PROGRAMS};

    let (seq, thr) = engine_pair();
    for seed in [SEEDS[0], SEEDS[1]] {
        let (dir, pdir, sym, psym) = workload_graphs(seed);
        for spec in PROGRAMS {
            let (graph, part) = if spec.symmetrize_input {
                (&sym, &psym)
            } else {
                (&dir, &pdir)
            };
            let mut opts = ProgramOptions::new();
            if spec.accepts("supersteps") {
                opts.set("supersteps", "8");
            }
            let program = spec
                .build(&ProgramContext::new(graph.out_degrees()), &opts)
                .unwrap();
            let a = seq.run(part, program.as_ref()).unwrap();
            let b = thr.run(part, program.as_ref()).unwrap();
            assert_bit_identical(&a, &b, &format!("{} seed {seed}", spec.name));
        }
    }
}

/// The tentpole invariant: for the min-combine kernels, a forced-push run is
/// bit-identical to a forced-pull run — values, superstep counts and
/// convergence trajectory — on both executors. (Byte counters are *not*
/// compared across directions: push legitimately skips different tiles.)
#[test]
fn forced_push_matches_forced_pull_bit_for_bit() {
    let (dir, pdir, _sym, psym) = workload_graphs(SEEDS[0]);
    let source = (0..dir.num_vertices() as u32)
        .max_by_key(|&v| dir.out_degree(v))
        .unwrap_or(0);

    type Workload<'a> = (&'a str, &'a PartitionedGraph, Box<dyn GabProgram>);
    let workloads: Vec<Workload> = vec![
        ("sssp", &pdir, Box::new(Sssp::new(source))),
        ("bfs", &pdir, Box::new(Bfs::new(source))),
        (
            "bfs-dopt",
            &pdir,
            Box::new(DirectionOptimizingBfs::new(source)),
        ),
        ("wcc", &psym, Box::new(Wcc::new())),
    ];
    for (name, part, program) in workloads {
        let config_for = |mode: DirectionMode| {
            GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS))
                .with_direction_mode(mode)
        };
        let reference = GraphHEngine::with_executor(
            config_for(DirectionMode::ForcePull),
            Arc::new(SequentialExecutor::new()),
        )
        .run(part, program.as_ref())
        .unwrap();
        for mode in [DirectionMode::ForcePush, DirectionMode::Auto] {
            let seq =
                GraphHEngine::with_executor(config_for(mode), Arc::new(SequentialExecutor::new()))
                    .run(part, program.as_ref())
                    .unwrap();
            let thr =
                GraphHEngine::with_executor(config_for(mode), Arc::new(ThreadedExecutor::new()))
                    .run(part, program.as_ref())
                    .unwrap();
            assert_values_and_trajectory(&reference, &seq, &format!("{name} seq {mode:?}"));
            assert_values_and_trajectory(&reference, &thr, &format!("{name} thr {mode:?}"));
        }
    }
}

/// Like [`assert_bit_identical`] without the byte counters: the direction
/// axis changes which tiles are touched (and hence disk/cache traffic) but
/// never a value or the convergence trajectory.
fn assert_values_and_trajectory(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.values.len(), b.values.len(), "{what}: value count");
    for (i, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: vertex {i} diverged ({x} vs {y})"
        );
    }
    assert_eq!(
        a.supersteps_run, b.supersteps_run,
        "{what}: superstep count"
    );
    assert_eq!(
        a.updated_ratio_per_superstep, b.updated_ratio_per_superstep,
        "{what}: convergence trajectory"
    );
    assert_eq!(
        a.metrics.total_network_bytes(),
        b.metrics.total_network_bytes(),
        "{what}: network bytes (direction must never change wire bytes)"
    );
}

/// Force-push on a pull-only program must be rejected at plan time, loudly —
/// not silently degraded to pull.
#[test]
fn force_push_on_a_pull_only_program_is_a_plan_error() {
    let (_, pdir, _, _) = workload_graphs(SEEDS[0]);
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS))
        .with_direction_mode(DirectionMode::ForcePush);
    let engine = GraphHEngine::with_executor(config, Arc::new(SequentialExecutor::new()));
    let err = engine.run(&pdir, &PageRank::new(3)).unwrap_err();
    let rendered = err.to_string();
    assert!(rendered.contains("pull-only"), "{rendered}");
}

/// Auto mode actually *switches*: with aggressive thresholds, bfs-dopt runs
/// both pull supersteps (the dense start) and push supersteps (the sparse
/// tail) in one run — asserted from the recorded spans, which both executors
/// must agree on superstep by superstep.
#[test]
fn auto_mode_switches_direction_and_both_executors_agree_on_when() {
    use graphh::obs::{TraceConfig, Tracer};
    use std::collections::BTreeMap;

    let (dir, pdir, _, _) = workload_graphs(SEEDS[0]);
    let source = (0..dir.num_vertices() as u32)
        .max_by_key(|&v| dir.out_degree(v))
        .unwrap_or(0);
    // α=β=2: push whenever the frontier holds less than half the edges and
    // half the vertices — guarantees both directions appear on this workload.
    let program = DirectionOptimizingBfs::with_thresholds(source, 2, 2);
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));

    let mut schedules: Vec<BTreeMap<u32, &'static str>> = Vec::new();
    let seq_tracer = Tracer::new();
    let seq = GraphHEngine::with_executor(
        config.clone(),
        Arc::new(SequentialExecutor::with_trace(TraceConfig {
            tracer: seq_tracer.clone(),
        })),
    )
    .run(&pdir, &program)
    .unwrap();
    let thr_tracer = Tracer::new();
    let thr = GraphHEngine::with_executor(
        config,
        Arc::new(ThreadedExecutor::with_trace(TraceConfig {
            tracer: thr_tracer.clone(),
        })),
    )
    .run(&pdir, &program)
    .unwrap();
    assert_values_and_trajectory(&seq, &thr, "bfs-dopt auto");

    for tracer in [seq_tracer, thr_tracer] {
        let mut schedule: BTreeMap<u32, &'static str> = BTreeMap::new();
        for span in tracer.drain() {
            if span.name == "tile-compute" {
                let step = span.superstep.expect("compute spans carry a superstep");
                let direction = span.direction.expect("compute spans carry a direction");
                // Every server agrees on the per-superstep direction.
                assert_eq!(*schedule.entry(step).or_insert(direction), direction);
            }
        }
        schedules.push(schedule);
    }
    assert_eq!(
        schedules[0], schedules[1],
        "executors disagreed on the direction schedule"
    );
    let directions: std::collections::BTreeSet<_> = schedules[0].values().copied().collect();
    assert!(
        directions.contains("pull") && directions.contains("push"),
        "expected a run that uses both directions, got {directions:?}"
    );
    assert_eq!(
        schedules[0].get(&0),
        Some(&"pull"),
        "full initial frontier is dense"
    );
}

/// The corrupt-wire harness, aimed at a worker that is mid *push* superstep:
/// attacker-controlled broadcast bytes must surface as `Err`, never a panic,
/// with the push machinery (frontier stats, push index, scatter loop) live.
#[test]
fn corrupt_wire_bytes_on_the_push_path_error_but_never_panic() {
    use graphh::cluster::{BroadcastEncoding, BroadcastMessage};
    use graphh::core::exec::ExecutionPlan;
    use graphh::graph::ids::ServerId;
    use graphh::runtime::plane::{PlaneError, WireMessage};
    use graphh::runtime::{run_worker, BroadcastPlane, SuperstepBarrier};
    use std::sync::mpsc::channel;

    /// Feeds the worker one attacker-controlled payload per superstep.
    struct InjectingPlane {
        payloads: Vec<WireMessage>,
    }
    impl BroadcastPlane for InjectingPlane {
        fn num_servers(&self) -> u32 {
            2
        }
        fn server_id(&self) -> ServerId {
            0
        }
        fn broadcast(&mut self, _superstep: u32, _wire: &[u8]) -> Result<(), PlaneError> {
            Ok(())
        }
        fn end_superstep(&mut self, _superstep: u32) -> Result<(), PlaneError> {
            Ok(())
        }
        fn collect(&mut self, _superstep: u32) -> Result<Vec<WireMessage>, PlaneError> {
            Ok(self.payloads.pop().into_iter().collect())
        }
        fn abort(&mut self) {}
    }

    let g = RmatGenerator::new(7, 4).generate(SEEDS[0]);
    let p = Spe::partition(&g, &SpeConfig::with_tile_count("det", &g, 6)).unwrap();
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1))
        .with_direction_mode(DirectionMode::ForcePush);
    let program = Sssp::new(0);
    let plan = ExecutionPlan::prepare(&config, &p, &program).unwrap();

    // Deterministic xorshift, as in the pull-path harness above.
    let mut state = 0x2017_2017_2017_2017u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let valid = BroadcastMessage::new(0, 64, (0..32).map(|v| (v * 2, v as f64)).collect())
        .encode(BroadcastEncoding::Sparse);
    for _ in 0..100 {
        let mut corrupt = valid.clone();
        for _ in 0..(1 + next() as usize % 3) {
            let i = next() as usize % corrupt.len().max(1);
            corrupt[i] ^= (1 + next() % 255) as u8;
        }
        if next() % 4 == 0 {
            corrupt.truncate(next() as usize % (corrupt.len() + 1));
        }
        let mut plane = InjectingPlane {
            payloads: vec![corrupt.clone().into()],
        };
        let barrier = SuperstepBarrier::new(1);
        let (metrics_tx, _metrics_rx) = channel();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_worker(
                &config,
                &plan,
                &p,
                &program,
                0,
                &mut plane,
                &barrier,
                &metrics_tx,
            )
            .map(|out| out.supersteps_run)
        }));
        // Ok(Ok(_)) — the flip stayed valid — and Ok(Err(_)) are both fine;
        // a panic mid-push-superstep is not.
        assert!(
            outcome.is_ok(),
            "push-path worker panicked on corrupt wire bytes"
        );
    }
}
