//! Property-based tests of the core data structures and invariants.

use graphh::cluster::{BroadcastEncoding, BroadcastMessage};
use graphh::compress::Codec;
use graphh::core::reference;
use graphh::prelude::*;
use proptest::prelude::*;

fn arbitrary_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_v, 0..max_v), 0..max_e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partitioning_conserves_every_edge(edges in arbitrary_edges(200, 400), tile_size in 1u64..50) {
        let mut builder = GraphBuilder::new().with_num_vertices(200);
        for (s, d) in &edges {
            builder.add_edge(Edge::new(*s, *d));
        }
        let graph = builder.build().unwrap();
        let partitioned = Spe::partition(&graph, &SpeConfig::new("prop", tile_size)).unwrap();
        prop_assert_eq!(partitioned.num_edges(), graph.num_edges());
        // Every edge is in the tile owning its target, and tile ranges are disjoint.
        let mut recovered: Vec<(u32, u32)> = Vec::new();
        for tile in &partitioned.tiles {
            for target in tile.targets() {
                for (src, _) in tile.in_edges(target) {
                    recovered.push((src, target));
                }
            }
        }
        let mut expected: Vec<(u32, u32)> = edges.clone();
        expected.sort_unstable();
        recovered.sort_unstable();
        prop_assert_eq!(recovered, expected);
    }

    #[test]
    fn tile_serialization_roundtrips(edges in arbitrary_edges(64, 200)) {
        let mut builder = GraphBuilder::new().with_num_vertices(64);
        for (s, d) in &edges {
            builder.add_edge(Edge::new(*s, *d));
        }
        let graph = builder.build().unwrap();
        let partitioned = Spe::partition(&graph, &SpeConfig::new("prop", 16)).unwrap();
        for tile in &partitioned.tiles {
            let bytes = tile.to_bytes();
            prop_assert_eq!(bytes.len() as u64, tile.serialized_size());
            let back = Tile::from_bytes(&bytes).unwrap();
            prop_assert_eq!(&back, tile);
        }
    }

    #[test]
    fn codecs_roundtrip_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        for codec in Codec::ALL {
            let restored = codec.decompress(&codec.compress(&data)).unwrap();
            prop_assert_eq!(&restored, &data, "codec {}", codec.name());
        }
    }

    #[test]
    fn broadcast_encodings_decode_to_the_same_updates(
        range_start in 0u32..1000,
        len in 1u32..300,
        picks in prop::collection::btree_set(0u32..300, 0..100),
    ) {
        let range_end = range_start + len;
        let updates: Vec<(u32, f64)> = picks
            .iter()
            .filter(|&&p| p < len)
            .map(|&p| (range_start + p, f64::from(p) * 0.25 - 3.0))
            .collect();
        let msg = BroadcastMessage::new(range_start, range_end, updates.clone());
        for enc in [BroadcastEncoding::Dense, BroadcastEncoding::Sparse] {
            let decoded = BroadcastMessage::decode(&msg.encode(enc)).unwrap();
            prop_assert_eq!(&decoded.updates, &updates);
        }
    }

    #[test]
    fn pagerank_mass_is_bounded_and_engine_matches_reference(
        scale in 4u32..7,
        edge_factor in 2u32..6,
        seed in 0u64..50,
    ) {
        let graph = RmatGenerator::new(scale, edge_factor).generate(seed);
        let partitioned = Spe::partition(&graph, &SpeConfig::with_tile_count("prop", &graph, 6)).unwrap();
        let engine = GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(2)));
        let result = engine.run(&partitioned, &PageRank::new(5)).unwrap();
        let expected = reference::pagerank(&graph, 5);
        prop_assert!(reference::max_abs_diff(&result.values, &expected) < 1e-9);
        let sum: f64 = result.values.iter().sum();
        prop_assert!(sum > 0.0 && sum <= 1.0 + 1e-9);
    }

    #[test]
    fn sssp_distances_respect_triangle_inequality_on_edges(
        rows in 2u64..6,
        cols in 2u64..6,
    ) {
        let graph = graphh::graph::generators::grid_graph(rows, cols);
        let partitioned = Spe::partition(&graph, &SpeConfig::with_tile_count("prop", &graph, 4)).unwrap();
        let engine = GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(2)));
        let result = engine.run(&partitioned, &Sssp::new(0)).unwrap();
        // dist(v) <= dist(u) + w(u, v) for every edge.
        for e in graph.edges().iter() {
            let du = result.values[e.src as usize];
            let dv = result.values[e.dst as usize];
            prop_assert!(dv <= du + f64::from(e.weight) + 1e-9);
        }
        prop_assert_eq!(result.values[0], 0.0);
    }
}
