//! Property-based tests of the core data structures and invariants.
//!
//! Offline rewrite of the original proptest suite: each property runs over a
//! deterministic sweep of seeded random cases produced by a small inline PRNG,
//! so failures are reproducible by case index without any external crates.

use graphh::cluster::{BroadcastEncoding, BroadcastMessage, CommunicationMode};
use graphh::compress::Codec;
use graphh::core::reference;
use graphh::prelude::*;

/// Cases per property (the proptest suite used 32).
const CASES: u64 = 32;

/// splitmix64: one u64 per call, fully determined by the evolving state.
struct CaseRng(u64);

impl CaseRng {
    fn new(case: u64) -> Self {
        Self(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case + 1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next() % n
    }
}

fn arbitrary_edges(rng: &mut CaseRng, max_v: u32, max_e: u64) -> Vec<(u32, u32)> {
    let count = rng.below(max_e + 1);
    (0..count)
        .map(|_| {
            (
                rng.below(u64::from(max_v)) as u32,
                rng.below(u64::from(max_v)) as u32,
            )
        })
        .collect()
}

#[test]
fn partitioning_conserves_every_edge() {
    for case in 0..CASES {
        let mut rng = CaseRng::new(case);
        let edges = arbitrary_edges(&mut rng, 200, 400);
        let tile_size = 1 + rng.below(49);
        let mut builder = GraphBuilder::new().with_num_vertices(200);
        for &(s, d) in &edges {
            builder.add_edge(Edge::new(s, d));
        }
        let graph = builder.build().unwrap();
        let partitioned = Spe::partition(&graph, &SpeConfig::new("prop", tile_size)).unwrap();
        assert_eq!(partitioned.num_edges(), graph.num_edges(), "case {case}");
        // Every edge is in the tile owning its target, and tile ranges are disjoint.
        let mut recovered: Vec<(u32, u32)> = Vec::new();
        for tile in &partitioned.tiles {
            for target in tile.targets() {
                for (src, _) in tile.in_edges(target) {
                    recovered.push((src, target));
                }
            }
        }
        let mut expected = edges.clone();
        expected.sort_unstable();
        recovered.sort_unstable();
        assert_eq!(recovered, expected, "case {case}");
    }
}

#[test]
fn tile_serialization_roundtrips() {
    for case in 0..CASES {
        let mut rng = CaseRng::new(1000 + case);
        let edges = arbitrary_edges(&mut rng, 64, 200);
        let mut builder = GraphBuilder::new().with_num_vertices(64);
        for &(s, d) in &edges {
            builder.add_edge(Edge::new(s, d));
        }
        let graph = builder.build().unwrap();
        let partitioned = Spe::partition(&graph, &SpeConfig::new("prop", 16)).unwrap();
        for tile in &partitioned.tiles {
            let bytes = tile.to_bytes();
            assert_eq!(bytes.len() as u64, tile.serialized_size(), "case {case}");
            let back = Tile::from_bytes(&bytes).unwrap();
            assert_eq!(&back, tile, "case {case}");
        }
    }
}

#[test]
fn codecs_roundtrip_arbitrary_bytes() {
    for case in 0..CASES {
        let mut rng = CaseRng::new(2000 + case);
        let len = rng.below(2048) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        for codec in Codec::ALL {
            let restored = codec.decompress(&codec.compress(&data)).unwrap();
            assert_eq!(restored, data, "codec {} case {case}", codec.name());
        }
    }
}

/// A broadcast message over `[range_start, range_start + len)` updating a
/// deterministic pseudo-random subset of `updated` vertices.
fn random_message(rng: &mut CaseRng, range_start: u32, len: u32, updated: u32) -> BroadcastMessage {
    let mut picks: Vec<u32> = (0..len).collect();
    // Partial Fisher-Yates: the first `updated` entries are the chosen subset.
    for i in 0..updated.min(len) as usize {
        let j = i + rng.below((len as usize - i) as u64) as usize;
        picks.swap(i, j);
    }
    let mut chosen: Vec<u32> = picks[..updated.min(len) as usize].to_vec();
    chosen.sort_unstable();
    let updates = chosen
        .iter()
        .map(|&p| (range_start + p, f64::from(p) * 0.25 - 3.0))
        .collect();
    BroadcastMessage::new(range_start, range_start + len, updates)
}

#[test]
fn broadcast_encodings_decode_to_the_same_updates() {
    for case in 0..CASES {
        let mut rng = CaseRng::new(3000 + case);
        let range_start = rng.below(1000) as u32;
        let len = 1 + rng.below(299) as u32;
        let updated = rng.below(u64::from(len) + 1) as u32;
        let msg = random_message(&mut rng, range_start, len, updated);
        for enc in [BroadcastEncoding::Dense, BroadcastEncoding::Sparse] {
            let decoded = BroadcastMessage::decode(&msg.encode(enc)).unwrap();
            assert_eq!(decoded.updates, msg.updates, "case {case} {enc:?}");
            assert_eq!(decoded.range_start, msg.range_start);
            assert_eq!(decoded.range_end, msg.range_end);
        }
    }
}

/// The full wire path (encode → compress → decompress → decode) is lossless
/// for every encoding policy × codec, across sparsity ratios that bracket the
/// paper's 0.8 hybrid threshold.
#[test]
fn broadcast_wire_path_is_lossless_across_sparsity_ratios() {
    let len = 200u32;
    // updated counts giving sparsity ratios 1.0, 0.995, 0.9, just above /
    // exactly at / just below 0.8, 0.5, 0.0.
    let updated_counts = [0u32, 1, 20, 39, 40, 41, 100, 200];
    let modes = [
        CommunicationMode::Dense,
        CommunicationMode::Sparse,
        CommunicationMode::default(), // hybrid at 0.8
    ];
    let codecs = [
        None,
        Some(Codec::Raw),
        Some(Codec::Snappy),
        Some(Codec::Zlib1),
        Some(Codec::Zlib3),
    ];
    for (i, &updated) in updated_counts.iter().enumerate() {
        let mut rng = CaseRng::new(4000 + i as u64);
        let msg = random_message(&mut rng, 64, len, updated);
        let sparsity = msg.sparsity_ratio();
        for mode in modes {
            let enc = msg.choose_encoding(mode);
            if let CommunicationMode::Hybrid { sparsity_threshold } = mode {
                // The boundary itself: sparse strictly above the threshold, so
                // a message sitting exactly at 0.8 stays dense.
                let expect_sparse = sparsity > sparsity_threshold;
                assert_eq!(
                    enc == BroadcastEncoding::Sparse,
                    expect_sparse,
                    "updated={updated} sparsity={sparsity}"
                );
            }
            for codec in codecs {
                let encoded = msg.encode(enc);
                let wire = match codec {
                    None | Some(Codec::Raw) => encoded.clone(),
                    Some(c) => c.compress(&encoded),
                };
                let restored = match codec {
                    None | Some(Codec::Raw) => wire,
                    Some(c) => c.decompress(&wire).unwrap(),
                };
                let decoded = BroadcastMessage::decode(&restored).unwrap();
                assert_eq!(
                    decoded.updates, msg.updates,
                    "updated={updated} mode={mode:?} codec={codec:?}"
                );
            }
        }
    }
}

#[test]
fn pagerank_mass_is_bounded_and_engine_matches_reference() {
    for case in 0..CASES {
        let mut rng = CaseRng::new(5000 + case);
        let scale = 4 + rng.below(3) as u32;
        let edge_factor = 2 + rng.below(4) as u32;
        let seed = rng.below(50);
        let graph = RmatGenerator::new(scale, edge_factor).generate(seed);
        let partitioned =
            Spe::partition(&graph, &SpeConfig::with_tile_count("prop", &graph, 6)).unwrap();
        let engine =
            GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(2)));
        let result = engine.run(&partitioned, &PageRank::new(5)).unwrap();
        let expected = reference::pagerank(&graph, 5);
        assert!(
            reference::max_abs_diff(&result.values, &expected) < 1e-9,
            "case {case}"
        );
        let sum: f64 = result.values.iter().sum();
        assert!(sum > 0.0 && sum <= 1.0 + 1e-9, "case {case} sum {sum}");
    }
}

#[test]
fn sssp_distances_respect_triangle_inequality_on_edges() {
    for case in 0..CASES {
        let mut rng = CaseRng::new(6000 + case);
        let rows = 2 + rng.below(4);
        let cols = 2 + rng.below(4);
        let graph = graphh::graph::generators::grid_graph(rows, cols);
        let partitioned =
            Spe::partition(&graph, &SpeConfig::with_tile_count("prop", &graph, 4)).unwrap();
        let engine =
            GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(2)));
        let result = engine.run(&partitioned, &Sssp::new(0)).unwrap();
        // dist(v) <= dist(u) + w(u, v) for every edge.
        for e in graph.edges().iter() {
            let du = result.values[e.src as usize];
            let dv = result.values[e.dst as usize];
            assert!(dv <= du + f64::from(e.weight) + 1e-9, "case {case}");
        }
        assert_eq!(result.values[0], 0.0);
    }
}
