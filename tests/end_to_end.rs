//! Integration tests spanning the whole pipeline: generate → partition → persist to
//! the DFS → reload → run on the engine → compare against references and baselines.

use graphh::core::reference;
use graphh::prelude::*;
use graphh::storage::DfsConfig;

fn pipeline_graph() -> Graph {
    RmatGenerator::new(9, 6).generate(123)
}

#[test]
fn dfs_persisted_tiles_reload_and_run_identically() {
    let graph = pipeline_graph();
    let partitioned =
        Spe::partition(&graph, &SpeConfig::with_tile_count("pipeline", &graph, 12)).unwrap();

    // Persist to an in-memory DFS and reload, like SPE → MPE hand-off in the paper.
    let dfs = Dfs::new(MemoryBackend::new(), DfsConfig::default()).unwrap();
    partitioned.persist(&dfs).unwrap();
    let reloaded = PartitionedGraph::load(&dfs, "pipeline").unwrap();

    let engine = GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(3)));
    let from_memory = engine.run(&partitioned, &PageRank::new(8)).unwrap();
    let from_dfs = engine.run(&reloaded, &PageRank::new(8)).unwrap();
    assert!(reference::max_abs_diff(&from_memory.values, &from_dfs.values) < 1e-12);
    assert!(reference::max_abs_diff(&from_memory.values, &reference::pagerank(&graph, 8)) < 1e-9);
}

#[test]
fn tiles_survive_a_real_disk_roundtrip() {
    let graph = pipeline_graph();
    let partitioned =
        Spe::partition(&graph, &SpeConfig::with_tile_count("disk", &graph, 8)).unwrap();
    let dir = tempfile::tempdir().unwrap();
    let dfs = Dfs::new(
        LocalDiskBackend::new(dir.path()).unwrap(),
        DfsConfig::default(),
    )
    .unwrap();
    partitioned.persist(&dfs).unwrap();
    let reloaded = PartitionedGraph::load(&dfs, "disk").unwrap();
    assert_eq!(reloaded.num_edges(), graph.num_edges());
    assert_eq!(reloaded.num_tiles(), partitioned.num_tiles());
    assert_eq!(reloaded.tiles[0], partitioned.tiles[0]);
}

#[test]
fn all_engines_agree_on_pagerank_and_sssp() {
    use graphh::baselines::program::{PageRankMsg, SsspMsg};

    let graph = pipeline_graph();
    let partitioned =
        Spe::partition(&graph, &SpeConfig::with_tile_count("agree", &graph, 10)).unwrap();
    let cluster = ClusterConfig::paper_testbed(4);
    let source = (0..graph.num_vertices() as u32)
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap();

    let graphh_pr = GraphHEngine::new(GraphHConfig::paper_default(cluster))
        .run(&partitioned, &PageRank::new(6))
        .unwrap();
    let pregel_pr =
        PregelEngine::new(PregelConfig::pregel_plus(cluster)).run(&graph, &PageRankMsg::new(6));
    let gas_pr = GasEngine::new(GasConfig::powergraph(cluster)).run(&graph, &PageRankMsg::new(6));
    let chaos_pr = ChaosEngine::new(ChaosConfig::new(cluster)).run(&graph, &PageRankMsg::new(6));
    for (name, values) in [
        ("pregel", &pregel_pr.values),
        ("gas", &gas_pr.values),
        ("chaos", &chaos_pr.values),
    ] {
        assert!(
            reference::max_abs_diff(&graphh_pr.values, values) < 1e-9,
            "{name} disagrees with GraphH on PageRank"
        );
    }

    let graphh_sssp = GraphHEngine::new(GraphHConfig::paper_default(cluster))
        .run(&partitioned, &Sssp::new(source))
        .unwrap();
    let pregel_sssp =
        PregelEngine::new(PregelConfig::pregel_plus(cluster)).run(&graph, &SsspMsg::new(source));
    assert_eq!(
        reference::max_abs_diff(&graphh_sssp.values, &pregel_sssp.values),
        0.0
    );
    assert_eq!(
        reference::max_abs_diff(&graphh_sssp.values, &reference::sssp(&graph, source)),
        0.0
    );
}

#[test]
fn headline_claim_graphh_beats_out_of_core_systems() {
    use graphh::baselines::program::PageRankMsg;

    // The paper's headline: GraphH outperforms GraphD and Chaos by a wide margin
    // because the edge cache removes almost all disk I/O.
    let graph = Dataset::Uk2007.default_spec().generate(5);
    let partitioned =
        Spe::partition(&graph, &SpeConfig::with_tile_count("uk", &graph, 36)).unwrap();
    let cluster = ClusterConfig::paper_testbed(9);

    let graphh = GraphHEngine::new(GraphHConfig::paper_default(cluster))
        .run(&partitioned, &PageRank::new(5))
        .unwrap();
    let graphd = PregelEngine::new(PregelConfig::graphd(cluster)).run(&graph, &PageRankMsg::new(5));
    let chaos = ChaosEngine::new(ChaosConfig::new(cluster)).run(&graph, &PageRankMsg::new(5));

    let g = graphh.avg_superstep_seconds();
    assert!(
        graphd.avg_superstep_seconds() > 3.0 * g,
        "GraphD {} vs GraphH {g}",
        graphd.avg_superstep_seconds()
    );
    assert!(
        chaos.avg_superstep_seconds() > 3.0 * g,
        "Chaos {} vs GraphH {g}",
        chaos.avg_superstep_seconds()
    );
}

#[test]
fn graphh_handles_the_big_graph_standins_on_a_single_server() {
    // §V-A: GraphH can process UK-2014 / EU-2015 on a single node.
    for dataset in [Dataset::Uk2014, Dataset::Eu2015] {
        let graph = dataset.default_spec().generate(1);
        let partitioned =
            Spe::partition(&graph, &SpeConfig::with_tile_count("big", &graph, 24)).unwrap();
        let result =
            GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(1)))
                .run(&partitioned, &PageRank::new(3))
                .unwrap();
        assert_eq!(result.values.len() as u64, graph.num_vertices());
        assert_eq!(result.metrics.total_network_bytes(), 0);
        let sum: f64 = result.values.iter().sum();
        assert!(sum > 0.0 && sum <= 1.01);
    }
}
