//! Web ranking at "big graph in a small cluster" scale: runs PageRank over the
//! UK-2007 stand-in on 1, 3, 6 and 9 simulated servers and shows how the simulated
//! superstep time and memory change with the cluster size (the paper's Figure 9
//! storyline).
//!
//! Run with: `cargo run --release --example web_ranking`

use graphh::graph::properties::human_bytes;
use graphh::prelude::*;

fn main() {
    let spec = Dataset::Uk2007.default_spec();
    println!(
        "UK-2007 stand-in: {} vertices, {} edges (1/{:.0} of the paper's crawl)",
        spec.num_vertices,
        spec.num_edges,
        spec.edge_scale_ratio()
    );
    let graph = spec.generate(7);
    let partitioned =
        Spe::partition(&graph, &SpeConfig::with_tile_count("uk-2007", &graph, 36)).unwrap();

    println!("servers\tavg superstep (simulated s)\tpeak memory/server\tnetwork/superstep");
    for servers in [1u32, 3, 6, 9] {
        let engine = GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(
            servers,
        )));
        let result = engine.run(&partitioned, &PageRank::new(10)).unwrap();
        let peak = result
            .per_server_peak_memory
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let network = result.metrics.total_network_bytes() / result.supersteps_run.max(1) as u64;
        println!(
            "{servers}\t{:.4}\t{}\t{}",
            result.avg_superstep_seconds(),
            human_bytes(peak),
            human_bytes(network)
        );
    }
}
