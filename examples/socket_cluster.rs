//! A GraphH cluster over real TCP sockets, in one program — on either TCP
//! backend, running any registered program.
//!
//! Three servers run the chosen kernel over the loopback network: each on its
//! own thread with its own plane endpoint, every broadcast encoded by the real
//! `MessageCodec`, framed by the length-prefixed wire protocol (docs/WIRE.md),
//! and re-decoded on arrival — the same path the `graphh-node` binary runs
//! with one *process* per server (see README "Transport backends"). The final
//! replicas are bit-identical to the sequential reference executor, and the
//! demo *asserts* clean shutdown: after the planes drop, the process is back
//! to its baseline thread count (no lingering reader or event-loop threads).
//!
//! ```text
//! cargo run --example socket_cluster                  # SocketPlane, PageRank
//! cargo run --example socket_cluster -- poll          # event-driven PollPlane
//! cargo run --example socket_cluster -- both bfs-dopt # each backend, any kernel
//! ```

use graphh::core::exec::ExecutionPlan;
use graphh::core::registry::{find_program, program_names, ProgramContext, ProgramOptions};
use graphh::prelude::*;
use graphh::runtime::poll::os_thread_count;
use graphh::runtime::{run_worker, BoundTcpPlane, SuperstepBarrier, TcpPlaneKind};
use std::net::SocketAddr;
use std::sync::mpsc::channel;
use std::sync::Arc;

const SERVERS: u32 = 3;

/// Run the 3-server cluster once over the named plane and return each
/// server's final replica values (sorted by server id).
fn run_cluster(
    plane: TcpPlaneKind,
    config: &GraphHConfig,
    plan: &ExecutionPlan,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
) -> Vec<(u32, Vec<f64>)> {
    // Bind all listeners first (port 0 = OS-assigned), then establish the
    // fully-connected fabric: lower ids are dialed, higher ids accepted.
    let bound: Vec<BoundTcpPlane> = (0..SERVERS)
        .map(|sid| BoundTcpPlane::bind(plane, sid, SERVERS, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<SocketAddr> = bound.iter().map(|b| b.local_addr().unwrap()).collect();
    println!("[{plane:?}] cluster endpoints: {addrs:?}");

    let mut replicas: Vec<(u32, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = bound
            .into_iter()
            .map(|b| {
                let addrs = &addrs;
                scope.spawn(move || {
                    let mut endpoint = b.establish(addrs).expect("establish");
                    let barrier = SuperstepBarrier::new(1); // lockstep comes from the plane
                    let (metrics_tx, _metrics_rx) = channel();
                    let sid = endpoint.server_id();
                    let out = run_worker(
                        config,
                        plan,
                        partitioned,
                        program,
                        sid,
                        endpoint.as_mut(),
                        &barrier,
                        &metrics_tx,
                    )
                    .expect("worker");
                    (sid, out.values)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    replicas.sort_by_key(|&(sid, _)| sid);
    replicas
}

fn main() {
    let choice = std::env::args().nth(1).unwrap_or_else(|| "socket".into());
    let planes: Vec<TcpPlaneKind> = match choice.as_str() {
        "both" => vec![TcpPlaneKind::Socket, TcpPlaneKind::Poll],
        one => vec![one
            .parse()
            .unwrap_or_else(|e| panic!("{e} — expected socket, poll or both"))],
    };
    let kernel = std::env::args().nth(2).unwrap_or_else(|| "pagerank".into());
    let spec = find_program(&kernel).unwrap_or_else(|| {
        panic!(
            "unknown program {kernel:?} — expected one of: {}",
            program_names()
        )
    });

    // A deterministic workload every endpoint agrees on (the undirected
    // kernels get a symmetrised edge set, as their registry contract asks).
    let base = RmatGenerator::new(9, 6).generate(2017);
    let graph = if spec.symmetrize_input {
        let mut b = GraphBuilder::new()
            .with_num_vertices(base.num_vertices())
            .symmetric(true);
        for e in base.edges().iter() {
            b.add_edge(e);
        }
        b.build().unwrap()
    } else {
        base
    };
    let partitioned = Spe::partition(
        &graph,
        &SpeConfig::with_tile_count("socket-demo", &graph, 12),
    )
    .unwrap();
    let mut opts = ProgramOptions::new();
    if spec.accepts("supersteps") {
        opts.set("supersteps", "10");
    }
    let program = spec
        .build(&ProgramContext::new(graph.out_degrees()), &opts)
        .unwrap();
    let program = program.as_ref();
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
    let plan = ExecutionPlan::prepare(&config, &partitioned, program).unwrap();

    let reference =
        GraphHEngine::with_executor(config.clone(), Arc::new(SequentialExecutor::new()))
            .run(&partitioned, program)
            .unwrap();

    for plane in planes {
        // Snapshot the thread count so clean shutdown below is *asserted*,
        // not assumed (None on platforms without /proc).
        let baseline_threads = os_thread_count();

        let replicas = run_cluster(plane, &config, &plan, &partitioned, program);

        // Every replica agrees with the single-threaded reference, bit for bit.
        for (sid, values) in &replicas {
            let identical = values.len() == reference.values.len()
                && values
                    .iter()
                    .zip(&reference.values)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            println!(
                "[{plane:?}] server {sid}: {} vertices over TCP, bit-identical to sequential: \
                 {identical}",
                values.len()
            );
            assert!(identical);
        }

        // Clean shutdown: the planes (and their reader / event-loop threads)
        // are gone — the thread count is back to the pre-cluster baseline.
        match (baseline_threads, os_thread_count()) {
            (Some(before), Some(after)) => {
                assert_eq!(
                    after, before,
                    "[{plane:?}] lingering transport threads after the run"
                );
                println!("[{plane:?}] clean shutdown: thread count back to {before}");
            }
            _ => println!("[{plane:?}] clean shutdown check skipped (no /proc thread count)"),
        }
    }

    let mut top: Vec<(usize, f64)> = reference.values.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-5 {} vertices: {:?}", program.name(), &top[..5]);
}
