//! A GraphH cluster over real TCP sockets, in one program.
//!
//! Three servers run PageRank over the loopback network: each on its own
//! thread with its own [`SocketPlane`] endpoint, every broadcast encoded by
//! the real `MessageCodec`, framed by the length-prefixed wire protocol, and
//! re-decoded on arrival — the same path the `graphh-node` binary runs with
//! one *process* per server (see README "Transport backends"). The final
//! replicas are bit-identical to the sequential reference executor.
//!
//! ```text
//! cargo run --example socket_cluster
//! ```

use graphh::core::exec::ExecutionPlan;
use graphh::prelude::*;
use graphh::runtime::{run_worker, BroadcastPlane, SocketPlane, SuperstepBarrier};
use std::net::SocketAddr;
use std::sync::mpsc::channel;
use std::sync::Arc;

const SERVERS: u32 = 3;

fn main() {
    // A deterministic workload every endpoint agrees on.
    let graph = RmatGenerator::new(9, 6).generate(2017);
    let partitioned = Spe::partition(
        &graph,
        &SpeConfig::with_tile_count("socket-demo", &graph, 12),
    )
    .unwrap();
    let program = PageRank::new(10);
    let config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(SERVERS));
    let plan = ExecutionPlan::prepare(&config, &partitioned, &program).unwrap();

    // Bind all listeners first (port 0 = OS-assigned), then establish the
    // fully-connected fabric: lower ids are dialed, higher ids accepted.
    let bound: Vec<_> = (0..SERVERS)
        .map(|sid| SocketPlane::bind(sid, SERVERS, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<SocketAddr> = bound.iter().map(|b| b.local_addr().unwrap()).collect();
    println!("cluster endpoints: {addrs:?}");

    let mut replicas: Vec<(u32, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = bound
            .into_iter()
            .map(|b| {
                let (addrs, plan, partitioned, config, program) =
                    (&addrs, &plan, &partitioned, &config, &program);
                scope.spawn(move || {
                    let mut plane = b.establish(addrs).expect("establish TCP fabric");
                    let barrier = SuperstepBarrier::new(1); // lockstep comes from the plane
                    let (metrics_tx, _metrics_rx) = channel();
                    let sid = plane.server_id();
                    let out = run_worker(
                        config,
                        plan,
                        partitioned,
                        program,
                        sid,
                        &mut plane,
                        &barrier,
                        &metrics_tx,
                    )
                    .expect("worker");
                    (sid, out.values)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    replicas.sort_by_key(|&(sid, _)| sid);

    // Every replica agrees with the single-threaded reference, bit for bit.
    let reference = GraphHEngine::with_executor(config, Arc::new(SequentialExecutor::new()))
        .run(&partitioned, &program)
        .unwrap();
    for (sid, values) in &replicas {
        let identical = values.len() == reference.values.len()
            && values
                .iter()
                .zip(&reference.values)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        println!(
            "server {sid}: {} vertices over TCP, bit-identical to sequential: {identical}",
            values.len()
        );
        assert!(identical);
    }
    let mut top: Vec<(usize, f64)> = reference.values.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-5 PageRank vertices: {:?}", &top[..5]);
}
