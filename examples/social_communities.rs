//! Social-network community structure: weakly connected components and degree
//! centrality over a Twitter-like graph, run on the GraphH engine and cross-checked
//! against the in-memory Pregel+ baseline.
//!
//! Run with: `cargo run --release --example social_communities`

use graphh::baselines::program::WccMsg;
use graphh::prelude::*;
use std::collections::HashMap;

fn main() {
    // A follower-graph-like synthetic network, symmetrised for WCC.
    let directed = Dataset::Twitter2010.default_spec().generate(3);
    let mut builder = GraphBuilder::new()
        .with_num_vertices(directed.num_vertices())
        .symmetric(true);
    for e in directed.edges().iter() {
        builder.add_edge(e);
    }
    let graph = builder.build().unwrap();

    let partitioned =
        Spe::partition(&graph, &SpeConfig::with_tile_count("twitter", &graph, 36)).unwrap();
    let engine = GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(3)));
    let result = engine.run(&partitioned, &Wcc::new()).unwrap();

    let mut component_sizes: HashMap<u64, u64> = HashMap::new();
    for &label in &result.values {
        *component_sizes.entry(label as u64).or_default() += 1;
    }
    let mut sizes: Vec<u64> = component_sizes.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "{} weak components; largest holds {:.1}% of vertices",
        sizes.len(),
        100.0 * sizes[0] as f64 / graph.num_vertices() as f64
    );

    // Cross-check against the Pregel+ baseline.
    let pregel = PregelEngine::new(PregelConfig::pregel_plus(ClusterConfig::paper_testbed(3)))
        .run(&graph, &WccMsg);
    let agree = result
        .values
        .iter()
        .zip(&pregel.values)
        .all(|(a, b)| a == b);
    println!("GraphH and Pregel+ agree on every component label: {agree}");

    // Degree centrality: the most-followed accounts.
    let centrality = engine.run(&partitioned, &DegreeCentrality::new()).unwrap();
    let mut top: Vec<(usize, f64)> = centrality.values.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("most connected accounts (vertex, degree):");
    for (v, d) in top.iter().take(5) {
        println!("  {v:8}  {d:.0}");
    }
}
