//! Engine shoot-out: run PageRank on the same graph with GraphH and all five
//! baselines, verify they agree, and print the simulated performance and memory
//! profile of each — a miniature version of the paper's Figure 1 and Figure 9.
//!
//! Run with: `cargo run --release --example engine_shootout`

use graphh::baselines::program::PageRankMsg;
use graphh::graph::properties::human_bytes;
use graphh::prelude::*;

fn main() {
    let graph = Dataset::Twitter2010.default_spec().generate(11);
    let partitioned =
        Spe::partition(&graph, &SpeConfig::with_tile_count("twitter", &graph, 36)).unwrap();
    let cluster = ClusterConfig::paper_testbed(9);
    let supersteps = 10;

    let graphh = GraphHEngine::new(GraphHConfig::paper_default(cluster))
        .run(&partitioned, &PageRank::new(supersteps))
        .unwrap();
    let pregel = PregelEngine::new(PregelConfig::pregel_plus(cluster))
        .run(&graph, &PageRankMsg::new(supersteps));
    let graphd =
        PregelEngine::new(PregelConfig::graphd(cluster)).run(&graph, &PageRankMsg::new(supersteps));
    let powergraph =
        GasEngine::new(GasConfig::powergraph(cluster)).run(&graph, &PageRankMsg::new(supersteps));
    let powerlyra =
        GasEngine::new(GasConfig::powerlyra(cluster)).run(&graph, &PageRankMsg::new(supersteps));
    let chaos =
        ChaosEngine::new(ChaosConfig::new(cluster)).run(&graph, &PageRankMsg::new(supersteps));

    // All engines implement the same synchronous PageRank, so they must agree.
    let max_diff = graphh
        .values
        .iter()
        .zip(&pregel.values)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |GraphH - Pregel+| rank difference: {max_diff:.2e}\n");

    println!("system      avg superstep (sim. s)   per-server memory");
    let rows: [(&str, f64, u64); 6] = [
        ("GraphH", graphh.avg_superstep_seconds(), *graphh.per_server_peak_memory.iter().max().unwrap()),
        ("Pregel+", pregel.avg_superstep_seconds(), pregel.per_server_memory_bytes),
        ("PowerGraph", powergraph.avg_superstep_seconds(), powergraph.per_server_memory_bytes),
        ("PowerLyra", powerlyra.avg_superstep_seconds(), powerlyra.per_server_memory_bytes),
        ("GraphD", graphd.avg_superstep_seconds(), graphd.per_server_memory_bytes),
        ("Chaos", chaos.avg_superstep_seconds(), chaos.per_server_memory_bytes),
    ];
    for (name, secs, mem) in rows {
        println!("{name:<11} {secs:>20.4}   {}", human_bytes(mem));
    }
}
