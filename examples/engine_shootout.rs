//! Engine shoot-out: run PageRank on the same graph with GraphH (sequential
//! and threaded executors) and all five baselines, verify they agree, and
//! print the simulated performance and memory profile of each — a miniature
//! version of the paper's Figure 1 and Figure 9 — plus the *wall-clock*
//! sequential-vs-threaded comparison on an RMAT scale-10 workload.
//!
//! Run with: `cargo run --release --example engine_shootout`

use graphh::baselines::program::PageRankMsg;
use graphh::graph::properties::human_bytes;
use graphh::prelude::*;
use std::sync::Arc;

fn main() {
    let graph = Dataset::Twitter2010.default_spec().generate(11);
    let partitioned =
        Spe::partition(&graph, &SpeConfig::with_tile_count("twitter", &graph, 36)).unwrap();
    let cluster = ClusterConfig::paper_testbed(9);
    let supersteps = 10;

    let graphh = GraphHEngine::new(GraphHConfig::paper_default(cluster))
        .run(&partitioned, &PageRank::new(supersteps))
        .unwrap();
    let graphh_threaded = GraphHEngine::with_executor(
        GraphHConfig::paper_default(cluster),
        Arc::new(ThreadedExecutor::new()),
    )
    .run(&partitioned, &PageRank::new(supersteps))
    .unwrap();
    let pregel = PregelEngine::new(PregelConfig::pregel_plus(cluster))
        .run(&graph, &PageRankMsg::new(supersteps));
    let graphd =
        PregelEngine::new(PregelConfig::graphd(cluster)).run(&graph, &PageRankMsg::new(supersteps));
    let powergraph =
        GasEngine::new(GasConfig::powergraph(cluster)).run(&graph, &PageRankMsg::new(supersteps));
    let powerlyra =
        GasEngine::new(GasConfig::powerlyra(cluster)).run(&graph, &PageRankMsg::new(supersteps));
    let chaos =
        ChaosEngine::new(ChaosConfig::new(cluster)).run(&graph, &PageRankMsg::new(supersteps));

    // All engines implement the same synchronous PageRank, so they must agree.
    let max_diff = graphh
        .values
        .iter()
        .zip(&pregel.values)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |GraphH - Pregel+| rank difference: {max_diff:.2e}");
    let threaded_identical = graphh
        .values
        .iter()
        .zip(&graphh_threaded.values)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("GraphH threaded == sequential (bit-identical): {threaded_identical}\n");

    println!("system             avg superstep (sim. s)   per-server memory");
    let rows: [(&str, f64, u64); 7] = [
        (
            "GraphH",
            graphh.avg_superstep_seconds(),
            *graphh.per_server_peak_memory.iter().max().unwrap(),
        ),
        (
            "GraphH (threads)",
            graphh_threaded.avg_superstep_seconds(),
            *graphh_threaded.per_server_peak_memory.iter().max().unwrap(),
        ),
        (
            "Pregel+",
            pregel.avg_superstep_seconds(),
            pregel.per_server_memory_bytes,
        ),
        (
            "PowerGraph",
            powergraph.avg_superstep_seconds(),
            powergraph.per_server_memory_bytes,
        ),
        (
            "PowerLyra",
            powerlyra.avg_superstep_seconds(),
            powerlyra.per_server_memory_bytes,
        ),
        (
            "GraphD",
            graphd.avg_superstep_seconds(),
            graphd.per_server_memory_bytes,
        ),
        (
            "Chaos",
            chaos.avg_superstep_seconds(),
            chaos.per_server_memory_bytes,
        ),
    ];
    for (name, secs, mem) in rows {
        println!("{name:<18} {secs:>20.4}   {}", human_bytes(mem));
    }

    // Wall-clock executor comparison: RMAT scale-10 PageRank on 4 servers
    // (the measurement BENCH_runtime.json records; needs >1 real core for the
    // threaded executor to win).
    println!("\nwall-clock, RMAT scale-10 PageRank (4 servers, best of 3):");
    let rmat = RmatGenerator::new(10, 16).generate(2017);
    let p10 = Spe::partition(&rmat, &SpeConfig::with_tile_count("rmat-10", &rmat, 16)).unwrap();
    let best = |threaded: bool| {
        (0..3)
            .map(|_| {
                let executor: Arc<dyn Executor> = if threaded {
                    Arc::new(ThreadedExecutor::new())
                } else {
                    Arc::new(SequentialExecutor::new())
                };
                GraphHEngine::with_executor(
                    GraphHConfig::paper_default(ClusterConfig::paper_testbed(4)),
                    executor,
                )
                .run(&p10, &PageRank::new(20))
                .unwrap()
                .wall_clock_seconds
            })
            .fold(f64::INFINITY, f64::min)
    };
    let seq_s = best(false);
    let thr_s = best(true);
    println!("  sequential: {seq_s:.4}s");
    println!(
        "  threaded:   {thr_s:.4}s   (speedup {:.2}x)",
        seq_s / thr_s
    );

    // Second parallelism axis: the paper's T compute threads *inside* each
    // server (tile-level parallel gather). Results are bit-identical for
    // every T; only wall-clock changes.
    println!("\nintra-server tile threads (threaded executor, 4 servers, best of 3):");
    let best_t = |threads: u32| {
        (0..3)
            .map(|_| {
                GraphHEngine::with_executor(
                    GraphHConfig::paper_default(ClusterConfig::paper_testbed(4))
                        .with_threads_per_server(threads),
                    Arc::new(ThreadedExecutor::new()),
                )
                .run(&p10, &PageRank::new(20))
                .unwrap()
                .wall_clock_seconds
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t1 = best_t(1);
    println!("  T=1: {t1:.4}s");
    for threads in [2u32, 4] {
        let tn = best_t(threads);
        println!("  T={threads}: {tn:.4}s   (speedup vs T=1 {:.2}x)", t1 / tn);
    }
}
