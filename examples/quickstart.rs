//! Quickstart: generate a graph, partition it, run PageRank on a simulated 3-node
//! cluster, and print the top-ranked vertices plus the run's resource profile.
//!
//! Run with: `cargo run --release --example quickstart`

use graphh::prelude::*;

fn main() {
    // A web-like synthetic graph: 2^12 vertices, ~8 edges per vertex.
    let graph = RmatGenerator::new(12, 8).generate(42);
    println!(
        "graph: {} vertices, {} edges, max in-degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.stats().max_in_degree
    );

    // Stage 1+2 of GraphH's partitioning: split into tiles, assign to servers.
    let partitioned = Spe::partition(
        &graph,
        &SpeConfig::with_tile_count("quickstart", &graph, 24),
    )
    .unwrap();
    println!(
        "partitioned into {} tiles ({} total)",
        partitioned.num_tiles(),
        graphh::graph::properties::human_bytes(partitioned.total_tile_bytes())
    );

    // Run PageRank on a simulated 3-node cluster with the paper's defaults.
    let engine = GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(3)));
    let result = engine.run(&partitioned, &PageRank::new(20)).unwrap();

    let mut ranked: Vec<(u32, f64)> = result
        .values
        .iter()
        .enumerate()
        .map(|(v, &r)| (v as u32, r))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 5 vertices by PageRank:");
    for (v, r) in ranked.iter().take(5) {
        println!("  vertex {v:6}  rank {r:.6}");
    }

    println!(
        "ran {} supersteps, avg {:.3} simulated s/superstep, {} network traffic, cache codec {}",
        result.supersteps_run,
        result.avg_superstep_seconds(),
        graphh::graph::properties::human_bytes(result.metrics.total_network_bytes()),
        result.cache_codec.name()
    );
}
