//! Road-network navigation: single-source shortest paths over a weighted grid
//! (a stand-in for a road network), showing how GraphH's Bloom-filter tile skipping
//! pays off on frontier algorithms.
//!
//! Run with: `cargo run --release --example road_navigation`

use graphh::prelude::*;

fn main() {
    // A 200 x 200 grid "city": ~40k intersections, 4-neighbour roads.
    let graph = graphh::graph::generators::grid_graph(200, 200);
    let partitioned =
        Spe::partition(&graph, &SpeConfig::with_tile_count("city", &graph, 32)).unwrap();
    let source = 0;

    for use_bloom in [true, false] {
        let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(3));
        cfg.use_bloom_filter = use_bloom;
        let result = GraphHEngine::new(cfg)
            .run(&partitioned, &Sssp::new(source))
            .unwrap();
        let skipped: u64 = result
            .metrics
            .supersteps
            .iter()
            .flat_map(|r| r.servers.iter())
            .map(|s| s.tiles_skipped)
            .sum();
        let processed: u64 = result
            .metrics
            .supersteps
            .iter()
            .flat_map(|r| r.servers.iter())
            .map(|s| s.tiles_processed)
            .sum();
        println!(
            "bloom filter {}: {} supersteps, {:.3} simulated s total, tiles processed {}, skipped {}",
            if use_bloom { "on " } else { "off" },
            result.supersteps_run,
            result.total_seconds(),
            processed,
            skipped
        );
        // Sanity: far corner is reachable in (rows-1)+(cols-1) hops.
        let far = result.values[graph.num_vertices() as usize - 1];
        assert_eq!(far, 398.0);
    }
}
