//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Thin wrappers over `std::sync` primitives exposing the poison-free
//! `lock()`/`read()`/`write()` API the workspace uses. A poisoned std lock is
//! recovered rather than propagated, matching parking_lot's behaviour of not
//! having poisoning at all.

use std::sync::{self, PoisonError};

/// Re-export of the std guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutex without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_work() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
