//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! A tiny timing harness with the `criterion_group!`/`criterion_main!` shape:
//! each benchmark runs a short warm-up, then `sample_size` timed samples, and
//! the median per-iteration time is printed. No statistics beyond that.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimiser from deleting benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Time `f`, storing the median over the configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(None, &name.into(), self.sample_size, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &name.into(), self.sample_size, f);
        self
    }

    /// Finish the group (prints nothing extra; exists for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        last_median: Duration::ZERO,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    println!(
        "{label:<40} median {:>12.3?} ({samples} samples)",
        b.last_median
    );
}

/// Bundle benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `fn main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(3)
            .bench_function("u", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
