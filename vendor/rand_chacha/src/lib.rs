//! Offline stand-in for `rand_chacha` (see `vendor/README.md`).
//!
//! `ChaCha8Rng`/`ChaCha20Rng` here are xoshiro256++ generators seeded through
//! splitmix64 — deterministic and well-distributed, which is all the graph
//! generators need; the streams differ from real ChaCha.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator standing in for ChaCha with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

/// Same generator standing in for ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaCha8Rng;

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion, the standard way to seed xoshiro.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let av: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }
}
