//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Deterministic, seedable PRNG surface: `Rng`, `SeedableRng`,
//! `distributions::{Distribution, WeightedIndex}`, `seq::SliceRandom`. All the
//! workspace needs is reproducible streams per seed — not the exact upstream
//! bit streams and not cryptographic quality.

/// Low-level RNG surface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait UniformInt: Copy {
    /// Draw uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                // Multiply-shift bounded sampling; bias is negligible for the
                // span sizes the workspace uses and determinism is what matters.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                low + hi as Self
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

impl UniformInt for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distributions over values.
pub mod distributions {
    use super::RngCore;

    /// A distribution samplable with any RNG.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let msg = match self {
                WeightedError::NoItem => "no items",
                WeightedError::InvalidWeight => "invalid weight",
                WeightedError::AllWeightsZero => "all weights zero",
            };
            write!(f, "weighted index: {msg}")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Sample indices proportionally to a weight vector.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Build from anything iterable as `f64` weights (owned or borrowed).
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            use std::borrow::Borrow as _;
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w: f64 = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(Self { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let r = <f64 as super::Standard>::sample(rng);
            let target: f64 = self.total * r;
            // partition_point: first index whose cumulative weight exceeds target.
            self.cumulative
                .partition_point(|&c| c <= target)
                .min(self.cumulative.len() - 1)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::seq::SliceRandom;
    use super::*;

    struct Split(u64);
    impl RngCore for Split {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_in_unit_interval_and_ranges_in_bounds() {
        let mut rng = Split(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let r = rng.gen_range(10u64..20);
            assert!((10..20).contains(&r));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Split(3);
        let d = WeightedIndex::new([1.0f64, 0.0, 9.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
        assert!(WeightedIndex::new(core::iter::empty::<f64>()).is_err());
        assert!(WeightedIndex::new([0.0f64, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0f64]).is_err());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Split(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
