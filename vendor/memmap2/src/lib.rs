//! Offline stand-in for `memmap2` (see `vendor/README.md`).
//!
//! `Mmap` here reads the whole file into an owned buffer instead of mapping
//! pages — same `Deref<Target = [u8]>` surface, no `unsafe` aliasing concerns,
//! adequate for the tile sizes this workspace handles.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};

/// A read-only "memory map" backed by an owned buffer.
#[derive(Debug)]
pub struct Mmap {
    data: Vec<u8>,
}

impl Mmap {
    /// Read `file` fully.
    ///
    /// # Safety
    ///
    /// Always safe in this stand-in (no real mapping happens); the signature
    /// stays `unsafe` to match upstream `memmap2::Mmap::map`.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let mut f = file;
        f.seek(SeekFrom::Start(0))?;
        let mut data = Vec::new();
        f.read_to_end(&mut data)?;
        Ok(Mmap { data })
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join(format!("mmap-shim-test-{}", std::process::id()));
        std::fs::write(&path, b"hello").unwrap();
        let f = File::open(&path).unwrap();
        let m = unsafe { Mmap::map(&f) }.unwrap();
        assert_eq!(&m[..], b"hello");
        assert_eq!(m.len(), 5);
        std::fs::remove_file(&path).ok();
    }
}
