//! Offline stand-in for `rayon` (see `vendor/README.md`).
//!
//! `into_par_iter()`/`par_iter()` fall back to the equivalent *sequential* std
//! iterators: results are identical (rayon's `collect` preserves order), only
//! the data-parallel speedup is forfeited. Real thread-level parallelism in
//! this workspace lives in `crates/runtime`, which uses std threads directly.

/// The parallel-iterator traits, sequentially implemented.
pub mod prelude {
    /// `into_par_iter()` for owned collections.
    pub trait IntoParallelIterator {
        /// The (sequential) iterator type.
        type Iter: Iterator;
        /// Convert into a "parallel" iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` for borrowed slices.
    pub trait ParallelSlice<T> {
        /// Iterate by reference.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    impl<T> ParallelSlice<T> for Vec<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![3, 1, 2];
        let doubled: Vec<i32> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        assert_eq!(v.par_iter().sum::<i32>(), 6);
    }
}
