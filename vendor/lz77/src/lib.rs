//! A small LZSS engine shared by the `snap` and `miniz_oxide` stand-ins.
//!
//! Frame layout:
//!
//! ```text
//! [magic: u8] [orig_len: u32 le] [token stream...] [checksum: u32 le]
//! ```
//!
//! The token stream is flag-byte groups: each flag byte covers the next 8 items,
//! LSB first; a 0 bit is a literal byte, a 1 bit is a match encoded as
//! `[offset: u16 le] [len - MIN_MATCH: u8]`. The checksum is a Fletcher-style
//! sum over the *decompressed* bytes so corrupt frames are detected.

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 15;

/// Decompression failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LzError(pub String);

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lz77: {}", self.0)
    }
}

impl std::error::Error for LzError {}

fn checksum(data: &[u8]) -> u32 {
    let (mut a, mut b) = (1u32, 0u32);
    for &byte in data {
        a = (a + u32::from(byte)) % 65_521;
        b = (b + a) % 65_521;
    }
    (b << 16) | a
}

fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn delta_inverse(data: &mut [u8]) {
    for i in 4..data.len() {
        data[i] = data[i].wrapping_add(data[i - 4]);
    }
}

/// High 32 bits of a packed match-finder table entry: the generation stamp.
const GEN_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// Reusable match-finder state: the `head`/`prev` hash-chain tables plus the
/// delta-transform buffer, shared across [`compress_into_with`] calls.
///
/// Each table entry packs `(generation << 32) | position`; an entry whose
/// stamp differs from the scratch's current generation reads as "empty"
/// (`usize::MAX`). Starting a new frame therefore only bumps the generation —
/// an O(1) reset instead of re-`memset`ing the ~768 KB of tables every call —
/// and the compressed output stays byte-identical to a fresh-table run. The
/// tables are allocated lazily on first use; a warm scratch makes the whole
/// compress path allocation-free (output buffer aside).
#[derive(Debug, Default)]
pub struct Scratch {
    /// `head[h]` = most recent position with hash `h` (generation-stamped).
    head: Vec<u64>,
    /// `prev[i % WINDOW]` = previous position in `i`'s bucket (stamped).
    prev: Vec<u64>,
    /// Delta-transformed copy of the input.
    transformed: Vec<u8>,
    /// Stamp identifying entries written by the current frame.
    generation: u32,
}

impl Scratch {
    /// An empty scratch; tables are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new frame: allocate the tables on first use, refill them on
    /// the (u32) generation wrap, bump the stamp otherwise.
    fn begin_frame(&mut self) {
        if self.head.is_empty() {
            self.head = vec![0; 1 << HASH_BITS];
            self.prev = vec![0; WINDOW];
            self.generation = 1;
        } else if self.generation == u32::MAX {
            // After 2^32 - 1 frames the stamp would collide with entries from
            // generation 1; refill once and restart the cycle.
            self.head.fill(0);
            self.prev.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }
}

/// Compress `data` into a frame tagged with `magic`. `max_chain` bounds how many
/// previous hash-bucket candidates are examined per position (higher = better
/// ratio, slower).
pub fn compress(magic: u8, data: &[u8], max_chain: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    compress_into(magic, data, max_chain, &mut out);
    out
}

/// [`compress`] into a caller-owned buffer: `out` is cleared and filled with
/// the frame, so a hot path can reuse one output allocation across calls.
/// (The match-finder's hash tables and the delta transform still allocate
/// fresh internal scratch per call; [`compress_into_with`] reuses those too.)
pub fn compress_into(magic: u8, data: &[u8], max_chain: usize, out: &mut Vec<u8>) {
    compress_into_with(magic, data, max_chain, out, &mut Scratch::new());
}

/// [`compress_into`] with caller-owned match-finder state: byte-identical
/// output, but a reused [`Scratch`] resets its hash-chain tables in O(1) via
/// the generation stamp and keeps its delta buffer, so a warm steady-state
/// compress performs zero heap allocation beyond what `out` may grow by.
pub fn compress_into_with(
    magic: u8,
    data: &[u8],
    max_chain: usize,
    out: &mut Vec<u8>,
    scratch: &mut Scratch,
) {
    let orig = data;
    scratch.begin_frame();
    let Scratch {
        head,
        prev,
        transformed,
        generation,
    } = scratch;
    // A table entry is live iff its high 32 bits carry this frame's stamp.
    let live = u64::from(*generation) << 32;
    let slot = |entry: u64| -> usize {
        if entry & GEN_MASK == live {
            entry as u32 as usize
        } else {
            usize::MAX
        }
    };

    // Stride-4 byte delta: `t[i] = d[i] - d[i-4]`. The workspace's payloads
    // are dominated by `u32`/`f64` arrays (CSR source ids, value vectors);
    // deltaing at the word stride turns slowly-varying integer runs into long
    // repeats the LZ stage can fold. Lossless for arbitrary input. Iterating
    // high-to-low lets the transform run in place on a single copy: `t[i-4]`
    // is still the original byte when `t[i]` is rewritten.
    transformed.clear();
    transformed.extend_from_slice(data);
    for i in (4..transformed.len()).rev() {
        transformed[i] = transformed[i].wrapping_sub(transformed[i - 4]);
    }
    let data: &[u8] = transformed;

    out.clear();
    out.reserve(data.len() / 8 + 16);
    out.push(magic);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());

    let mut i = 0usize;
    let mut flag_pos = 0usize;
    let mut flag_bit = 8u8; // forces a fresh flag byte before the first item

    // Open a new flag group if the current one is full, then record one item.
    // Must run BEFORE the item's payload bytes so flag byte and payloads stay
    // in stream order.
    macro_rules! emit_item {
        ($is_match:expr) => {
            if flag_bit == 8 {
                flag_bit = 0;
                flag_pos = out.len();
                out.push(0);
            }
            if $is_match {
                out[flag_pos] |= 1 << flag_bit;
            }
            flag_bit += 1;
        };
    }

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let bucket_head = slot(head[h]);
            let mut cand = bucket_head;
            let mut chain = 0usize;
            while cand != usize::MAX && chain < max_chain {
                let off = i - cand;
                if off > WINDOW - 1 {
                    break;
                }
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = off;
                    if l == limit {
                        break;
                    }
                }
                cand = slot(prev[cand % WINDOW]);
                chain += 1;
            }
            // A raw entry copy preserves the chain: a stale (or never-written)
            // `head[h]` still reads as end-of-chain through `slot`.
            prev[i % WINDOW] = head[h];
            head[h] = live | i as u64;
        }
        if best_len >= MIN_MATCH {
            emit_item!(true);
            out.extend_from_slice(&(best_off as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Index the skipped positions so later matches can reference them.
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                if j + MIN_MATCH <= data.len() {
                    let h = hash4(data, j);
                    prev[j % WINDOW] = head[h];
                    head[h] = live | j as u64;
                }
                j += 1;
            }
            i += best_len;
        } else {
            emit_item!(false);
            out.push(data[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&checksum(orig).to_le_bytes());
}

/// Decompress a frame produced by [`compress`] with the same `magic`.
pub fn decompress(magic: u8, frame: &[u8]) -> Result<Vec<u8>, LzError> {
    let mut out = Vec::new();
    decompress_into(magic, frame, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned buffer: `out` is cleared and filled with
/// the decompressed bytes, so a hot path can reuse one allocation across
/// frames. On error `out` may hold a partial prefix; callers must treat it as
/// garbage.
pub fn decompress_into(magic: u8, frame: &[u8], out: &mut Vec<u8>) -> Result<(), LzError> {
    out.clear();
    if frame.len() < 9 {
        return Err(LzError("frame too short".into()));
    }
    if frame[0] != magic {
        return Err(LzError(format!(
            "bad magic: expected {magic:#x}, got {:#x}",
            frame[0]
        )));
    }
    let orig_len = u32::from_le_bytes(frame[1..5].try_into().unwrap()) as usize;
    let body = &frame[5..frame.len() - 4];
    let expect_sum = u32::from_le_bytes(frame[frame.len() - 4..].try_into().unwrap());

    out.reserve(orig_len);
    let mut pos = 0usize;
    while out.len() < orig_len {
        if pos >= body.len() {
            return Err(LzError("truncated token stream".into()));
        }
        let flags = body[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() == orig_len {
                break;
            }
            if flags & (1 << bit) != 0 {
                if pos + 3 > body.len() {
                    return Err(LzError("truncated match".into()));
                }
                let off = u16::from_le_bytes([body[pos], body[pos + 1]]) as usize;
                let len = body[pos + 2] as usize + MIN_MATCH;
                pos += 3;
                if off == 0 || off > out.len() {
                    return Err(LzError("match offset out of range".into()));
                }
                let start = out.len() - off;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            } else {
                if pos >= body.len() {
                    return Err(LzError("truncated literal".into()));
                }
                out.push(body[pos]);
                pos += 1;
            }
        }
    }
    if pos != body.len() {
        return Err(LzError("trailing garbage in token stream".into()));
    }
    delta_inverse(out);
    if checksum(out) != expect_sum {
        return Err(LzError("checksum mismatch".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], chain: usize) {
        let frame = compress(0xA5, data, chain);
        let back = decompress(0xA5, &frame).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrips() {
        roundtrip(b"", 16);
        roundtrip(b"x", 16);
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaa", 16);
        roundtrip(&[0u8; 10_000], 16);
        let mut mixed = Vec::new();
        for i in 0..5000u32 {
            mixed.extend_from_slice(&(i % 97).to_le_bytes());
        }
        roundtrip(&mixed, 64);
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data: Vec<u8> = (0..20_000).map(|i| (i % 16) as u8).collect();
        let frame = compress(1, &data, 32);
        assert!(frame.len() * 4 < data.len());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(decompress(1, &[0xFFu8; 64]).is_err());
        assert!(decompress(1, &[]).is_err());
        let mut frame = compress(1, b"hello world hello world", 16);
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        assert!(decompress(1, &frame).is_err());
    }

    #[test]
    fn into_variants_match_allocating_api_across_buffer_reuse() {
        let data: Vec<u8> = (0..10_000u32)
            .flat_map(|i| (i % 191).to_le_bytes())
            .collect();
        let mut frame = Vec::new();
        let mut back = Vec::new();
        for _ in 0..3 {
            compress_into(0xA5, &data, 32, &mut frame);
            assert_eq!(frame, compress(0xA5, &data, 32));
            decompress_into(0xA5, &frame, &mut back).unwrap();
            assert_eq!(back, data);
        }
        assert!(decompress_into(0xA5, &[0xFF; 32], &mut back).is_err());
    }

    /// A reused scratch must be invisible in the output: every frame
    /// byte-identical to a fresh-table compress, across payloads of different
    /// shapes and sizes (so stale entries from a previous, larger frame are
    /// actually present in the tables when the next frame runs).
    #[test]
    fn scratch_reuse_is_byte_identical_to_fresh_tables() {
        let big: Vec<u8> = (0..60_000u32)
            .flat_map(|i| (i % 191).to_le_bytes())
            .collect();
        let small: Vec<u8> = (0..500u32).flat_map(|i| (i * 7).to_le_bytes()).collect();
        let noisy: Vec<u8> = (0..20_000u32)
            .flat_map(|i| i.wrapping_mul(0x9E37_79B1).to_le_bytes())
            .collect();
        let mut scratch = Scratch::new();
        let mut frame = Vec::new();
        let mut back = Vec::new();
        for _ in 0..3 {
            for data in [&big[..], &small[..], &noisy[..], b"", b"x"] {
                for chain in [16usize, 64] {
                    compress_into_with(0xA5, data, chain, &mut frame, &mut scratch);
                    assert_eq!(frame, compress(0xA5, data, chain));
                    decompress_into(0xA5, &frame, &mut back).unwrap();
                    assert_eq!(back, data);
                }
            }
        }
    }

    /// The u32 generation stamp wraps after 2^32 - 1 frames; the refill path
    /// must keep the output byte-identical across the wrap.
    #[test]
    fn generation_wrap_refills_tables_and_stays_identical() {
        let data: Vec<u8> = (0..10_000u32)
            .flat_map(|i| (i % 97).to_le_bytes())
            .collect();
        let mut scratch = Scratch::new();
        let mut frame = Vec::new();
        compress_into_with(1, &data, 32, &mut frame, &mut scratch);
        scratch.generation = u32::MAX - 1; // two frames to the wrap
        for _ in 0..4 {
            compress_into_with(1, &data, 32, &mut frame, &mut scratch);
            assert_eq!(frame, compress(1, &data, 32));
        }
        assert!(scratch.generation >= 1 && scratch.generation < u32::MAX);
    }

    /// A warm scratch with a warm output buffer must not touch the allocator.
    #[test]
    fn warm_scratch_compress_does_not_grow_its_buffers() {
        let data: Vec<u8> = (0..30_000u32)
            .flat_map(|i| (i % 13).to_le_bytes())
            .collect();
        let mut scratch = Scratch::new();
        let mut frame = Vec::new();
        compress_into_with(1, &data, 32, &mut frame, &mut scratch);
        let head_ptr = scratch.head.as_ptr();
        let transformed_ptr = scratch.transformed.as_ptr();
        let frame_ptr = frame.as_ptr();
        compress_into_with(1, &data, 32, &mut frame, &mut scratch);
        assert_eq!(scratch.head.as_ptr(), head_ptr);
        assert_eq!(scratch.transformed.as_ptr(), transformed_ptr);
        assert_eq!(frame.as_ptr(), frame_ptr);
    }

    #[test]
    fn deeper_chains_do_not_hurt_much() {
        let mut data = Vec::new();
        for i in 0..3000u32 {
            data.extend_from_slice(&[7, 42, 0, 0]);
            data.extend_from_slice(&(i * 3).to_le_bytes());
        }
        let shallow = compress(1, &data, 8).len();
        let deep = compress(1, &data, 64).len();
        assert!(deep as f64 <= shallow as f64 * 1.01);
    }
}
