//! Offline stand-in for `miniz_oxide` (see `vendor/README.md`).
//!
//! Provides `deflate::compress_to_vec_zlib` and `inflate::decompress_to_vec_zlib`
//! over the shared LZSS engine. Higher compression levels search longer hash
//! chains, mirroring the real ratio/speed trade-off; the wire format is not
//! zlib-compatible but round-trips losslessly and rejects corrupt frames.

const MAGIC: u8 = 0x5A; // 'Z'

/// Deflate-side API.
pub mod deflate {
    use super::MAGIC;

    /// Compress `data` at `level` (0–10; higher searches harder).
    pub fn compress_to_vec_zlib(data: &[u8], level: u8) -> Vec<u8> {
        let mut out = Vec::new();
        compress_into_vec_zlib(data, level, &mut out);
        out
    }

    /// [`compress_to_vec_zlib`] into a caller-owned buffer (`out` is cleared
    /// first), so hot paths can reuse one output allocation across messages.
    pub fn compress_into_vec_zlib(data: &[u8], level: u8, out: &mut Vec<u8>) {
        compress_into_vec_zlib_with(data, level, out, &mut lz77::Scratch::new());
    }

    /// [`compress_into_vec_zlib`] with caller-owned match-finder state:
    /// byte-identical output, zero steady-state allocation when both `out`
    /// and `scratch` are reused across messages.
    pub fn compress_into_vec_zlib_with(
        data: &[u8],
        level: u8,
        out: &mut Vec<u8>,
        scratch: &mut lz77::Scratch,
    ) {
        let max_chain = match level {
            0..=1 => 16,
            2..=3 => 64,
            4..=6 => 128,
            _ => 512,
        };
        lz77::compress_into_with(MAGIC, data, max_chain, out, scratch);
    }
}

/// Inflate-side API.
pub mod inflate {
    use super::MAGIC;

    /// Decompression failure, mirroring `miniz_oxide::inflate::DecompressError`.
    #[derive(Debug, Clone)]
    pub struct DecompressError(pub String);

    impl std::fmt::Display for DecompressError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "decompress error: {}", self.0)
        }
    }

    impl std::error::Error for DecompressError {}

    /// Decompress a frame produced by [`super::deflate::compress_to_vec_zlib`].
    pub fn decompress_to_vec_zlib(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
        lz77::decompress(MAGIC, data).map_err(|e| DecompressError(e.0))
    }

    /// Decompress into a caller-owned buffer (`out` is cleared first).
    /// On error `out` may hold a partial prefix; treat it as garbage.
    pub fn decompress_into_vec_zlib(data: &[u8], out: &mut Vec<u8>) -> Result<(), DecompressError> {
        lz77::decompress_into(MAGIC, data, out).map_err(|e| DecompressError(e.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_roundtrip_and_higher_levels_do_not_regress() {
        let data: Vec<u8> = (0..30_000u32)
            .flat_map(|i| (i % 251).to_le_bytes())
            .collect();
        let l1 = deflate::compress_to_vec_zlib(&data, 1);
        let l3 = deflate::compress_to_vec_zlib(&data, 3);
        assert_eq!(inflate::decompress_to_vec_zlib(&l1).unwrap(), data);
        assert_eq!(inflate::decompress_to_vec_zlib(&l3).unwrap(), data);
        assert!(l3.len() as f64 <= l1.len() as f64 * 1.01);
        assert!(inflate::decompress_to_vec_zlib(&[0xFF; 64]).is_err());
    }
}
