//! Offline stand-in for `serde_derive`: the derives are no-ops because nothing in
//! the workspace serialises through serde (wire formats are hand-rolled). The
//! derive attributes exist so `#[derive(Serialize, Deserialize)]` keeps compiling.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
