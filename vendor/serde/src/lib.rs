//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on config and metrics types
//! for forward compatibility but never serialises through serde, so the traits
//! are markers and the derives are no-ops.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
