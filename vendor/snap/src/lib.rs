//! Offline stand-in for the `snap` crate (see `vendor/README.md`).
//!
//! Exposes the `snap::raw::{Encoder, Decoder}` API over the shared LZSS engine.
//! The wire format is NOT Snappy-compatible; it only needs to round-trip
//! losslessly and reject corrupt input, which is all the workspace relies on.

pub mod raw {
    const MAGIC: u8 = 0x53; // 'S'
    const MAX_CHAIN: usize = 32;

    /// Compression failure (the stand-in never fails to compress).
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "snappy: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Raw-block Snappy encoder.
    #[derive(Debug, Default)]
    pub struct Encoder;

    impl Encoder {
        /// A new encoder.
        pub fn new() -> Self {
            Encoder
        }

        /// Compress `data` into a fresh vector.
        pub fn compress_vec(&mut self, data: &[u8]) -> Result<Vec<u8>, Error> {
            Ok(lz77::compress(MAGIC, data, MAX_CHAIN))
        }

        /// Compress `data` into a caller-owned buffer (`out` is cleared
        /// first), so hot paths can reuse one output allocation across
        /// messages.
        pub fn compress_into(&mut self, data: &[u8], out: &mut Vec<u8>) -> Result<(), Error> {
            lz77::compress_into(MAGIC, data, MAX_CHAIN, out);
            Ok(())
        }

        /// [`Encoder::compress_into`] with caller-owned match-finder state:
        /// byte-identical output, zero steady-state allocation when both
        /// `out` and `scratch` are reused across messages.
        pub fn compress_into_with(
            &mut self,
            data: &[u8],
            out: &mut Vec<u8>,
            scratch: &mut lz77::Scratch,
        ) -> Result<(), Error> {
            lz77::compress_into_with(MAGIC, data, MAX_CHAIN, out, scratch);
            Ok(())
        }
    }

    /// Raw-block Snappy decoder.
    #[derive(Debug, Default)]
    pub struct Decoder;

    impl Decoder {
        /// A new decoder.
        pub fn new() -> Self {
            Decoder
        }

        /// Decompress `data` previously produced by [`Encoder::compress_vec`].
        pub fn decompress_vec(&mut self, data: &[u8]) -> Result<Vec<u8>, Error> {
            lz77::decompress(MAGIC, data).map_err(|e| Error(e.0))
        }

        /// Decompress into a caller-owned buffer (`out` is cleared first).
        /// On error `out` may hold a partial prefix; treat it as garbage.
        pub fn decompress_into(&mut self, data: &[u8], out: &mut Vec<u8>) -> Result<(), Error> {
            lz77::decompress_into(MAGIC, data, out).map_err(|e| Error(e.0))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_reject() {
            let data = b"the quick brown fox jumps over the lazy dog the quick brown fox";
            let c = Encoder::new().compress_vec(data).unwrap();
            assert_eq!(Decoder::new().decompress_vec(&c).unwrap(), data);
            assert!(Decoder::new().decompress_vec(&[0xFF; 64]).is_err());
        }
    }
}
