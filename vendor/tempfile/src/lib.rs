//! Offline stand-in for `tempfile` (see `vendor/README.md`).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory deleted (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Keep the directory, returning its path.
    pub fn into_path(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// Create a fresh directory under the system temp dir.
pub fn tempdir() -> io::Result<TempDir> {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!("graphh-tmp-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&path)?;
    Ok(TempDir { path })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_exists_then_vanishes() {
        let d = tempdir().unwrap();
        let p = d.path().to_path_buf();
        assert!(p.is_dir());
        std::fs::write(p.join("f"), b"x").unwrap();
        drop(d);
        assert!(!p.exists());
    }
}
