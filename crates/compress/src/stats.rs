//! Compression ratio and throughput measurement (Table V).

use crate::Codec;
use std::time::Instant;

/// Measured behaviour of one codec on one payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecMeasurement {
    /// Codec measured.
    pub codec: Codec,
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Output (compressed) size in bytes.
    pub compressed_bytes: u64,
    /// `input / compressed`.
    pub ratio: f64,
    /// Compression throughput in bytes/second (wall-clock, single core).
    pub compress_throughput: f64,
    /// Decompression throughput in bytes/second (wall-clock, single core).
    pub decompress_throughput: f64,
}

/// Compress and decompress `data` once with `codec`, measuring size and speed.
pub fn measure(codec: Codec, data: &[u8]) -> CodecMeasurement {
    let start = Instant::now();
    let compressed = codec.compress(data);
    let compress_secs = start.elapsed().as_secs_f64().max(1e-9);

    let start = Instant::now();
    let restored = codec
        .decompress(&compressed)
        .expect("data we just compressed must decompress");
    let decompress_secs = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        restored.len(),
        data.len(),
        "codec {} corrupted payload",
        codec.name()
    );

    CodecMeasurement {
        codec,
        input_bytes: data.len() as u64,
        compressed_bytes: compressed.len() as u64,
        ratio: if compressed.is_empty() {
            1.0
        } else {
            data.len() as f64 / compressed.len() as f64
        },
        compress_throughput: data.len() as f64 / compress_secs,
        decompress_throughput: data.len() as f64 / decompress_secs,
    }
}

/// Measure every paper codec (cache modes 1–4) on the same payload.
pub fn measure_all(data: &[u8]) -> Vec<CodecMeasurement> {
    [Codec::Raw, Codec::Snappy, Codec::Zlib1, Codec::Zlib3]
        .into_iter()
        .map(|c| measure(c, data))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compressible_payload() -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..20_000u32 {
            out.extend_from_slice(&(i / 3).to_le_bytes());
        }
        out
    }

    #[test]
    fn measurement_reports_consistent_sizes() {
        let data = compressible_payload();
        let m = measure(Codec::Snappy, &data);
        assert_eq!(m.input_bytes, data.len() as u64);
        assert!(m.compressed_bytes < m.input_bytes);
        assert!((m.ratio - data.len() as f64 / m.compressed_bytes as f64).abs() < 1e-9);
        assert!(m.compress_throughput > 0.0);
        assert!(m.decompress_throughput > 0.0);
    }

    #[test]
    fn measure_all_covers_paper_modes_in_order() {
        let data = compressible_payload();
        let all = measure_all(&data);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].codec, Codec::Raw);
        assert_eq!(all[3].codec, Codec::Zlib3);
        // Raw never shrinks; zlib should beat snappy on this synthetic payload.
        assert_eq!(all[0].compressed_bytes, all[0].input_bytes);
        assert!(all[2].ratio >= all[1].ratio * 0.9);
    }

    #[test]
    fn empty_payload_is_handled() {
        let m = measure(Codec::Zlib1, b"");
        assert_eq!(m.input_bytes, 0);
    }
}
