//! LEB128 varint and delta coding of 32-bit integer streams.
//!
//! CSR column arrays are sorted runs of vertex ids with small gaps; delta-coding the
//! gaps and varint-encoding the result is the classic graph-compression trick
//! (WebGraph-style). GraphH's cache can use it as an alternative to general-purpose
//! codecs; it is exercised by the ablation benchmarks.

/// Append a LEB128-encoded `u32` to `out`.
pub fn write_varint(mut value: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128-encoded `u32` from `data[*pos..]`, advancing `pos`.
pub fn read_varint(data: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = data.get(*pos) else {
            return Err("varint truncated".to_string());
        };
        *pos += 1;
        if shift >= 35 {
            return Err("varint too long".to_string());
        }
        // The 5th byte (shift 28) can only contribute u32's top 4 bits; any
        // higher payload bit would be shifted out silently, making distinct
        // non-canonical encodings decode to the same value.
        if shift == 28 && byte & 0x70 != 0 {
            return Err("varint overflows u32".to_string());
        }
        value |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Append a LEB128-encoded `u64` to `out`.
pub fn write_varint64(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128-encoded `u64` from `data[*pos..]`, advancing `pos`.
pub fn read_varint64(data: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = data.get(*pos) else {
            return Err("varint truncated".to_string());
        };
        *pos += 1;
        if shift >= 70 {
            return Err("varint too long".to_string());
        }
        // The 10th byte (shift 63) can only contribute u64's top bit; reject
        // overflowing payload bits instead of dropping them.
        if shift == 63 && byte & 0x7E != 0 {
            return Err("varint overflows u64".to_string());
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zig-zag encode a signed delta (small magnitudes → small varints).
#[inline]
fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Delta-code one value against `prev` and append its zig-zag varint.
#[inline]
fn write_delta(v: u32, prev: &mut i64, out: &mut Vec<u8>) {
    let delta = i64::from(v) - *prev;
    *prev = i64::from(v);
    write_varint64(zigzag(delta), out);
}

/// Read one zig-zag varint delta and fold it into `prev`, range-checked.
#[inline]
fn read_delta(data: &[u8], pos: &mut usize, prev: &mut i64) -> Result<u32, String> {
    *prev += unzigzag(read_varint64(data, pos)?);
    if !(0..=i64::from(u32::MAX)).contains(prev) {
        return Err(format!("decoded value {prev} out of u32 range"));
    }
    Ok(*prev as u32)
}

/// Encode a `u32` slice with zig-zag delta + varint coding.
pub fn encode_u32_delta(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    write_varint(values.len() as u32, &mut out);
    let mut prev: i64 = 0;
    for &v in values {
        write_delta(v, &mut prev, &mut out);
    }
    out
}

/// Decode the output of [`encode_u32_delta`].
pub fn decode_u32_delta(data: &[u8]) -> Result<Vec<u32>, String> {
    let mut pos = 0usize;
    let len = read_varint(data, &mut pos)? as usize;
    let mut out = Vec::with_capacity(len);
    let mut prev: i64 = 0;
    for _ in 0..len {
        out.push(read_delta(data, &mut pos, &mut prev)?);
    }
    Ok(out)
}

/// Treat an arbitrary byte buffer as little-endian `u32`s (padding the tail with a
/// recorded number of leftover bytes) and delta-encode it. This is what lets the
/// varint codec plug into the generic byte-oriented [`Codec`](crate::Codec) API.
pub fn encode_bytes_as_u32_delta(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_bytes_as_u32_delta_into(data, &mut out);
    out
}

/// [`encode_bytes_as_u32_delta`] into a caller-owned buffer (`out` is cleared
/// first) with no intermediate word vector: the words are delta-coded
/// straight off the byte slice, so a reused `out` makes the encode
/// allocation-free.
pub fn encode_bytes_as_u32_delta_into(data: &[u8], out: &mut Vec<u8>) {
    out.clear();
    let full_words = data.len() / 4;
    let tail = &data[full_words * 4..];
    out.push(tail.len() as u8);
    out.extend_from_slice(tail);
    write_varint(full_words as u32, out);
    let mut prev: i64 = 0;
    for c in data[..full_words * 4].chunks_exact(4) {
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        write_delta(v, &mut prev, out);
    }
}

/// Inverse of [`encode_bytes_as_u32_delta`].
pub fn decode_u32_delta_to_bytes(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    decode_u32_delta_to_bytes_into(data, &mut out)?;
    Ok(out)
}

/// [`decode_u32_delta_to_bytes`] into a caller-owned buffer (`out` is cleared
/// first), decoding words straight into the output bytes. On error `out` may
/// hold a partial prefix; treat it as garbage.
pub fn decode_u32_delta_to_bytes_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), String> {
    out.clear();
    let Some(&tail_len) = data.first() else {
        return Err("empty varint-delta payload".to_string());
    };
    let tail_len = tail_len as usize;
    if data.len() < 1 + tail_len {
        return Err("varint-delta payload shorter than declared tail".to_string());
    }
    let words = &data[1 + tail_len..];
    let mut pos = 0usize;
    let len = read_varint(words, &mut pos)? as usize;
    // `len` is wire-controlled: grow as we decode rather than trusting it
    // with one huge up-front reservation.
    let mut prev: i64 = 0;
    for _ in 0..len {
        let v = read_delta(words, &mut pos, &mut prev)?;
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&data[1..1 + tail_len]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u32, 1, 127, 128, 16_383, 16_384, u32::MAX / 2, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflowing_final_byte_u32() {
        // Canonical u32::MAX: 5 bytes, final byte 0x0F.
        let mut buf = Vec::new();
        write_varint(u32::MAX, &mut buf);
        assert_eq!(buf, [0xFF, 0xFF, 0xFF, 0xFF, 0x0F]);
        // Any payload bit above the top 4 in the 5th byte must error instead
        // of silently decoding to the same value as a canonical encoding.
        for last in [0x10u8, 0x1F, 0x70, 0x7F] {
            let bad = [0xFF, 0xFF, 0xFF, 0xFF, last];
            let mut pos = 0;
            assert!(
                read_varint(&bad, &mut pos).is_err(),
                "final byte {last:#x} should overflow"
            );
        }
        // The largest valid final byte still round-trips.
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80, 0x80, 0x80, 0x80, 0x0F], &mut pos).unwrap(),
            0x0F << 28
        );
    }

    #[test]
    fn varint_rejects_overflowing_final_byte_u64() {
        // Canonical u64::MAX: 10 bytes, final byte 0x01.
        let mut buf = Vec::new();
        write_varint64(u64::MAX, &mut buf);
        assert_eq!(buf.len(), 10);
        assert_eq!(*buf.last().unwrap(), 0x01);
        let mut pos = 0;
        assert_eq!(read_varint64(&buf, &mut pos).unwrap(), u64::MAX);
        // 10th byte may only carry the top bit.
        for last in [0x02u8, 0x03, 0x7E, 0x7F] {
            let mut bad = vec![0x80u8; 9];
            bad.push(last);
            let mut pos = 0;
            assert!(
                read_varint64(&bad, &mut pos).is_err(),
                "final byte {last:#x} should overflow"
            );
        }
        // 1 << 63 (only the top bit set) is the boundary case that must pass.
        let mut top = vec![0x80u8; 9];
        top.push(0x01);
        let mut pos = 0;
        assert_eq!(read_varint64(&top, &mut pos).unwrap(), 1u64 << 63);
    }

    #[test]
    fn varint_truncated_is_error() {
        let mut buf = Vec::new();
        write_varint(300, &mut buf);
        buf.pop();
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn delta_roundtrip_sorted_and_unsorted() {
        let sorted: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let unsorted: Vec<u32> = vec![5, 0, u32::MAX, 17, 17, 2];
        for values in [sorted, unsorted, Vec::new()] {
            let enc = encode_u32_delta(&values);
            assert_eq!(decode_u32_delta(&enc).unwrap(), values);
        }
    }

    #[test]
    fn sorted_ids_compress_well() {
        let values: Vec<u32> = (0..10_000u32).map(|i| 1_000_000 + i * 2).collect();
        let enc = encode_u32_delta(&values);
        // Raw is 40 KB; delta coding should cut it by more than half.
        assert!(
            enc.len() < values.len() * 4 / 2,
            "encoded {} bytes",
            enc.len()
        );
    }

    #[test]
    fn bytes_adapter_roundtrip_including_odd_lengths() {
        for len in [0usize, 1, 3, 4, 5, 8, 13, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            let enc = encode_bytes_as_u32_delta(&data);
            assert_eq!(decode_u32_delta_to_bytes(&enc).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn corrupt_bytes_adapter_is_error() {
        assert!(decode_u32_delta_to_bytes(&[]).is_err());
        assert!(decode_u32_delta_to_bytes(&[10, 1, 2]).is_err());
    }
}
