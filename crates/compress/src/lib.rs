//! # graphh-compress
//!
//! Compression layer for tiles and broadcast messages (paper §IV-B, §IV-C, Table V).
//!
//! GraphH compresses cached tiles and network messages with snappy or zlib; the edge
//! cache picks the lightest codec whose compression ratio lets the working set fit in
//! memory, and the communication channel defaults to snappy. This crate provides:
//!
//! * [`Codec`] — the codecs the paper evaluates (raw, snappy, zlib-1, zlib-3) plus a
//!   graph-specific varint-delta codec used by the ablation benchmarks,
//! * [`varint`] — LEB128 varint and delta encoding of id sequences,
//! * [`stats`] — ratio / throughput measurement used to regenerate Table V.

pub mod stats;
pub mod varint;

pub use stats::{measure, CodecMeasurement};

use miniz_oxide::{deflate, inflate};

/// A compression codec.
///
/// The integer values of the first four variants match the paper's cache "modes"
/// (§IV-B): mode-1 caches raw tiles, mode-2 snappy, mode-3 zlib-1, mode-4 zlib-3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// No compression (cache mode-1).
    Raw,
    /// Snappy (cache mode-2; also the default message compressor).
    Snappy,
    /// zlib level 1 (cache mode-3).
    Zlib1,
    /// zlib level 3 (cache mode-4).
    Zlib3,
    /// Varint + delta coding of 32-bit id streams; graph-specific extension codec.
    VarintDelta,
}

/// Errors from compression or decompression.
#[derive(Debug)]
pub enum CompressError {
    /// The payload could not be decompressed (corrupt or wrong codec).
    Corrupt(String),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Corrupt(m) => write!(f, "corrupt compressed data: {m}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// Reusable per-compressor state for the broadcast hot path: the LZSS
/// match-finder's hash-chain tables and delta buffer (reset in O(1) via a
/// generation stamp, see [`lz77::Scratch`]) plus local, non-atomic call
/// statistics.
///
/// One instance lives with each encode lane / run loop; threading it through
/// [`Codec::compress_into_with`] makes the steady-state *compressed* encode
/// path allocation-free — the output stays byte-identical to the per-call
/// APIs. The stats are plain counters so recording them costs nothing on the
/// hot path; [`CompressorScratch::publish_observability`] flushes them into
/// the process-global `compress.*` counters (`graphh_obs`) once, at run end.
#[derive(Debug, Default)]
pub struct CompressorScratch {
    lz: lz77::Scratch,
    /// `compress_into_with` invocations through this scratch.
    calls: u64,
    /// Plain (pre-compression) bytes pushed through this scratch.
    bytes_in: u64,
    /// Compressed bytes produced through this scratch.
    bytes_out: u64,
    /// Calls that found the scratch warm (everything after the first).
    scratch_reuses: u64,
}

impl CompressorScratch {
    /// A cold scratch; all internal buffers are allocated lazily on first
    /// use, so creating one is free.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one call's traffic (invoked by [`Codec::compress_into_with`]).
    fn note(&mut self, bytes_in: usize, bytes_out: usize) {
        self.scratch_reuses += u64::from(self.calls > 0);
        self.calls += 1;
        self.bytes_in += bytes_in as u64;
        self.bytes_out += bytes_out as u64;
    }

    /// Calls recorded since the last flush (test aid).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Flush the locally accumulated stats into the process-global
    /// `compress.calls` / `compress.bytes_in` / `compress.bytes_out` /
    /// `compress.scratch_reuses` counters and zero them. Registry lookups
    /// lock and may allocate, so this belongs at run end, never in the
    /// superstep loop (see `docs/OBSERVABILITY.md`).
    pub fn publish_observability(&mut self) {
        if self.calls == 0 {
            return;
        }
        let counters = graphh_obs::global_counters();
        counters.counter("compress.calls").add(self.calls);
        counters.counter("compress.bytes_in").add(self.bytes_in);
        counters.counter("compress.bytes_out").add(self.bytes_out);
        counters
            .counter("compress.scratch_reuses")
            .add(self.scratch_reuses);
        self.calls = 0;
        self.bytes_in = 0;
        self.bytes_out = 0;
        self.scratch_reuses = 0;
    }
}

impl Codec {
    /// All codecs, in cache-mode order.
    pub const ALL: [Codec; 5] = [
        Codec::Raw,
        Codec::Snappy,
        Codec::Zlib1,
        Codec::Zlib3,
        Codec::VarintDelta,
    ];

    /// The codec for a paper cache mode (1–4).
    pub fn from_cache_mode(mode: u8) -> Option<Codec> {
        match mode {
            1 => Some(Codec::Raw),
            2 => Some(Codec::Snappy),
            3 => Some(Codec::Zlib1),
            4 => Some(Codec::Zlib3),
            _ => None,
        }
    }

    /// The paper cache mode this codec corresponds to (None for the extension codec).
    pub fn cache_mode(self) -> Option<u8> {
        match self {
            Codec::Raw => Some(1),
            Codec::Snappy => Some(2),
            Codec::Zlib1 => Some(3),
            Codec::Zlib3 => Some(4),
            Codec::VarintDelta => None,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::Snappy => "snappy",
            Codec::Zlib1 => "zlib-1",
            Codec::Zlib3 => "zlib-3",
            Codec::VarintDelta => "varint-delta",
        }
    }

    /// The *estimated* compression ratio GraphH's cache-mode selector assumes before
    /// it has seen any data (γ in §IV-B: γ₁=1, γ₂=2, γ₃=4, γ₄=5).
    pub fn estimated_ratio(self) -> f64 {
        match self {
            Codec::Raw => 1.0,
            Codec::Snappy => 2.0,
            Codec::Zlib1 => 4.0,
            Codec::Zlib3 => 5.0,
            Codec::VarintDelta => 3.0,
        }
    }

    /// Nominal single-core decompression throughput in bytes/second, used by the cost
    /// model (Table V reports ~900 MB/s for snappy and ~50–65 MB/s for zlib).
    pub fn decompress_throughput(self) -> f64 {
        match self {
            Codec::Raw => f64::INFINITY,
            Codec::Snappy => 900.0e6,
            Codec::Zlib1 => 62.0e6,
            Codec::Zlib3 => 52.0e6,
            Codec::VarintDelta => 600.0e6,
        }
    }

    /// Compress `data`.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.compress_into(data, &mut out);
        out
    }

    /// [`Codec::compress`] into a caller-owned buffer: `out` is cleared and
    /// filled with the compressed bytes (byte-identical to `compress`), so a
    /// hot path that pushes many messages through the codec can reuse one
    /// output allocation for all of them.
    pub fn compress_into(&self, data: &[u8], out: &mut Vec<u8>) {
        self.compress_into_with(data, out, &mut CompressorScratch::new());
    }

    /// [`Codec::compress_into`] with caller-owned compressor state: the LZSS
    /// codecs reuse `scratch`'s match-finder tables instead of re-allocating
    /// them per call, which removes every steady-state allocation from the
    /// compressed broadcast path. Output is byte-identical to [`Codec::compress`]
    /// for every codec; `Raw` and `VarintDelta` need no match-finder state and
    /// only record call statistics on `scratch`.
    pub fn compress_into_with(
        &self,
        data: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut CompressorScratch,
    ) {
        match self {
            Codec::Raw => {
                out.clear();
                out.extend_from_slice(data);
            }
            Codec::Snappy => snap::raw::Encoder::new()
                .compress_into_with(data, out, &mut scratch.lz)
                .expect("snappy compression cannot fail on in-memory data"),
            Codec::Zlib1 => deflate::compress_into_vec_zlib_with(data, 1, out, &mut scratch.lz),
            Codec::Zlib3 => deflate::compress_into_vec_zlib_with(data, 3, out, &mut scratch.lz),
            Codec::VarintDelta => varint::encode_bytes_as_u32_delta_into(data, out),
        }
        scratch.note(data.len(), out.len());
    }

    /// Decompress `data` previously produced by [`Codec::compress`] with the same codec.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::new();
        self.decompress_into(data, &mut out)?;
        Ok(out)
    }

    /// [`Codec::decompress`] into a caller-owned buffer: `out` is cleared and
    /// filled with the decompressed bytes. On error `out` may hold a partial
    /// prefix; treat it as garbage.
    pub fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
        match self {
            Codec::Raw => {
                out.clear();
                out.extend_from_slice(data);
                Ok(())
            }
            Codec::Snappy => snap::raw::Decoder::new()
                .decompress_into(data, out)
                .map_err(|e| CompressError::Corrupt(e.to_string())),
            Codec::Zlib1 | Codec::Zlib3 => inflate::decompress_into_vec_zlib(data, out)
                .map_err(|e| CompressError::Corrupt(format!("{e:?}"))),
            Codec::VarintDelta => {
                varint::decode_u32_delta_to_bytes_into(data, out).map_err(CompressError::Corrupt)
            }
        }
    }

    /// Achieved compression ratio (`uncompressed / compressed`) on a sample.
    pub fn measured_ratio(&self, data: &[u8]) -> f64 {
        if data.is_empty() {
            return 1.0;
        }
        let compressed = self.compress(data);
        data.len() as f64 / compressed.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tile_like_data() -> Vec<u8> {
        // CSR column arrays from web graphs mix small per-vertex deltas with hub ids
        // that recur in many adjacency lists; both general-purpose codecs (repeated
        // byte patterns) and the delta codec (small gaps) can exploit this.
        let mut out = Vec::new();
        let hubs: [u32; 4] = [7, 42, 1000, 65_536];
        for vertex in 0..10_000u32 {
            for &h in &hubs {
                out.extend_from_slice(&h.to_le_bytes());
            }
            out.extend_from_slice(&(vertex * 3).to_le_bytes());
        }
        out
    }

    #[test]
    fn all_codecs_roundtrip() {
        let data = sample_tile_like_data();
        for codec in Codec::ALL {
            let compressed = codec.compress(&data);
            let restored = codec.decompress(&compressed).unwrap();
            assert_eq!(restored, data, "codec {}", codec.name());
        }
    }

    /// The `_into` variants must be byte-identical to the allocating API and
    /// safe to call repeatedly on the same (dirty) buffers — that reuse is the
    /// whole point of the broadcast hot path's scratch buffers.
    #[test]
    fn into_variants_match_allocating_api_across_buffer_reuse() {
        let data = sample_tile_like_data();
        let mut compressed = Vec::new();
        let mut restored = Vec::new();
        for codec in Codec::ALL {
            for _ in 0..2 {
                codec.compress_into(&data, &mut compressed);
                assert_eq!(compressed, codec.compress(&data), "codec {}", codec.name());
                codec.decompress_into(&compressed, &mut restored).unwrap();
                assert_eq!(restored, data, "codec {}", codec.name());
            }
        }
        // Corrupt input errors without panicking, whatever is left in `out`.
        assert!(Codec::Snappy
            .decompress_into(&[0xFF; 64], &mut restored)
            .is_err());
    }

    /// `compress_into_with` on a warm, repeatedly reused scratch must stay
    /// byte-identical to the per-call allocating API — across all codecs and
    /// payload shapes, including mid-stream payload-size changes that leave
    /// stale match-finder entries behind.
    #[test]
    fn scratch_reuse_is_byte_identical_for_every_codec() {
        let big = sample_tile_like_data();
        let payloads: [&[u8]; 4] = [&big, b"short", &big[..4096], b""];
        let mut out = Vec::new();
        for codec in Codec::ALL {
            let mut scratch = CompressorScratch::new();
            for round in 0..3 {
                for payload in payloads {
                    codec.compress_into_with(payload, &mut out, &mut scratch);
                    assert_eq!(
                        out,
                        codec.compress(payload),
                        "codec {} round {round} payload len {}",
                        codec.name(),
                        payload.len()
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_counts_calls_bytes_and_reuses() {
        let data = sample_tile_like_data();
        let mut scratch = CompressorScratch::new();
        let mut out = Vec::new();
        let mut expect_out = 0u64;
        for _ in 0..3 {
            Codec::Snappy.compress_into_with(&data, &mut out, &mut scratch);
            expect_out += out.len() as u64;
        }
        assert_eq!(scratch.calls, 3);
        assert_eq!(scratch.bytes_in, 3 * data.len() as u64);
        assert_eq!(scratch.bytes_out, expect_out);
        assert_eq!(scratch.scratch_reuses, 2);
        // Flushing publishes into the global registry and zeroes the locals.
        scratch.publish_observability();
        assert_eq!(scratch.calls(), 0);
        assert!(
            graphh_obs::global_counters()
                .counter("compress.calls")
                .get()
                >= 3
        );
    }

    #[test]
    fn all_codecs_roundtrip_empty_and_small() {
        for codec in Codec::ALL {
            for data in [&b""[..], &b"x"[..], &[0u8, 1, 2, 3][..]] {
                let restored = codec.decompress(&codec.compress(data)).unwrap();
                assert_eq!(restored, data, "codec {}", codec.name());
            }
        }
    }

    #[test]
    fn compressing_codecs_shrink_tile_like_data() {
        let data = sample_tile_like_data();
        for codec in [
            Codec::Snappy,
            Codec::Zlib1,
            Codec::Zlib3,
            Codec::VarintDelta,
        ] {
            let ratio = codec.measured_ratio(&data);
            assert!(ratio > 1.2, "codec {} ratio {ratio}", codec.name());
        }
    }

    #[test]
    fn zlib3_compresses_at_least_as_well_as_zlib1() {
        let data = sample_tile_like_data();
        assert!(Codec::Zlib3.measured_ratio(&data) >= Codec::Zlib1.measured_ratio(&data) * 0.99);
    }

    #[test]
    fn cache_mode_mapping_is_bijective_for_paper_modes() {
        for mode in 1u8..=4 {
            let codec = Codec::from_cache_mode(mode).unwrap();
            assert_eq!(codec.cache_mode(), Some(mode));
        }
        assert!(Codec::from_cache_mode(0).is_none());
        assert!(Codec::from_cache_mode(5).is_none());
        assert_eq!(Codec::VarintDelta.cache_mode(), None);
    }

    #[test]
    fn corrupt_data_is_an_error_not_a_panic() {
        let garbage = vec![0xFFu8; 64];
        assert!(Codec::Snappy.decompress(&garbage).is_err());
        assert!(Codec::Zlib1.decompress(&garbage).is_err());
    }

    #[test]
    fn estimated_ratios_match_paper_gammas() {
        assert_eq!(Codec::Raw.estimated_ratio(), 1.0);
        assert_eq!(Codec::Snappy.estimated_ratio(), 2.0);
        assert_eq!(Codec::Zlib1.estimated_ratio(), 4.0);
        assert_eq!(Codec::Zlib3.estimated_ratio(), 5.0);
    }
}
