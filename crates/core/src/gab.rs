//! The GAB (Gather–Apply–Broadcast) programming abstraction (paper §III-C.2).
//!
//! A GAB program updates a vertex with two user functions:
//!
//! * `gather` — walk the vertex's in-edges, reading the *source* vertices' current
//!   values from the local replica array, and fold them into an accumulator,
//! * `apply` — combine the accumulator with the vertex's current value to produce the
//!   new value.
//!
//! Broadcasting the new value to the other replicas is the engine's job, which is why
//! (unlike GAS) the user only writes two functions. Values are `f64`; that covers
//! every algorithm in the paper (ranks, distances, component labels) and keeps the
//! wire encoding uniform.
//!
//! ## Direction-aware programs
//!
//! Beyond the paper, a program may also provide a **push side**
//! ([`GabProgram::scatter`] over out-edges with an order-insensitive
//! [`GabProgram::combine`]) and a per-superstep [`GabProgram::direction`]
//! hook deciding — from the globally-replicated [`FrontierStats`] — whether
//! the superstep runs the pull (gather) or push (scatter) tile loop. The
//! engine guarantees both loops produce bit-identical broadcasts for
//! programs honouring the combine-order contract; `docs/ALGORITHMS.md`
//! spells out the exact rules.

use graphh_graph::ids::VertexId;

/// Which tile loop a superstep runs.
///
/// This is both the program hook's *request* ([`GabProgram::direction`] may
/// return [`Direction::Auto`] to delegate to the engine's Beamer-style
/// heuristic) and, after [`crate::exec::ExecutionPlan::resolve_direction`],
/// the engine's *decision* (never `Auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Gather over in-edges: every active target folds its in-neighbours.
    Pull,
    /// Scatter over out-edges: every frontier source emits contributions.
    Push,
    /// Let the engine choose from the frontier stats (hook return only).
    Auto,
}

impl Direction {
    /// Stable lower-case label ("pull" / "push" / "auto") for counters,
    /// span args and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Pull => "pull",
            Direction::Push => "push",
            Direction::Auto => "auto",
        }
    }
}

/// The run-level direction policy (config knob / `--direction` CLI flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectionMode {
    /// Ask the program's [`GabProgram::direction`] hook every superstep.
    #[default]
    Auto,
    /// Run every superstep on the pull path, ignoring the hook.
    ForcePull,
    /// Run every superstep on the push path (rejected at plan time for
    /// programs without a push side).
    ForcePush,
}

impl DirectionMode {
    /// Stable lower-case label ("auto" / "pull" / "push").
    pub fn as_str(self) -> &'static str {
        match self {
            DirectionMode::Auto => "auto",
            DirectionMode::ForcePull => "pull",
            DirectionMode::ForcePush => "push",
        }
    }
}

impl std::str::FromStr for DirectionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(DirectionMode::Auto),
            "pull" => Ok(DirectionMode::ForcePull),
            "push" => Ok(DirectionMode::ForcePush),
            other => Err(format!(
                "unknown direction mode {other:?} (expected auto, pull or push)"
            )),
        }
    }
}

/// Globally-replicated frontier bookkeeping for one superstep.
///
/// Every executor computes this from the *same* merged update set (the
/// frontier is replicated on every server, like the vertex values), so the
/// stats — and every decision derived from them (Bloom dense-skip, direction
/// choice) — are identical on the sequential executor, every threaded
/// worker, and every `graphh-node` process at the same superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierStats {
    /// Vertices updated in the previous superstep.
    pub frontier_size: u64,
    /// Sum of out-degrees over the frontier (edges a push superstep scans).
    pub frontier_out_edges: u64,
    /// Vertices in the graph.
    pub num_vertices: u64,
    /// Edges in the graph (edges a pull superstep scans at worst).
    pub total_out_edges: u64,
}

impl FrontierStats {
    /// Fraction of all vertices in the frontier, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.frontier_size as f64 / self.num_vertices as f64
        }
    }

    /// The Beamer-style direction heuristic (direction-optimizing BFS):
    /// push while the frontier is sparse, pull once it covers enough of the
    /// graph that scanning everything is cheaper than chasing out-edges.
    ///
    /// Pure integer arithmetic over replicated stats — bit-identical on
    /// every executor. Chooses [`Direction::Push`] iff the frontier's
    /// out-edges are under `1/alpha` of all edges **and** the frontier holds
    /// under `1/beta` of all vertices; [`Direction::Pull`] otherwise.
    pub fn beamer(&self, alpha: u64, beta: u64) -> Direction {
        let sparse_edges = self.frontier_out_edges.saturating_mul(alpha) < self.total_out_edges;
        let sparse_vertices = self.frontier_size.saturating_mul(beta) < self.num_vertices;
        if sparse_edges && sparse_vertices {
            Direction::Push
        } else {
            Direction::Pull
        }
    }
}

/// Context available while computing initial values.
#[derive(Debug, Clone, Copy)]
pub struct InitContext<'a> {
    /// Number of vertices in the graph.
    pub num_vertices: u64,
    /// Out-degree of every vertex (the array PageRank asks the engine to load).
    pub out_degrees: &'a [u32],
    /// In-degree of every vertex.
    pub in_degrees: &'a [u32],
}

/// Context available to `gather` and `apply`.
#[derive(Debug, Clone, Copy)]
pub struct VertexContext<'a> {
    /// Current values of *all* vertices (the local replica array).
    pub values: &'a [f64],
    /// Out-degree of every vertex.
    pub out_degrees: &'a [u32],
    /// In-degree of every vertex.
    pub in_degrees: &'a [u32],
    /// Number of vertices in the graph.
    pub num_vertices: u64,
    /// Current superstep (0-based).
    pub superstep: u32,
}

/// A vertex-centric program in the GAB model.
pub trait GabProgram: Send + Sync {
    /// Human-readable program name (used in logs and experiment output).
    fn name(&self) -> &'static str;

    /// Initial value of vertex `v`.
    fn initial_value(&self, v: VertexId, ctx: &InitContext<'_>) -> f64;

    /// Fold the in-edges of `target` into an accumulator. `in_edges` yields
    /// `(source vertex, edge weight)` pairs; source values are read from
    /// `ctx.values`.
    fn gather(
        &self,
        target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64;

    /// Produce the new value of `target` from the accumulator and its current value.
    fn apply(&self, target: VertexId, accum: f64, current: f64, ctx: &VertexContext<'_>) -> f64;

    /// Whether `new` counts as an update relative to `old`. The default treats any
    /// change beyond `update_tolerance` as an update.
    fn is_update(&self, old: f64, new: f64) -> bool {
        (new - old).abs() > self.update_tolerance()
    }

    /// Tolerance below which a change is not considered an update (and therefore is
    /// neither broadcast nor used to keep the program running).
    fn update_tolerance(&self) -> f64 {
        0.0
    }

    /// Hard cap on supersteps (the program also stops as soon as no vertex updates).
    fn max_supersteps(&self) -> u32 {
        u32::MAX
    }

    /// Whether *every* vertex should run in superstep 0 even if it received no
    /// update (true for PageRank-style programs; SSSP only activates the source's
    /// out-neighbours because only the source changed at initialisation).
    fn run_all_vertices_initially(&self) -> bool {
        true
    }

    /// Whether the program implements the push side ([`Self::scatter`] /
    /// [`Self::combine`]). Defaults to `false`: pull-only programs compile
    /// and behave exactly as before, and the engine never builds push
    /// indexes or offers the push loop for them.
    fn supports_push(&self) -> bool {
        false
    }

    /// Push-side emit: `source` (a frontier vertex whose value changed last
    /// superstep) walks its out-edges and `emit(target, contribution)`s a
    /// candidate accumulator value per out-neighbour. Contributions to the
    /// same target are folded with [`Self::combine`], then handed to
    /// [`Self::apply`] exactly like a gathered accumulator.
    ///
    /// **Contract:** for push/pull bit-identity, `scatter` must emit for
    /// target `t` exactly what `gather(t, ..)` would compute from the edge
    /// `source -> t` alone, and `combine` must be order-insensitive and
    /// exact (e.g. `f64::min` — monotone min-style programs qualify, sums
    /// generally do not). See `docs/ALGORITHMS.md`.
    ///
    /// The default panics: the engine only calls it when
    /// [`Self::supports_push`] is `true` (force-push on a pull-only program
    /// is rejected at plan time with a clear error instead).
    fn scatter(
        &self,
        source: VertexId,
        value: f64,
        out_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        emit: &mut dyn FnMut(VertexId, f64),
    ) {
        let _ = (value, out_edges, emit);
        unreachable!(
            "program {:?} advertises no push side (supports_push() is false) \
             but scatter() was called for source {source}",
            self.name()
        );
    }

    /// Fold two emitted contributions for the same target. Must be
    /// order-insensitive and exact; the default is `f64::min` (the right
    /// fold for every monotone min-style program: BFS, SSSP, WCC).
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }

    /// Which tile loop the next superstep should run, given the replicated
    /// frontier stats. Consulted only under [`DirectionMode::Auto`]; return
    /// [`Direction::Auto`] to delegate to the engine's default Beamer
    /// heuristic. The default pins the paper's behaviour: always pull.
    ///
    /// **Must be stateless** — a pure function of `stats`. One program
    /// instance is shared by every server worker, so any interior mutability
    /// here would be advanced once per *server* per superstep and desync
    /// the cluster.
    fn direction(&self, _stats: &FrontierStats) -> Direction {
        Direction::Pull
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial program: every vertex becomes the count of its in-edges.
    struct CountInEdges;

    impl GabProgram for CountInEdges {
        fn name(&self) -> &'static str {
            "count-in-edges"
        }
        fn initial_value(&self, _v: VertexId, _ctx: &InitContext<'_>) -> f64 {
            0.0
        }
        fn gather(
            &self,
            _target: VertexId,
            in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
            _ctx: &VertexContext<'_>,
        ) -> f64 {
            in_edges.count() as f64
        }
        fn apply(&self, _t: VertexId, accum: f64, _current: f64, _ctx: &VertexContext<'_>) -> f64 {
            accum
        }
        fn max_supersteps(&self) -> u32 {
            1
        }
    }

    #[test]
    fn default_update_semantics() {
        let p = CountInEdges;
        assert!(p.is_update(0.0, 1.0));
        assert!(!p.is_update(1.0, 1.0));
        assert_eq!(p.update_tolerance(), 0.0);
        assert!(p.run_all_vertices_initially());
        assert_eq!(p.max_supersteps(), 1);
    }

    #[test]
    fn default_direction_hooks_keep_programs_pull_only() {
        let p = CountInEdges;
        assert!(!p.supports_push());
        let stats = FrontierStats {
            frontier_size: 1,
            frontier_out_edges: 1,
            num_vertices: 1000,
            total_out_edges: 10_000,
        };
        assert_eq!(p.direction(&stats), Direction::Pull);
        assert_eq!(p.combine(3.0, 2.0), 2.0);
    }

    #[test]
    fn beamer_heuristic_switches_on_frontier_sparsity() {
        let sparse = FrontierStats {
            frontier_size: 3,
            frontier_out_edges: 40,
            num_vertices: 1024,
            total_out_edges: 6144,
        };
        assert_eq!(sparse.beamer(14, 24), Direction::Push);
        let dense = FrontierStats {
            frontier_size: 900,
            frontier_out_edges: 5500,
            num_vertices: 1024,
            total_out_edges: 6144,
        };
        assert_eq!(dense.beamer(14, 24), Direction::Pull);
        // Edge sparsity alone is not enough: a wide, low-degree frontier pulls.
        let wide = FrontierStats {
            frontier_size: 600,
            frontier_out_edges: 100,
            num_vertices: 1024,
            total_out_edges: 6144,
        };
        assert_eq!(wide.beamer(14, 24), Direction::Pull);
    }

    #[test]
    fn direction_mode_parses_and_round_trips() {
        for (text, mode) in [
            ("auto", DirectionMode::Auto),
            ("pull", DirectionMode::ForcePull),
            ("push", DirectionMode::ForcePush),
        ] {
            assert_eq!(text.parse::<DirectionMode>().unwrap(), mode);
            assert_eq!(mode.as_str(), text);
        }
        assert!("sideways".parse::<DirectionMode>().is_err());
        assert_eq!(DirectionMode::default(), DirectionMode::Auto);
        assert_eq!(Direction::Push.as_str(), "push");
        assert_eq!(Direction::Auto.as_str(), "auto");
    }

    #[test]
    fn frontier_density_is_a_fraction() {
        let stats = FrontierStats {
            frontier_size: 256,
            frontier_out_edges: 0,
            num_vertices: 1024,
            total_out_edges: 0,
        };
        assert_eq!(stats.density(), 0.25);
    }

    #[test]
    fn gather_sees_edge_iterator() {
        let p = CountInEdges;
        let values = vec![0.0; 4];
        let out_degrees = vec![0u32; 4];
        let in_degrees = vec![0u32; 4];
        let ctx = VertexContext {
            values: &values,
            out_degrees: &out_degrees,
            in_degrees: &in_degrees,
            num_vertices: 4,
            superstep: 0,
        };
        let mut edges = [(0u32, 1.0f32), (2, 1.0)].into_iter();
        assert_eq!(p.gather(1, &mut edges, &ctx), 2.0);
    }
}
