//! The GAB (Gather–Apply–Broadcast) programming abstraction (paper §III-C.2).
//!
//! A GAB program updates a vertex with two user functions:
//!
//! * `gather` — walk the vertex's in-edges, reading the *source* vertices' current
//!   values from the local replica array, and fold them into an accumulator,
//! * `apply` — combine the accumulator with the vertex's current value to produce the
//!   new value.
//!
//! Broadcasting the new value to the other replicas is the engine's job, which is why
//! (unlike GAS) the user only writes two functions. Values are `f64`; that covers
//! every algorithm in the paper (ranks, distances, component labels) and keeps the
//! wire encoding uniform.

use graphh_graph::ids::VertexId;

/// Context available while computing initial values.
#[derive(Debug, Clone, Copy)]
pub struct InitContext<'a> {
    /// Number of vertices in the graph.
    pub num_vertices: u64,
    /// Out-degree of every vertex (the array PageRank asks the engine to load).
    pub out_degrees: &'a [u32],
    /// In-degree of every vertex.
    pub in_degrees: &'a [u32],
}

/// Context available to `gather` and `apply`.
#[derive(Debug, Clone, Copy)]
pub struct VertexContext<'a> {
    /// Current values of *all* vertices (the local replica array).
    pub values: &'a [f64],
    /// Out-degree of every vertex.
    pub out_degrees: &'a [u32],
    /// In-degree of every vertex.
    pub in_degrees: &'a [u32],
    /// Number of vertices in the graph.
    pub num_vertices: u64,
    /// Current superstep (0-based).
    pub superstep: u32,
}

/// A vertex-centric program in the GAB model.
pub trait GabProgram: Send + Sync {
    /// Human-readable program name (used in logs and experiment output).
    fn name(&self) -> &'static str;

    /// Initial value of vertex `v`.
    fn initial_value(&self, v: VertexId, ctx: &InitContext<'_>) -> f64;

    /// Fold the in-edges of `target` into an accumulator. `in_edges` yields
    /// `(source vertex, edge weight)` pairs; source values are read from
    /// `ctx.values`.
    fn gather(
        &self,
        target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64;

    /// Produce the new value of `target` from the accumulator and its current value.
    fn apply(&self, target: VertexId, accum: f64, current: f64, ctx: &VertexContext<'_>) -> f64;

    /// Whether `new` counts as an update relative to `old`. The default treats any
    /// change beyond `update_tolerance` as an update.
    fn is_update(&self, old: f64, new: f64) -> bool {
        (new - old).abs() > self.update_tolerance()
    }

    /// Tolerance below which a change is not considered an update (and therefore is
    /// neither broadcast nor used to keep the program running).
    fn update_tolerance(&self) -> f64 {
        0.0
    }

    /// Hard cap on supersteps (the program also stops as soon as no vertex updates).
    fn max_supersteps(&self) -> u32 {
        u32::MAX
    }

    /// Whether *every* vertex should run in superstep 0 even if it received no
    /// update (true for PageRank-style programs; SSSP only activates the source's
    /// out-neighbours because only the source changed at initialisation).
    fn run_all_vertices_initially(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial program: every vertex becomes the count of its in-edges.
    struct CountInEdges;

    impl GabProgram for CountInEdges {
        fn name(&self) -> &'static str {
            "count-in-edges"
        }
        fn initial_value(&self, _v: VertexId, _ctx: &InitContext<'_>) -> f64 {
            0.0
        }
        fn gather(
            &self,
            _target: VertexId,
            in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
            _ctx: &VertexContext<'_>,
        ) -> f64 {
            in_edges.count() as f64
        }
        fn apply(&self, _t: VertexId, accum: f64, _current: f64, _ctx: &VertexContext<'_>) -> f64 {
            accum
        }
        fn max_supersteps(&self) -> u32 {
            1
        }
    }

    #[test]
    fn default_update_semantics() {
        let p = CountInEdges;
        assert!(p.is_update(0.0, 1.0));
        assert!(!p.is_update(1.0, 1.0));
        assert_eq!(p.update_tolerance(), 0.0);
        assert!(p.run_all_vertices_initially());
        assert_eq!(p.max_supersteps(), 1);
    }

    #[test]
    fn gather_sees_edge_iterator() {
        let p = CountInEdges;
        let values = vec![0.0; 4];
        let out_degrees = vec![0u32; 4];
        let in_degrees = vec![0u32; 4];
        let ctx = VertexContext {
            values: &values,
            out_degrees: &out_degrees,
            in_degrees: &in_degrees,
            num_vertices: 4,
            superstep: 0,
        };
        let mut edges = [(0u32, 1.0f32), (2, 1.0)].into_iter();
        assert_eq!(p.gather(1, &mut edges, &ctx), 2.0);
    }
}
