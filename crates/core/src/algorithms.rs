//! The vertex-centric programs the paper evaluates (PageRank, SSSP) plus the other
//! standard analytics GraphH supports (WCC, BFS, degree centrality,
//! direction-optimizing BFS, label propagation), all expressed in the GAB model
//! (Algorithms 6 and 7 of the paper).
//!
//! The monotone min-combine programs (SSSP, WCC, BFS) also implement the *push*
//! side of the model ([`GabProgram::scatter`] / [`GabProgram::combine`]): their
//! gather is a minimum over in-neighbour contributions, which is exact and
//! order-insensitive in `f64`, so pull and push supersteps produce bit-identical
//! values (see `docs/ALGORITHMS.md`). Their `direction` hook keeps the default
//! pull-only policy; [`DirectionOptimizingBfs`] opts into the Beamer α/β
//! heuristic and is the kernel that actually switches at runtime.

use crate::gab::{Direction, FrontierStats, GabProgram, InitContext, VertexContext};
use graphh_graph::ids::VertexId;

/// PageRank with damping factor 0.85 (Algorithm 6).
///
/// `gather` sums `value(u) / out_degree(u)` over in-neighbours `u`; `apply` applies
/// the damping. The program runs for a fixed number of supersteps (the paper runs 21
/// and reports the mean of the last 20) or until no rank moves by more than the
/// tolerance.
#[derive(Debug, Clone)]
pub struct PageRank {
    /// Damping factor (0.85 in the paper).
    pub damping: f64,
    /// Number of supersteps to run.
    pub supersteps: u32,
    /// Rank change below which a vertex does not count as updated.
    pub tolerance: f64,
}

impl PageRank {
    /// The paper's configuration: damping 0.85, 21 supersteps.
    pub fn new(supersteps: u32) -> Self {
        Self {
            damping: 0.85,
            supersteps,
            tolerance: 0.0,
        }
    }

    /// PageRank that stops when every rank changes by less than `tolerance`.
    pub fn with_tolerance(supersteps: u32, tolerance: f64) -> Self {
        Self {
            damping: 0.85,
            supersteps,
            tolerance,
        }
    }
}

impl GabProgram for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn initial_value(&self, _v: VertexId, ctx: &InitContext<'_>) -> f64 {
        1.0 / ctx.num_vertices as f64
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64 {
        let mut accum = 0.0;
        for (src, _w) in in_edges {
            let d = ctx.out_degrees[src as usize];
            if d > 0 {
                accum += ctx.values[src as usize] / f64::from(d);
            }
        }
        accum
    }

    fn apply(&self, _target: VertexId, accum: f64, _current: f64, ctx: &VertexContext<'_>) -> f64 {
        (1.0 - self.damping) / ctx.num_vertices as f64 + self.damping * accum
    }

    fn update_tolerance(&self) -> f64 {
        self.tolerance
    }

    fn max_supersteps(&self) -> u32 {
        self.supersteps
    }
}

/// Single-source shortest paths (Algorithm 7). Vertex values are tentative distances;
/// unreachable vertices stay at `f64::INFINITY`.
#[derive(Debug, Clone)]
pub struct Sssp {
    /// The source vertex.
    pub source: VertexId,
}

impl Sssp {
    /// SSSP from `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

impl GabProgram for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn initial_value(&self, v: VertexId, _ctx: &InitContext<'_>) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for (src, w) in in_edges {
            let candidate = ctx.values[src as usize] + f64::from(w);
            if candidate < best {
                best = candidate;
            }
        }
        best
    }

    fn apply(&self, _target: VertexId, accum: f64, current: f64, _ctx: &VertexContext<'_>) -> f64 {
        accum.min(current)
    }

    fn is_update(&self, old: f64, new: f64) -> bool {
        new < old
    }

    fn run_all_vertices_initially(&self) -> bool {
        // Only the source moved at initialisation; everything else is reached through
        // the update propagation.
        true
    }

    fn supports_push(&self) -> bool {
        true
    }

    fn scatter(
        &self,
        _source: VertexId,
        value: f64,
        out_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        emit: &mut dyn FnMut(VertexId, f64),
    ) {
        for (target, w) in out_edges {
            emit(target, value + f64::from(w));
        }
    }
}

/// Weakly connected components via label propagation: every vertex starts with its
/// own id and repeatedly adopts the minimum label among itself and its in-neighbours.
///
/// For a weakly-connected-components result on a directed graph the input should be
/// symmetrised (both edge directions present), which is how the experiment harness
/// prepares WCC inputs.
#[derive(Debug, Clone, Default)]
pub struct Wcc;

impl Wcc {
    /// A WCC program.
    pub fn new() -> Self {
        Self
    }
}

impl GabProgram for Wcc {
    fn name(&self) -> &'static str {
        "wcc"
    }

    fn initial_value(&self, v: VertexId, _ctx: &InitContext<'_>) -> f64 {
        f64::from(v)
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for (src, _) in in_edges {
            best = best.min(ctx.values[src as usize]);
        }
        best
    }

    fn apply(&self, _target: VertexId, accum: f64, current: f64, _ctx: &VertexContext<'_>) -> f64 {
        accum.min(current)
    }

    fn is_update(&self, old: f64, new: f64) -> bool {
        new < old
    }

    fn supports_push(&self) -> bool {
        true
    }

    fn scatter(
        &self,
        _source: VertexId,
        value: f64,
        out_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        emit: &mut dyn FnMut(VertexId, f64),
    ) {
        for (target, _w) in out_edges {
            emit(target, value);
        }
    }
}

/// Breadth-first search levels from a source vertex; unreachable vertices stay at
/// `f64::INFINITY`.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// The source vertex.
    pub source: VertexId,
}

impl Bfs {
    /// BFS from `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

impl GabProgram for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn initial_value(&self, v: VertexId, _ctx: &InitContext<'_>) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for (src, _) in in_edges {
            best = best.min(ctx.values[src as usize] + 1.0);
        }
        best
    }

    fn apply(&self, _target: VertexId, accum: f64, current: f64, _ctx: &VertexContext<'_>) -> f64 {
        accum.min(current)
    }

    fn is_update(&self, old: f64, new: f64) -> bool {
        new < old
    }

    fn supports_push(&self) -> bool {
        true
    }

    fn scatter(
        &self,
        _source: VertexId,
        value: f64,
        out_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        emit: &mut dyn FnMut(VertexId, f64),
    ) {
        for (target, _w) in out_edges {
            emit(target, value + 1.0);
        }
    }
}

/// Direction-optimizing BFS (Beamer et al.): the same levels as [`Bfs`], but the
/// engine picks push or pull per superstep from the replicated frontier stats.
///
/// The α/β heuristic is the classic one — push while the frontier is sparse
/// (`frontier_out_edges * alpha < total_out_edges` **and**
/// `frontier_size * beta < num_vertices`), pull once it is dense. The decision
/// is a pure function of [`FrontierStats`], which every executor replicates,
/// so sequential, threaded and multi-process runs switch direction at the same
/// supersteps — and because BFS's combine is an exact `f64` minimum, the
/// resulting values (and wire bytes) are bit-identical either way.
#[derive(Debug, Clone)]
pub struct DirectionOptimizingBfs {
    /// The source vertex.
    pub source: VertexId,
    /// Push/pull edge-count threshold (Beamer's α; 14 in the original paper).
    pub alpha: u64,
    /// Push/pull frontier-size threshold (Beamer's β; 24 in the original paper).
    pub beta: u64,
}

impl DirectionOptimizingBfs {
    /// Direction-optimizing BFS from `source` with the classic α=14, β=24.
    pub fn new(source: VertexId) -> Self {
        Self {
            source,
            alpha: crate::exec::DIRECTION_ALPHA,
            beta: crate::exec::DIRECTION_BETA,
        }
    }

    /// Override the switching thresholds.
    pub fn with_thresholds(source: VertexId, alpha: u64, beta: u64) -> Self {
        Self {
            source,
            alpha,
            beta,
        }
    }
}

impl GabProgram for DirectionOptimizingBfs {
    fn name(&self) -> &'static str {
        "bfs-dopt"
    }

    fn initial_value(&self, v: VertexId, _ctx: &InitContext<'_>) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for (src, _) in in_edges {
            best = best.min(ctx.values[src as usize] + 1.0);
        }
        best
    }

    fn apply(&self, _target: VertexId, accum: f64, current: f64, _ctx: &VertexContext<'_>) -> f64 {
        accum.min(current)
    }

    fn is_update(&self, old: f64, new: f64) -> bool {
        new < old
    }

    fn supports_push(&self) -> bool {
        true
    }

    fn scatter(
        &self,
        _source: VertexId,
        value: f64,
        out_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        emit: &mut dyn FnMut(VertexId, f64),
    ) {
        for (target, _w) in out_edges {
            emit(target, value + 1.0);
        }
    }

    fn direction(&self, stats: &FrontierStats) -> Direction {
        stats.beamer(self.alpha, self.beta)
    }
}

/// Synchronous label propagation with deterministic min-tie-break: every vertex
/// starts with its own id and each round adopts the most frequent label among
/// its in-neighbours, ties broken by the smallest label.
///
/// The mode computation needs *all* of a vertex's in-neighbour labels at once
/// (a histogram is not a binary combine), so the program is pull-only — the
/// default [`GabProgram::direction`] hook already pins it there, and a
/// force-push run is rejected at plan time. Synchronous LPA can oscillate on
/// bipartite structures, so the round count is capped (default 20).
#[derive(Debug, Clone)]
pub struct LabelPropagation {
    /// Hard cap on propagation rounds.
    pub max_rounds: u32,
}

impl Default for LabelPropagation {
    fn default() -> Self {
        Self { max_rounds: 20 }
    }
}

impl LabelPropagation {
    /// Label propagation with the default 20-round cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Label propagation capped at `max_rounds` rounds.
    pub fn with_rounds(max_rounds: u32) -> Self {
        Self { max_rounds }
    }
}

impl GabProgram for LabelPropagation {
    fn name(&self) -> &'static str {
        "labelprop"
    }

    fn initial_value(&self, v: VertexId, _ctx: &InitContext<'_>) -> f64 {
        f64::from(v)
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64 {
        // Tile target ranges partition the vertex space, so this iterator is
        // the vertex's complete in-neighbour set: the histogram is exact.
        let mut labels: Vec<f64> = in_edges.map(|(src, _)| ctx.values[src as usize]).collect();
        if labels.is_empty() {
            return f64::INFINITY; // sentinel: apply keeps the current label
        }
        labels.sort_unstable_by(f64::total_cmp);
        let mut best = labels[0];
        let mut best_count = 0usize;
        let mut i = 0;
        while i < labels.len() {
            let label = labels[i];
            let mut j = i + 1;
            while j < labels.len() && labels[j] == label {
                j += 1;
            }
            // Strict `>`: on a tie the earlier (smaller, since sorted) label wins.
            if j - i > best_count {
                best = label;
                best_count = j - i;
            }
            i = j;
        }
        best
    }

    fn apply(&self, _target: VertexId, accum: f64, current: f64, _ctx: &VertexContext<'_>) -> f64 {
        if accum.is_infinite() {
            current
        } else {
            accum
        }
    }

    fn max_supersteps(&self) -> u32 {
        self.max_rounds
    }
}

/// In-degree centrality: a single-superstep program whose result is each vertex's
/// (weighted) in-degree. Used by tests and as the simplest possible GAB example.
#[derive(Debug, Clone, Default)]
pub struct DegreeCentrality;

impl DegreeCentrality {
    /// A degree-centrality program.
    pub fn new() -> Self {
        Self
    }
}

impl GabProgram for DegreeCentrality {
    fn name(&self) -> &'static str {
        "degree-centrality"
    }

    fn initial_value(&self, _v: VertexId, _ctx: &InitContext<'_>) -> f64 {
        0.0
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        _ctx: &VertexContext<'_>,
    ) -> f64 {
        in_edges.map(|(_, w)| f64::from(w)).sum()
    }

    fn apply(&self, _target: VertexId, accum: f64, _current: f64, _ctx: &VertexContext<'_>) -> f64 {
        accum
    }

    fn max_supersteps(&self) -> u32 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(values: &'a [f64], out: &'a [u32], ind: &'a [u32]) -> VertexContext<'a> {
        VertexContext {
            values,
            out_degrees: out,
            in_degrees: ind,
            num_vertices: values.len() as u64,
            superstep: 0,
        }
    }

    #[test]
    fn pagerank_gather_divides_by_out_degree() {
        let pr = PageRank::new(10);
        let values = vec![0.25, 0.25, 0.25, 0.25];
        let out = vec![2, 1, 5, 0];
        let ind = vec![0; 4];
        let c = ctx(&values, &out, &ind);
        let mut edges = [(0u32, 1.0f32), (1, 1.0)].into_iter();
        let accum = pr.gather(3, &mut edges, &c);
        assert!((accum - (0.25 / 2.0 + 0.25 / 1.0)).abs() < 1e-12);
        let new = pr.apply(3, accum, 0.25, &c);
        assert!((new - (0.15 / 4.0 + 0.85 * accum)).abs() < 1e-12);
    }

    #[test]
    fn pagerank_ignores_dangling_sources() {
        let pr = PageRank::new(1);
        let values = vec![1.0, 1.0];
        let out = vec![0, 1];
        let ind = vec![1, 0];
        let c = ctx(&values, &out, &ind);
        // Source 0 has out-degree 0 (inconsistent input, but must not divide by zero).
        let mut edges = [(0u32, 1.0f32)].into_iter();
        assert_eq!(pr.gather(1, &mut edges, &c), 0.0);
    }

    #[test]
    fn sssp_relaxes_minimum_distance() {
        let sssp = Sssp::new(0);
        let values = vec![0.0, 5.0, f64::INFINITY];
        let out = vec![0; 3];
        let ind = vec![0; 3];
        let c = ctx(&values, &out, &ind);
        let mut edges = [(0u32, 2.0f32), (1, 1.0)].into_iter();
        let accum = sssp.gather(2, &mut edges, &c);
        assert_eq!(accum, 2.0);
        assert_eq!(sssp.apply(2, accum, f64::INFINITY, &c), 2.0);
        assert!(sssp.is_update(f64::INFINITY, 2.0));
        assert!(!sssp.is_update(2.0, 2.0));
        assert_eq!(
            sssp.initial_value(
                0,
                &InitContext {
                    num_vertices: 3,
                    out_degrees: &out,
                    in_degrees: &ind
                }
            ),
            0.0
        );
        assert!(sssp
            .initial_value(
                1,
                &InitContext {
                    num_vertices: 3,
                    out_degrees: &out,
                    in_degrees: &ind
                }
            )
            .is_infinite());
    }

    #[test]
    fn wcc_adopts_minimum_label() {
        let wcc = Wcc::new();
        let values = vec![0.0, 1.0, 2.0];
        let out = vec![0; 3];
        let ind = vec![0; 3];
        let c = ctx(&values, &out, &ind);
        let mut edges = [(0u32, 1.0f32), (1, 1.0)].into_iter();
        assert_eq!(wcc.gather(2, &mut edges, &c), 0.0);
        assert_eq!(wcc.apply(2, 0.0, 2.0, &c), 0.0);
    }

    #[test]
    fn bfs_counts_hops_not_weights() {
        let bfs = Bfs::new(0);
        let values = vec![0.0, f64::INFINITY];
        let out = vec![0; 2];
        let ind = vec![0; 2];
        let c = ctx(&values, &out, &ind);
        let mut edges = [(0u32, 100.0f32)].into_iter();
        assert_eq!(bfs.gather(1, &mut edges, &c), 1.0);
    }

    #[test]
    fn min_programs_scatter_what_gather_would_see() {
        // For every min-combine kernel, scatter(source→target) must emit
        // exactly the contribution gather(target) derives from that source —
        // this is the per-edge identity the push/pull bit-equality rests on.
        let values = vec![3.0, f64::INFINITY];
        let out = vec![1, 0];
        let ind = vec![0, 1];
        let c = ctx(&values, &out, &ind);

        let cases: Vec<(Box<dyn GabProgram>, f32)> = vec![
            (Box::new(Sssp::new(0)), 2.5),
            (Box::new(Wcc::new()), 1.0),
            (Box::new(Bfs::new(0)), 7.0),
            (Box::new(DirectionOptimizingBfs::new(0)), 7.0),
        ];
        for (program, weight) in cases {
            assert!(program.supports_push(), "{}", program.name());
            let mut pushed = Vec::new();
            let mut edges = [(1u32, weight)].into_iter();
            program.scatter(0, values[0], &mut edges, &mut |t, contribution| {
                pushed.push((t, contribution))
            });
            let mut in_edges = [(0u32, weight)].into_iter();
            let gathered = program.gather(1, &mut in_edges, &c);
            assert_eq!(pushed, vec![(1u32, gathered)], "{}", program.name());
        }
    }

    #[test]
    fn dopt_bfs_direction_follows_beamer_thresholds() {
        let bfs = DirectionOptimizingBfs::new(0);
        let sparse = FrontierStats {
            frontier_size: 1,
            frontier_out_edges: 2,
            num_vertices: 1_000,
            total_out_edges: 10_000,
        };
        let dense = FrontierStats {
            frontier_size: 900,
            frontier_out_edges: 9_000,
            num_vertices: 1_000,
            total_out_edges: 10_000,
        };
        assert!(matches!(bfs.direction(&sparse), Direction::Push));
        assert!(matches!(bfs.direction(&dense), Direction::Pull));
        // Plain BFS keeps the pull-only default even on a sparse frontier.
        assert!(matches!(Bfs::new(0).direction(&sparse), Direction::Pull));
    }

    #[test]
    fn label_propagation_takes_the_mode_with_min_tie_break() {
        let lp = LabelPropagation::new();
        assert_eq!(lp.max_supersteps(), 20);
        let values = vec![5.0, 2.0, 5.0, 2.0, 9.0];
        let out = vec![0; 5];
        let ind = vec![0; 5];
        let c = ctx(&values, &out, &ind);
        // Labels {5, 2, 5}: 5 wins on count.
        let mut edges = [(0u32, 1.0f32), (1, 1.0), (2, 1.0)].into_iter();
        assert_eq!(lp.gather(4, &mut edges, &c), 5.0);
        // Labels {5, 2, 5, 2}: tied 2-2, the smaller label wins.
        let mut edges = [(0u32, 1.0f32), (1, 1.0), (2, 1.0), (3, 1.0)].into_iter();
        assert_eq!(lp.gather(4, &mut edges, &c), 2.0);
        // No in-neighbours: the sentinel keeps the current label.
        let mut edges = std::iter::empty();
        let sentinel = lp.gather(4, &mut edges, &c);
        assert_eq!(lp.apply(4, sentinel, 9.0, &c), 9.0);
        assert!(!lp.supports_push());
    }

    #[test]
    fn degree_centrality_sums_weights_in_one_superstep() {
        let dc = DegreeCentrality::new();
        assert_eq!(dc.max_supersteps(), 1);
        let values = vec![0.0; 3];
        let out = vec![0; 3];
        let ind = vec![0; 3];
        let c = ctx(&values, &out, &ind);
        let mut edges = [(0u32, 1.5f32), (1, 2.5)].into_iter();
        assert_eq!(dc.gather(2, &mut edges, &c), 4.0);
    }
}
