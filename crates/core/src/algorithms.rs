//! The vertex-centric programs the paper evaluates (PageRank, SSSP) plus the other
//! standard analytics GraphH supports (WCC, BFS, degree centrality), all expressed
//! in the GAB model (Algorithms 6 and 7 of the paper).

use crate::gab::{GabProgram, InitContext, VertexContext};
use graphh_graph::ids::VertexId;

/// PageRank with damping factor 0.85 (Algorithm 6).
///
/// `gather` sums `value(u) / out_degree(u)` over in-neighbours `u`; `apply` applies
/// the damping. The program runs for a fixed number of supersteps (the paper runs 21
/// and reports the mean of the last 20) or until no rank moves by more than the
/// tolerance.
#[derive(Debug, Clone)]
pub struct PageRank {
    /// Damping factor (0.85 in the paper).
    pub damping: f64,
    /// Number of supersteps to run.
    pub supersteps: u32,
    /// Rank change below which a vertex does not count as updated.
    pub tolerance: f64,
}

impl PageRank {
    /// The paper's configuration: damping 0.85, 21 supersteps.
    pub fn new(supersteps: u32) -> Self {
        Self {
            damping: 0.85,
            supersteps,
            tolerance: 0.0,
        }
    }

    /// PageRank that stops when every rank changes by less than `tolerance`.
    pub fn with_tolerance(supersteps: u32, tolerance: f64) -> Self {
        Self {
            damping: 0.85,
            supersteps,
            tolerance,
        }
    }
}

impl GabProgram for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn initial_value(&self, _v: VertexId, ctx: &InitContext<'_>) -> f64 {
        1.0 / ctx.num_vertices as f64
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64 {
        let mut accum = 0.0;
        for (src, _w) in in_edges {
            let d = ctx.out_degrees[src as usize];
            if d > 0 {
                accum += ctx.values[src as usize] / f64::from(d);
            }
        }
        accum
    }

    fn apply(&self, _target: VertexId, accum: f64, _current: f64, ctx: &VertexContext<'_>) -> f64 {
        (1.0 - self.damping) / ctx.num_vertices as f64 + self.damping * accum
    }

    fn update_tolerance(&self) -> f64 {
        self.tolerance
    }

    fn max_supersteps(&self) -> u32 {
        self.supersteps
    }
}

/// Single-source shortest paths (Algorithm 7). Vertex values are tentative distances;
/// unreachable vertices stay at `f64::INFINITY`.
#[derive(Debug, Clone)]
pub struct Sssp {
    /// The source vertex.
    pub source: VertexId,
}

impl Sssp {
    /// SSSP from `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

impl GabProgram for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn initial_value(&self, v: VertexId, _ctx: &InitContext<'_>) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for (src, w) in in_edges {
            let candidate = ctx.values[src as usize] + f64::from(w);
            if candidate < best {
                best = candidate;
            }
        }
        best
    }

    fn apply(&self, _target: VertexId, accum: f64, current: f64, _ctx: &VertexContext<'_>) -> f64 {
        accum.min(current)
    }

    fn is_update(&self, old: f64, new: f64) -> bool {
        new < old
    }

    fn run_all_vertices_initially(&self) -> bool {
        // Only the source moved at initialisation; everything else is reached through
        // the update propagation.
        true
    }
}

/// Weakly connected components via label propagation: every vertex starts with its
/// own id and repeatedly adopts the minimum label among itself and its in-neighbours.
///
/// For a weakly-connected-components result on a directed graph the input should be
/// symmetrised (both edge directions present), which is how the experiment harness
/// prepares WCC inputs.
#[derive(Debug, Clone, Default)]
pub struct Wcc;

impl Wcc {
    /// A WCC program.
    pub fn new() -> Self {
        Self
    }
}

impl GabProgram for Wcc {
    fn name(&self) -> &'static str {
        "wcc"
    }

    fn initial_value(&self, v: VertexId, _ctx: &InitContext<'_>) -> f64 {
        f64::from(v)
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for (src, _) in in_edges {
            best = best.min(ctx.values[src as usize]);
        }
        best
    }

    fn apply(&self, _target: VertexId, accum: f64, current: f64, _ctx: &VertexContext<'_>) -> f64 {
        accum.min(current)
    }

    fn is_update(&self, old: f64, new: f64) -> bool {
        new < old
    }
}

/// Breadth-first search levels from a source vertex; unreachable vertices stay at
/// `f64::INFINITY`.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// The source vertex.
    pub source: VertexId,
}

impl Bfs {
    /// BFS from `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

impl GabProgram for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn initial_value(&self, v: VertexId, _ctx: &InitContext<'_>) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        ctx: &VertexContext<'_>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for (src, _) in in_edges {
            best = best.min(ctx.values[src as usize] + 1.0);
        }
        best
    }

    fn apply(&self, _target: VertexId, accum: f64, current: f64, _ctx: &VertexContext<'_>) -> f64 {
        accum.min(current)
    }

    fn is_update(&self, old: f64, new: f64) -> bool {
        new < old
    }
}

/// In-degree centrality: a single-superstep program whose result is each vertex's
/// (weighted) in-degree. Used by tests and as the simplest possible GAB example.
#[derive(Debug, Clone, Default)]
pub struct DegreeCentrality;

impl DegreeCentrality {
    /// A degree-centrality program.
    pub fn new() -> Self {
        Self
    }
}

impl GabProgram for DegreeCentrality {
    fn name(&self) -> &'static str {
        "degree-centrality"
    }

    fn initial_value(&self, _v: VertexId, _ctx: &InitContext<'_>) -> f64 {
        0.0
    }

    fn gather(
        &self,
        _target: VertexId,
        in_edges: &mut dyn Iterator<Item = (VertexId, f32)>,
        _ctx: &VertexContext<'_>,
    ) -> f64 {
        in_edges.map(|(_, w)| f64::from(w)).sum()
    }

    fn apply(&self, _target: VertexId, accum: f64, _current: f64, _ctx: &VertexContext<'_>) -> f64 {
        accum
    }

    fn max_supersteps(&self) -> u32 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(values: &'a [f64], out: &'a [u32], ind: &'a [u32]) -> VertexContext<'a> {
        VertexContext {
            values,
            out_degrees: out,
            in_degrees: ind,
            num_vertices: values.len() as u64,
            superstep: 0,
        }
    }

    #[test]
    fn pagerank_gather_divides_by_out_degree() {
        let pr = PageRank::new(10);
        let values = vec![0.25, 0.25, 0.25, 0.25];
        let out = vec![2, 1, 5, 0];
        let ind = vec![0; 4];
        let c = ctx(&values, &out, &ind);
        let mut edges = [(0u32, 1.0f32), (1, 1.0)].into_iter();
        let accum = pr.gather(3, &mut edges, &c);
        assert!((accum - (0.25 / 2.0 + 0.25 / 1.0)).abs() < 1e-12);
        let new = pr.apply(3, accum, 0.25, &c);
        assert!((new - (0.15 / 4.0 + 0.85 * accum)).abs() < 1e-12);
    }

    #[test]
    fn pagerank_ignores_dangling_sources() {
        let pr = PageRank::new(1);
        let values = vec![1.0, 1.0];
        let out = vec![0, 1];
        let ind = vec![1, 0];
        let c = ctx(&values, &out, &ind);
        // Source 0 has out-degree 0 (inconsistent input, but must not divide by zero).
        let mut edges = [(0u32, 1.0f32)].into_iter();
        assert_eq!(pr.gather(1, &mut edges, &c), 0.0);
    }

    #[test]
    fn sssp_relaxes_minimum_distance() {
        let sssp = Sssp::new(0);
        let values = vec![0.0, 5.0, f64::INFINITY];
        let out = vec![0; 3];
        let ind = vec![0; 3];
        let c = ctx(&values, &out, &ind);
        let mut edges = [(0u32, 2.0f32), (1, 1.0)].into_iter();
        let accum = sssp.gather(2, &mut edges, &c);
        assert_eq!(accum, 2.0);
        assert_eq!(sssp.apply(2, accum, f64::INFINITY, &c), 2.0);
        assert!(sssp.is_update(f64::INFINITY, 2.0));
        assert!(!sssp.is_update(2.0, 2.0));
        assert_eq!(
            sssp.initial_value(
                0,
                &InitContext {
                    num_vertices: 3,
                    out_degrees: &out,
                    in_degrees: &ind
                }
            ),
            0.0
        );
        assert!(sssp
            .initial_value(
                1,
                &InitContext {
                    num_vertices: 3,
                    out_degrees: &out,
                    in_degrees: &ind
                }
            )
            .is_infinite());
    }

    #[test]
    fn wcc_adopts_minimum_label() {
        let wcc = Wcc::new();
        let values = vec![0.0, 1.0, 2.0];
        let out = vec![0; 3];
        let ind = vec![0; 3];
        let c = ctx(&values, &out, &ind);
        let mut edges = [(0u32, 1.0f32), (1, 1.0)].into_iter();
        assert_eq!(wcc.gather(2, &mut edges, &c), 0.0);
        assert_eq!(wcc.apply(2, 0.0, 2.0, &c), 0.0);
    }

    #[test]
    fn bfs_counts_hops_not_weights() {
        let bfs = Bfs::new(0);
        let values = vec![0.0, f64::INFINITY];
        let out = vec![0; 2];
        let ind = vec![0; 2];
        let c = ctx(&values, &out, &ind);
        let mut edges = [(0u32, 100.0f32)].into_iter();
        assert_eq!(bfs.gather(1, &mut edges, &c), 1.0);
    }

    #[test]
    fn degree_centrality_sums_weights_in_one_superstep() {
        let dc = DegreeCentrality::new();
        assert_eq!(dc.max_supersteps(), 1);
        let values = vec![0.0; 3];
        let out = vec![0; 3];
        let ind = vec![0; 3];
        let c = ctx(&values, &out, &ind);
        let mut edges = [(0u32, 1.5f32), (1, 2.5)].into_iter();
        assert_eq!(dc.gather(2, &mut edges, &c), 4.0);
    }
}
