//! Execution machinery shared by every [`Executor`].
//!
//! The engine's per-superstep work factors into pieces that are identical no
//! matter how the simulated servers are scheduled:
//!
//! * [`ExecutionPlan`] — everything derived from the config + partitioned graph
//!   before the first superstep (initial values, tile assignment, cost model),
//! * [`ServerState`] — one server's long-lived state (tiles on "disk", vertex
//!   replica, edge cache, Bloom filters, memory accounting),
//! * [`ServerState::run_tile_phase`] — the compute phase of one superstep on
//!   one server: Bloom-skip, fetch, gather/apply, producing the tile-granular
//!   [`BroadcastMessage`]s to publish,
//! * [`merge_updates`] / [`ServerState::apply_updates`] — the deterministic
//!   barrier: updates are sorted by vertex id before application, so every
//!   executor applies them in the same order and produces bit-identical
//!   replicas.
//!
//! An [`Executor`] strings these together: [`sequential::SequentialExecutor`]
//! on one thread (the reference), `graphh-runtime`'s `ThreadedExecutor` on one
//! OS thread per server with a real channel broadcast plane.

pub mod sequential;

use crate::bloom::BloomFilter;
use crate::engine::{GraphHConfig, RunResult};
use crate::gab::{GabProgram, InitContext, VertexContext};
use crate::{EngineError, Result};
use graphh_cache::{CacheStats, EdgeCache, EdgeCacheConfig};
use graphh_cluster::{BroadcastMessage, CostModel, MemoryTracker, MessageCodec, ServerMetrics};
use graphh_compress::Codec;
use graphh_graph::ids::{ServerId, TileId, VertexId};
use graphh_obs::{global_counters, Tracer};
use graphh_partition::{PartitionedGraph, Tile, TileAssignment};
use graphh_storage::{IoMeter, IoSnapshot, MemoryBackend, MeteredBackend, StorageBackend};
use std::collections::HashMap;
use std::sync::Arc;

/// Frontier density (fraction of all vertices) at or above which the per-tile
/// Bloom probe is skipped.
///
/// Probing costs O(frontier) per tile. When the frontier is dense — PageRank
/// updates essentially every vertex every superstep — no tile can realistically
/// be skipped, so the probe is pure O(tiles × frontier) overhead; below the
/// threshold (frontier algorithms like SSSP/BFS) probing pays for itself many
/// times over and `tiles_skipped` semantics are unchanged.
pub const BLOOM_DENSE_FRONTIER_FRACTION: f64 = 0.25;

/// An execution strategy for the GraphH engine.
///
/// Implementations must be observationally equivalent: given the same config,
/// graph and program, `execute` must return bit-identical `values` (the
/// differential tests in `graphh-runtime` and `tests/determinism.rs` enforce
/// this). Only wall-clock behaviour may differ.
pub trait Executor: Send + Sync {
    /// Short name used in reports ("sequential", "threaded", ...).
    fn name(&self) -> &'static str;

    /// Run `program` over `partitioned` under `config`.
    fn execute(
        &self,
        config: &GraphHConfig,
        partitioned: &PartitionedGraph,
        program: &dyn GabProgram,
    ) -> Result<RunResult>;
}

/// Immutable state shared by all servers of one run.
#[derive(Debug)]
pub struct ExecutionPlan {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Out-degree of every vertex.
    pub out_degrees: Arc<Vec<u32>>,
    /// In-degree of every vertex.
    pub in_degrees: Arc<Vec<u32>>,
    /// Initial value of every vertex.
    pub initial_values: Arc<Vec<f64>>,
    /// Tile → server assignment.
    pub assignment: TileAssignment,
    /// Superstep cap (config and program limits combined).
    pub max_supersteps: u32,
    /// Wire codec for broadcast messages.
    pub message_codec: MessageCodec,
    /// Metered-work → simulated-seconds conversion.
    pub cost_model: CostModel,
    /// Compute threads per server for the tile phase (the paper's `T`),
    /// resolved from the config (explicit knob, else the machine's worker
    /// count).
    pub threads_per_server: u32,
}

impl ExecutionPlan {
    /// Validate the input and precompute everything supersteps share.
    pub fn prepare(
        config: &GraphHConfig,
        partitioned: &PartitionedGraph,
        program: &dyn GabProgram,
    ) -> Result<Self> {
        config.validate()?;
        let num_vertices = partitioned.num_vertices();
        if num_vertices == 0 {
            return Err(EngineError::BadInput("graph has no vertices".into()));
        }
        if num_vertices > u64::from(u32::MAX) {
            return Err(EngineError::BadInput(
                "stand-in graphs must have fewer than 2^32 vertices".into(),
            ));
        }
        let out_degrees: Arc<Vec<u32>> = Arc::new(partitioned.out_degrees.clone());
        let in_degrees: Arc<Vec<u32>> = Arc::new(partitioned.in_degrees.clone());
        let init_ctx = InitContext {
            num_vertices,
            out_degrees: &out_degrees,
            in_degrees: &in_degrees,
        };
        let initial_values: Arc<Vec<f64>> = Arc::new(
            (0..num_vertices as u32)
                .map(|v| program.initial_value(v, &init_ctx))
                .collect(),
        );
        let assignment =
            TileAssignment::round_robin(partitioned.num_tiles(), config.cluster.num_servers);
        let max_supersteps = config
            .max_supersteps
            .unwrap_or(u32::MAX)
            .min(program.max_supersteps());
        Ok(Self {
            num_vertices,
            out_degrees,
            in_degrees,
            initial_values,
            assignment,
            max_supersteps,
            message_codec: MessageCodec::new(config.communication, config.message_compressor),
            cost_model: CostModel::new(config.cluster),
            // `validate` rejected an explicit 0; the fallback machine spec
            // could still be hand-built with 0 workers, so floor it.
            threads_per_server: config
                .threads_per_server
                .unwrap_or(config.cluster.machine.workers)
                .max(1),
        })
    }

    /// Vertex ids active before superstep 0 (everything changed at init).
    pub fn initial_frontier(&self) -> Vec<VertexId> {
        (0..self.num_vertices as u32).collect()
    }
}

/// One simulated server's long-lived state.
pub struct ServerState {
    /// Server id.
    pub id: ServerId,
    /// Tiles assigned to this server, in processing order.
    pub tiles: Vec<TileId>,
    /// Serialized tiles as stored on the server's local disk — a real
    /// [`StorageBackend`] behind an [`IoMeter`], so every byte the engine
    /// actually moves (staging writes, cache-miss reads, admission re-reads)
    /// is metered; see [`ServerState::io_snapshot`].
    disk: MeteredBackend<MemoryBackend>,
    /// Storage key of each assigned tile, precomputed so the cache-miss path
    /// does no string formatting.
    tile_keys: HashMap<TileId, String>,
    /// Local replica of every vertex value (All-in-All policy).
    pub values: Vec<f64>,
    /// Edge cache over idle memory.
    cache: EdgeCache,
    /// Per-tile Bloom filters over source vertices.
    blooms: HashMap<TileId, BloomFilter>,
    /// Memory accounting.
    memory: MemoryTracker,
    /// This server's persistent compute-thread pool (the paper's `T` worker
    /// threads): created once here, reused by every tile phase of every
    /// superstep — no thread is spawned inside the superstep loop.
    pool: graphh_pool::WorkerPool,
}

/// Output of one server's compute phase for one superstep.
pub struct TilePhaseOutput {
    /// Metered work, cache stats and peak memory folded in.
    pub metrics: ServerMetrics,
    /// One message per processed tile that produced updates, in tile order.
    pub messages: Vec<BroadcastMessage>,
}

/// What one tile-phase worker produces for one tile. Outcomes are reduced in
/// tile order, which is what keeps the parallel phase bit-identical to the
/// sequential reference.
struct TileOutcome {
    /// This tile's share of the superstep metrics.
    metrics: ServerMetrics,
    /// The broadcast message, if the tile produced updates.
    message: Option<BroadcastMessage>,
    /// The decoded tile, when it missed the cache and should be admitted by
    /// the post-join pass.
    admit: Option<Arc<Tile>>,
    /// Decoded in-memory size, for transient-memory accounting (0 if skipped).
    tile_memory_bytes: u64,
}

impl ServerState {
    /// Build server `sid`'s state: stage its tiles on its local disk, build the
    /// Bloom filters, size the edge cache from the idle memory, register the
    /// permanent arrays with the memory tracker.
    pub fn build(
        config: &GraphHConfig,
        plan: &ExecutionPlan,
        partitioned: &PartitionedGraph,
        sid: ServerId,
    ) -> Self {
        let num_vertices = plan.num_vertices;
        let machine = config.cluster.machine;
        let tiles = plan.assignment.tiles_of(sid);
        let disk = MeteredBackend::new(MemoryBackend::new(), IoMeter::shared());
        let mut tile_keys = HashMap::new();
        let mut blooms = HashMap::new();
        let mut total_tile_bytes = 0u64;
        for &tid in &tiles {
            let tile = &partitioned.tiles[tid as usize];
            let blob = tile.to_bytes();
            total_tile_bytes += blob.len() as u64;
            blooms.insert(
                tid,
                BloomFilter::from_ids(tile.sources().iter().copied(), tile.sources().len().max(8)),
            );
            let key = format!("tiles/{tid}");
            disk.put(&key, &blob)
                .expect("staging a tile on the in-memory local disk cannot fail");
            tile_keys.insert(tid, key);
        }
        // Idle memory = machine memory minus the permanent vertex arrays.
        let permanent = 8 * num_vertices * 2 + 4 * num_vertices * 2;
        let idle = machine.memory_bytes.saturating_sub(permanent);
        let capacity = config.cache_capacity.unwrap_or(idle);
        let cache = EdgeCache::new(
            EdgeCacheConfig {
                capacity_bytes: capacity,
                mode: config.cache_mode,
            },
            total_tile_bytes,
        );
        let mut memory = MemoryTracker::new(machine.memory_bytes);
        // Vertex-state + message memory is permanent; register it once.
        memory.set_component("vertex-values", 8 * num_vertices);
        memory.set_component("message-buffer", 8 * num_vertices);
        memory.set_component("degree-arrays", 4 * num_vertices * 2);
        let bloom_bytes: u64 = blooms.values().map(BloomFilter::memory_bytes).sum();
        memory.set_component("bloom-filters", bloom_bytes);
        ServerState {
            id: sid,
            tiles,
            disk,
            tile_keys,
            values: plan.initial_values.to_vec(),
            cache,
            blooms,
            memory,
            pool: graphh_pool::WorkerPool::new(plan.threads_per_server as usize),
        }
    }

    /// The codec the edge cache selected.
    pub fn cache_codec(&self) -> Codec {
        self.cache.codec()
    }

    /// Peak accounted memory so far.
    pub fn peak_memory(&self) -> u64 {
        self.memory.peak()
    }

    /// Current edge-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Real bytes/ops moved through this server's local-disk backend so far.
    ///
    /// This is *actual-storage* accounting, distinct from the simulated
    /// [`ServerMetrics`] disk counters: a cache miss reads the blob once to
    /// decode and once more to admit, so the meter legitimately counts the
    /// admission re-read that the simulated model does not charge.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.disk.meter().snapshot()
    }

    /// Route this server's pool-job spans into `tracer`, with the pool's
    /// worker threads on lanes `tid_base + worker_index`.
    pub fn set_tracer(&self, tracer: Tracer, tid_base: u32) {
        self.pool.set_tracer(tracer, tid_base);
    }

    /// Fold this server's storage-meter totals and edge-cache statistics into
    /// the global counter registry (under `storage.s{id}.*` / `cache.s{id}.*`).
    ///
    /// Call once at the end of a run: counts *add* (they are monotone totals
    /// across every run in the process), gauges overwrite.
    pub fn publish_observability(&self) {
        let registry = global_counters();
        let sid = self.id;
        let io = self.io_snapshot();
        registry
            .counter(&format!("storage.s{sid}.bytes_read"))
            .add(io.bytes_read);
        registry
            .counter(&format!("storage.s{sid}.bytes_written"))
            .add(io.bytes_written);
        registry
            .counter(&format!("storage.s{sid}.read_ops"))
            .add(io.read_ops);
        registry
            .counter(&format!("storage.s{sid}.write_ops"))
            .add(io.write_ops);
        let cache = self.cache_stats();
        registry
            .counter(&format!("cache.s{sid}.hits"))
            .add(cache.hits);
        registry
            .counter(&format!("cache.s{sid}.misses"))
            .add(cache.misses);
        registry
            .counter(&format!("cache.s{sid}.evictions"))
            .add(cache.evictions);
        registry
            .counter(&format!("cache.s{sid}.resident_tiles"))
            .set(cache.resident_tiles);
        registry
            .counter(&format!("cache.s{sid}.used_bytes"))
            .set(cache.used_bytes);
    }

    /// The compute phase of one superstep on this server: walk the assigned
    /// tiles (Bloom-skipping inactive ones), gather/apply against the local
    /// replica, and emit one broadcast message per tile with updates.
    ///
    /// Tiles are processed by this server's **persistent**
    /// [`graphh_pool::WorkerPool`] (the paper's `T` intra-server compute
    /// threads), built once in [`ServerState::build`] and reused every
    /// superstep — short supersteps pay a condvar wake, not a thread spawn.
    /// Determinism for any thread count is by construction:
    ///
    /// * each tile reads the *previous* superstep's replica (never this
    ///   phase's output), so tiles are data-independent,
    /// * every tile produces its own [`ServerMetrics`] / update buffer, and
    ///   the per-tile outputs are reduced **in tile order** after the join —
    ///   including the floating-point codec-time sums,
    /// * cache recency is stamped by tile position (not lock-acquisition
    ///   order) and admissions of missed tiles are deferred to a post-join
    ///   pass in tile order, so the LRU state — and therefore every later
    ///   superstep's hit/miss/eviction sequence — is schedule-independent.
    pub fn run_tile_phase(
        &mut self,
        program: &dyn GabProgram,
        plan: &ExecutionPlan,
        superstep: u32,
        previously_updated: &[VertexId],
        use_bloom: bool,
    ) -> Result<TilePhaseOutput> {
        let threads = plan.threads_per_server as usize;
        let run_everything = superstep == 0 && program.run_all_vertices_initially();
        // Skip the O(frontier)-per-tile Bloom probe outright when the frontier
        // is dense: nothing would be skipped, and the probe itself becomes the
        // hot loop. The rule depends only on the frontier, so it is identical
        // across executors and thread counts.
        let frontier_is_dense = previously_updated.len() as f64
            >= plan.num_vertices as f64 * BLOOM_DENSE_FRONTIER_FRACTION;
        let probe_bloom = use_bloom && !run_everything && !frontier_is_dense;

        let vertex_ctx = VertexContext {
            values: &self.values,
            out_degrees: &plan.out_degrees,
            in_degrees: &plan.in_degrees,
            num_vertices: plan.num_vertices,
            superstep,
        };
        let tiles = &self.tiles;
        let cache = &self.cache;
        let disk = &self.disk;
        let tile_keys = &self.tile_keys;
        let blooms = &self.blooms;
        // Deterministic recency stamps: tile i of this phase gets stamp
        // `base + 1 + i`, regardless of which thread touches the cache first.
        let stamp_base = cache.clock();

        let outcomes: Vec<Result<TileOutcome>> = self.pool.fork_join_ordered(tiles.len(), |i| {
            let tile_id = tiles[i];
            let stamp = stamp_base + 1 + i as u64;
            let mut metrics = ServerMetrics::default();

            // Bloom-filter tile skipping: a tile with no updated source
            // vertex cannot change any target value.
            if probe_bloom && !blooms[&tile_id].may_contain_any(previously_updated.iter()) {
                metrics.tiles_skipped += 1;
                return Ok(TileOutcome {
                    metrics,
                    message: None,
                    admit: None,
                    tile_memory_bytes: 0,
                });
            }

            // Fetch the tile: edge cache first, local disk on a miss.
            let mut admit = None;
            let tile: Arc<Tile> = match cache.lookup(tile_id, stamp) {
                Some(fetch) => {
                    metrics.cache_hits += 1;
                    metrics.decompress_seconds += fetch.decompress_seconds;
                    fetch.tile
                }
                None => {
                    metrics.cache_misses += 1;
                    let blob = disk
                        .get(&tile_keys[&tile_id])
                        .expect("assigned tile must be on local disk");
                    metrics.disk_read_bytes += blob.len() as u64;
                    metrics.disk_read_ops += 1;
                    let tile = Arc::new(Tile::from_bytes(&blob)?);
                    // Admission is deferred to the post-join pass so
                    // evictions happen in tile order on one thread.
                    admit = Some(Arc::clone(&tile));
                    tile
                }
            };

            // Process the tile against the local replica array.
            let mut tile_updates: Vec<(VertexId, f64)> = Vec::new();
            for target in tile.targets() {
                let in_degree = tile.in_degree(target);
                if in_degree == 0 && !run_everything {
                    continue;
                }
                let mut edges = tile.in_edges(target);
                let accum = program.gather(target, &mut edges, &vertex_ctx);
                let current = vertex_ctx.values[target as usize];
                let new = program.apply(target, accum, current, &vertex_ctx);
                metrics.edges_processed += u64::from(in_degree);
                if program.is_update(current, new) {
                    tile_updates.push((target, new));
                }
            }
            metrics.tiles_processed += 1;
            metrics.messages_produced += tile_updates.len() as u64;

            let message = (!tile_updates.is_empty())
                .then(|| BroadcastMessage::new(tile.target_start, tile.target_end, tile_updates));
            Ok(TileOutcome {
                metrics,
                message,
                admit,
                tile_memory_bytes: tile.memory_bytes(),
            })
        });

        // Deterministic reduction, in tile order: fold metrics (fixing the
        // floating-point summation order), collect messages, and admit the
        // tiles that missed — evictions therefore replay identically for any
        // thread count.
        let mut metrics = ServerMetrics::default();
        let mut messages = Vec::new();
        let mut transient = Vec::with_capacity(tiles.len());
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let outcome = outcome?;
            metrics.merge(&outcome.metrics);
            if let Some(tile) = outcome.admit {
                let tile_id = self.tiles[i];
                let blob = self
                    .disk
                    .get(&self.tile_keys[&tile_id])
                    .expect("assigned tile must be on local disk");
                metrics.compress_seconds +=
                    self.cache
                        .admit(tile_id, &blob, &tile, stamp_base + 1 + i as u64);
            }
            if let Some(message) = outcome.message {
                messages.push(message);
            }
            transient.push(outcome.tile_memory_bytes);
        }

        // Transient tile memory: up to `threads` tiles are decoded
        // concurrently, so charge the sum of the `threads` largest (with one
        // thread this is exactly the sequential per-tile maximum).
        transient.sort_unstable_by(|a, b| b.cmp(a));
        let concurrent_tile_bytes: u64 = transient.iter().take(threads.max(1)).sum();
        self.memory.with_transient(concurrent_tile_bytes, |_| ());

        self.memory
            .set_component("edge-cache", self.cache.stats().used_bytes);
        metrics.peak_memory_bytes = self.memory.peak();

        Ok(TilePhaseOutput { metrics, messages })
    }

    /// The barrier's apply half: fold `updates` (pre-sorted by vertex id) into
    /// this server's replica.
    pub fn apply_updates(&mut self, updates: &[(VertexId, f64)]) {
        for &(v, value) in updates {
            self.values[v as usize] = value;
        }
    }
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("id", &self.id)
            .field("tiles", &self.tiles.len())
            .field("values", &self.values.len())
            .finish()
    }
}

/// Deterministically merge per-tile update lists into the barrier's apply
/// order: sorted by vertex id. Tiles partition the target-vertex space, so
/// each vertex appears at most once; the dedup is a safety net that keeps the
/// first occurrence if an engine ever violates that.
pub fn merge_updates(mut all_updates: Vec<(VertexId, f64)>) -> Vec<(VertexId, f64)> {
    merge_updates_in_place(&mut all_updates);
    all_updates
}

/// [`merge_updates`] without consuming the buffer, so the superstep loop can
/// clear-and-reuse one update vector across supersteps instead of allocating
/// a fresh one per superstep.
pub fn merge_updates_in_place(all_updates: &mut Vec<(VertexId, f64)>) {
    all_updates.sort_unstable_by_key(|&(v, _)| v);
    all_updates.dedup_by_key(|&mut (v, _)| v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::PageRank;
    use graphh_cluster::ClusterConfig;
    use graphh_graph::generators::{GraphGenerator, RmatGenerator};
    use graphh_partition::{Spe, SpeConfig};

    #[test]
    fn merge_updates_sorts_and_dedups() {
        let merged = merge_updates(vec![(5, 1.0), (1, 2.0), (5, 3.0), (0, 4.0)]);
        assert_eq!(merged, vec![(0, 4.0), (1, 2.0), (5, 1.0)]);
    }

    #[test]
    fn plan_rejects_empty_graph() {
        let g =
            graphh_graph::Graph::from_edges(0, graphh_graph::EdgeList::new_unweighted()).unwrap();
        let p = Spe::partition(&g, &SpeConfig::new("x", 1)).unwrap();
        let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1));
        assert!(ExecutionPlan::prepare(&cfg, &p, &PageRank::new(1)).is_err());
    }

    #[test]
    fn plan_resolves_tile_threads_from_knob_then_machine_workers() {
        let g = RmatGenerator::new(6, 4).generate(1);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 4)).unwrap();
        // Default: the machine's worker count (the paper's T).
        let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1).with_workers(3));
        let plan = ExecutionPlan::prepare(&cfg, &p, &PageRank::new(1)).unwrap();
        assert_eq!(plan.threads_per_server, 3);
        // Explicit knob wins over the machine spec.
        let pinned = cfg.clone().with_threads_per_server(2);
        assert_eq!(
            ExecutionPlan::prepare(&pinned, &p, &PageRank::new(1))
                .unwrap()
                .threads_per_server,
            2
        );
        // 0 is a config bug and surfaces as a clear error, not a clamp.
        let zero = cfg.with_threads_per_server(0);
        let err = ExecutionPlan::prepare(&zero, &p, &PageRank::new(1)).unwrap_err();
        assert!(err.to_string().contains("threads_per_server"), "{err}");
    }

    #[test]
    fn plan_rejects_zero_server_cluster_without_panicking() {
        let g = RmatGenerator::new(6, 4).generate(1);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 4)).unwrap();
        let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1));
        cfg.cluster.num_servers = 0; // bypasses the constructor assert on purpose
        let err = ExecutionPlan::prepare(&cfg, &p, &PageRank::new(1)).unwrap_err();
        assert!(err.to_string().contains("num_servers"), "{err}");
    }

    #[test]
    fn server_state_stages_assigned_tiles() {
        let g = RmatGenerator::new(7, 4).generate(3);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 6)).unwrap();
        let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(3));
        let plan = ExecutionPlan::prepare(&cfg, &p, &PageRank::new(1)).unwrap();
        let total_tiles: usize = (0..3)
            .map(|sid| ServerState::build(&cfg, &plan, &p, sid).tiles.len())
            .sum();
        assert_eq!(total_tiles as u32, p.num_tiles());
        let s0 = ServerState::build(&cfg, &plan, &p, 0);
        assert_eq!(s0.values.len() as u64, plan.num_vertices);
        assert!(s0.peak_memory() > 0);
    }
}
