//! Execution machinery shared by every [`Executor`].
//!
//! The engine's per-superstep work factors into pieces that are identical no
//! matter how the simulated servers are scheduled:
//!
//! * [`ExecutionPlan`] — everything derived from the config + partitioned graph
//!   before the first superstep (initial values, tile assignment, cost model),
//! * [`ServerState`] — one server's long-lived state (tiles on "disk", vertex
//!   replica, edge cache, Bloom filters, memory accounting),
//! * [`ServerState::run_tile_phase`] — the compute phase of one superstep on
//!   one server: Bloom-skip, fetch, gather/apply, producing the tile-granular
//!   [`BroadcastMessage`]s to publish,
//! * [`merge_updates`] / [`ServerState::apply_updates`] — the deterministic
//!   barrier: updates are sorted by vertex id before application, so every
//!   executor applies them in the same order and produces bit-identical
//!   replicas.
//!
//! An [`Executor`] strings these together: [`sequential::SequentialExecutor`]
//! on one thread (the reference), `graphh-runtime`'s `ThreadedExecutor` on one
//! OS thread per server with a real channel broadcast plane.

pub mod sequential;

use crate::bloom::BloomFilter;
use crate::engine::{GraphHConfig, RunResult};
use crate::gab::{Direction, DirectionMode, FrontierStats, GabProgram, InitContext, VertexContext};
use crate::{EngineError, Result};
use graphh_cache::{CacheStats, EdgeCache, EdgeCacheConfig};
use graphh_cluster::{BroadcastMessage, CostModel, MemoryTracker, MessageCodec, ServerMetrics};
use graphh_compress::Codec;
use graphh_graph::ids::{ServerId, TileId, VertexId};
use graphh_obs::{global_counters, Tracer};
use graphh_partition::{PartitionedGraph, Tile, TileAssignment};
use graphh_storage::{IoMeter, IoSnapshot, MemoryBackend, MeteredBackend, StorageBackend};
use std::collections::HashMap;
use std::sync::Arc;

/// Frontier density (fraction of all vertices) at or above which the per-tile
/// Bloom probe is skipped.
///
/// Probing costs O(frontier) per tile. When the frontier is dense — PageRank
/// updates essentially every vertex every superstep — no tile can realistically
/// be skipped, so the probe is pure O(tiles × frontier) overhead; below the
/// threshold (frontier algorithms like SSSP/BFS) probing pays for itself many
/// times over and `tiles_skipped` semantics are unchanged.
pub const BLOOM_DENSE_FRONTIER_FRACTION: f64 = 0.25;

/// Default α of the Beamer direction heuristic: push only while the
/// frontier's out-edges are under `1/α` of all edges (see
/// [`FrontierStats::beamer`]). Programs may override via their
/// [`GabProgram::direction`] hook; this default applies when the hook
/// returns [`Direction::Auto`].
pub const DIRECTION_ALPHA: u64 = 14;

/// Default β of the Beamer direction heuristic: push only while the frontier
/// holds under `1/β` of all vertices.
pub const DIRECTION_BETA: u64 = 24;

/// An execution strategy for the GraphH engine.
///
/// Implementations must be observationally equivalent: given the same config,
/// graph and program, `execute` must return bit-identical `values` (the
/// differential tests in `graphh-runtime` and `tests/determinism.rs` enforce
/// this). Only wall-clock behaviour may differ.
pub trait Executor: Send + Sync {
    /// Short name used in reports ("sequential", "threaded", ...).
    fn name(&self) -> &'static str;

    /// Run `program` over `partitioned` under `config`.
    fn execute(
        &self,
        config: &GraphHConfig,
        partitioned: &PartitionedGraph,
        program: &dyn GabProgram,
    ) -> Result<RunResult>;
}

/// Immutable state shared by all servers of one run.
#[derive(Debug)]
pub struct ExecutionPlan {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Out-degree of every vertex.
    pub out_degrees: Arc<Vec<u32>>,
    /// In-degree of every vertex.
    pub in_degrees: Arc<Vec<u32>>,
    /// Initial value of every vertex.
    pub initial_values: Arc<Vec<f64>>,
    /// Tile → server assignment.
    pub assignment: TileAssignment,
    /// Superstep cap (config and program limits combined).
    pub max_supersteps: u32,
    /// Wire codec for broadcast messages.
    pub message_codec: MessageCodec,
    /// Metered-work → simulated-seconds conversion.
    pub cost_model: CostModel,
    /// Compute threads per server for the tile phase (the paper's `T`),
    /// resolved from the config (explicit knob, else the machine's worker
    /// count).
    pub threads_per_server: u32,
    /// Total out-edges in the graph (the denominator of every frontier-
    /// density decision).
    pub total_out_edges: u64,
    /// The run's direction policy (from the config).
    pub direction_mode: DirectionMode,
    /// Whether this run can ever take the push path: the program has a push
    /// side *and* the policy does not pin pull. Servers only build push
    /// indexes when this is set.
    pub push_capable: bool,
}

impl ExecutionPlan {
    /// Validate the input and precompute everything supersteps share.
    pub fn prepare(
        config: &GraphHConfig,
        partitioned: &PartitionedGraph,
        program: &dyn GabProgram,
    ) -> Result<Self> {
        config.validate()?;
        let num_vertices = partitioned.num_vertices();
        if num_vertices == 0 {
            return Err(EngineError::BadInput("graph has no vertices".into()));
        }
        if num_vertices > u64::from(u32::MAX) {
            return Err(EngineError::BadInput(
                "stand-in graphs must have fewer than 2^32 vertices".into(),
            ));
        }
        let out_degrees: Arc<Vec<u32>> = Arc::new(partitioned.out_degrees.clone());
        let in_degrees: Arc<Vec<u32>> = Arc::new(partitioned.in_degrees.clone());
        let init_ctx = InitContext {
            num_vertices,
            out_degrees: &out_degrees,
            in_degrees: &in_degrees,
        };
        let initial_values: Arc<Vec<f64>> = Arc::new(
            (0..num_vertices as u32)
                .map(|v| program.initial_value(v, &init_ctx))
                .collect(),
        );
        if config.direction_mode == DirectionMode::ForcePush && !program.supports_push() {
            return Err(EngineError::BadInput(format!(
                "direction: force-push requested but program {:?} is pull-only \
                 (it implements no scatter/combine side)",
                program.name()
            )));
        }
        let assignment =
            TileAssignment::round_robin(partitioned.num_tiles(), config.cluster.num_servers);
        let max_supersteps = config
            .max_supersteps
            .unwrap_or(u32::MAX)
            .min(program.max_supersteps());
        let total_out_edges = out_degrees.iter().map(|&d| u64::from(d)).sum();
        Ok(Self {
            num_vertices,
            out_degrees,
            in_degrees,
            initial_values,
            assignment,
            max_supersteps,
            message_codec: MessageCodec::new(config.communication, config.message_compressor),
            cost_model: CostModel::new(config.cluster),
            // `validate` rejected an explicit 0; the fallback machine spec
            // could still be hand-built with 0 workers, so floor it.
            threads_per_server: config
                .threads_per_server
                .unwrap_or(config.cluster.machine.workers)
                .max(1),
            total_out_edges,
            direction_mode: config.direction_mode,
            push_capable: program.supports_push()
                && config.direction_mode != DirectionMode::ForcePull,
        })
    }

    /// Vertex ids active before superstep 0 (everything changed at init).
    pub fn initial_frontier(&self) -> Vec<VertexId> {
        (0..self.num_vertices as u32).collect()
    }

    /// The replicated frontier stats for one superstep's frontier.
    ///
    /// Pure integer folds over replicated inputs (the merged update set and
    /// the shared out-degree array) — every executor and every server
    /// computes the identical value, and the hot loop allocates nothing.
    pub fn frontier_stats(&self, frontier: &[VertexId]) -> FrontierStats {
        let mut frontier_out_edges = 0u64;
        for &v in frontier {
            frontier_out_edges += u64::from(self.out_degrees[v as usize]);
        }
        FrontierStats {
            frontier_size: frontier.len() as u64,
            frontier_out_edges,
            num_vertices: self.num_vertices,
            total_out_edges: self.total_out_edges,
        }
    }

    /// Resolve the direction the next superstep runs: the policy first
    /// (force-pull / force-push), then the program's hook, then the engine's
    /// default Beamer heuristic for hooks returning [`Direction::Auto`].
    /// Never returns `Auto`; a push request from a program without a push
    /// side is clamped to pull.
    ///
    /// Deterministic by construction: a pure function of the plan and the
    /// replicated stats, so sequential, threaded and multi-process runs pick
    /// the same direction at the same superstep.
    pub fn resolve_direction(&self, program: &dyn GabProgram, stats: &FrontierStats) -> Direction {
        let choice = match self.direction_mode {
            DirectionMode::ForcePull => Direction::Pull,
            DirectionMode::ForcePush => Direction::Push,
            DirectionMode::Auto => match program.direction(stats) {
                Direction::Auto => stats.beamer(DIRECTION_ALPHA, DIRECTION_BETA),
                explicit => explicit,
            },
        };
        if choice == Direction::Push && !self.push_capable {
            Direction::Pull
        } else {
            choice
        }
    }

    /// Bundle one superstep's frontier with its stats and the resolved
    /// direction — computed **once per superstep per executor** and handed
    /// to every server's [`ServerState::run_tile_phase`].
    pub fn frontier_view<'a>(
        &self,
        program: &dyn GabProgram,
        frontier: &'a [VertexId],
    ) -> FrontierView<'a> {
        let stats = self.frontier_stats(frontier);
        let direction = self.resolve_direction(program, &stats);
        FrontierView {
            vertices: frontier,
            stats,
            direction,
        }
    }
}

/// One superstep's replicated frontier, its [`FrontierStats`], and the
/// engine's resolved [`Direction`] decision.
///
/// Built by [`ExecutionPlan::frontier_view`]; both the Bloom dense-skip rule
/// and the push/pull branch read from here instead of recomputing density.
#[derive(Debug, Clone, Copy)]
pub struct FrontierView<'a> {
    /// Vertices updated in the previous superstep, ascending (the merge at
    /// the barrier sorts them).
    pub vertices: &'a [VertexId],
    /// Replicated stats over `vertices`.
    pub stats: FrontierStats,
    /// The resolved tile-loop direction (never [`Direction::Auto`]).
    pub direction: Direction,
}

impl FrontierView<'_> {
    /// Whether the frontier is dense enough that the per-tile Bloom probe is
    /// pure overhead (the `BLOOM_DENSE_FRONTIER_FRACTION` rule). Kept as the
    /// exact multiply-compare the engine has always used, so the skip
    /// decision is bit-compatible with earlier releases.
    pub fn is_dense(&self) -> bool {
        self.stats.frontier_size as f64
            >= self.stats.num_vertices as f64 * BLOOM_DENSE_FRONTIER_FRACTION
    }
}

/// Per-tile transpose of the in-edge CSR for the push loop: the same edges,
/// grouped by **source** instead of target.
///
/// Tiles store only in-edges (sources grouped by target), which is exactly
/// what `gather` wants and exactly what `scatter` cannot use. The transpose
/// is built once per assigned tile at server build time (only for
/// push-capable runs), stays resident, and is walked with a two-pointer
/// sweep against the sorted frontier. Sources are ascending; a source's
/// out-targets are ascending; duplicate edges keep their tile order — so
/// the push loop's emit order is deterministic for any thread count.
struct PushIndex {
    /// First / one-past-last target vertex of the tile (mirrors the tile).
    target_start: VertexId,
    target_end: VertexId,
    /// Distinct source vertices with at least one edge into the tile,
    /// ascending.
    sources: Vec<VertexId>,
    /// CSR offsets into `targets` / `weights`, length `sources.len() + 1`.
    offsets: Vec<u64>,
    /// Out-targets (within this tile) grouped by source.
    targets: Vec<VertexId>,
    /// Edge weights; `None` for unweighted graphs (unit weight).
    weights: Option<Vec<f32>>,
}

impl PushIndex {
    fn build(tile: &Tile) -> Self {
        let mut edges: Vec<(VertexId, VertexId, f32)> =
            Vec::with_capacity(tile.num_edges() as usize);
        for target in tile.targets() {
            for (source, weight) in tile.in_edges(target) {
                edges.push((source, target, weight));
            }
        }
        // Stable sort: duplicate (source, target) edges keep their tile order.
        edges.sort_by_key(|&(source, target, _)| (source, target));
        let mut sources = Vec::new();
        let mut offsets = vec![0u64];
        let mut targets = Vec::with_capacity(edges.len());
        let mut weights = tile.is_weighted().then(|| Vec::with_capacity(edges.len()));
        for (source, target, weight) in edges {
            if sources.last() != Some(&source) {
                sources.push(source);
                offsets.push(targets.len() as u64);
            }
            targets.push(target);
            if let Some(ws) = &mut weights {
                ws.push(weight);
            }
            *offsets.last_mut().expect("offsets is never empty") = targets.len() as u64;
        }
        PushIndex {
            target_start: tile.target_start,
            target_end: tile.target_end,
            sources,
            offsets,
            targets,
            weights,
        }
    }

    /// Number of target slots the tile covers.
    fn num_targets(&self) -> usize {
        (self.target_end - self.target_start) as usize
    }

    /// Out-edges of the source at position `si`, as `(target, weight)`.
    fn out_edges(&self, si: usize) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        let lo = self.offsets[si] as usize;
        let hi = self.offsets[si + 1] as usize;
        (lo..hi).map(move |k| (self.targets[k], self.weights.as_ref().map_or(1.0, |w| w[k])))
    }

    /// Out-degree (into this tile) of the source at position `si`.
    fn out_degree(&self, si: usize) -> u64 {
        self.offsets[si + 1] - self.offsets[si]
    }

    /// Resident footprint, for the memory tracker.
    fn memory_bytes(&self) -> u64 {
        self.sources.len() as u64 * 4
            + self.offsets.len() as u64 * 8
            + self.targets.len() as u64 * 4
            + self.weights.as_ref().map_or(0, |w| w.len() as u64 * 4)
    }
}

/// One simulated server's long-lived state.
pub struct ServerState {
    /// Server id.
    pub id: ServerId,
    /// Tiles assigned to this server, in processing order.
    pub tiles: Vec<TileId>,
    /// Serialized tiles as stored on the server's local disk — a real
    /// [`StorageBackend`] behind an [`IoMeter`], so every byte the engine
    /// actually moves (staging writes, cache-miss reads, admission re-reads)
    /// is metered; see [`ServerState::io_snapshot`].
    disk: MeteredBackend<MemoryBackend>,
    /// Storage key of each assigned tile, precomputed so the cache-miss path
    /// does no string formatting.
    tile_keys: HashMap<TileId, String>,
    /// Local replica of every vertex value (All-in-All policy).
    pub values: Vec<f64>,
    /// Edge cache over idle memory.
    cache: EdgeCache,
    /// Per-tile Bloom filters over source vertices.
    blooms: HashMap<TileId, BloomFilter>,
    /// Per-tile out-edge transposes for the push loop, parallel to `tiles`.
    /// Empty unless the plan is push-capable.
    push_indexes: Vec<PushIndex>,
    /// Memory accounting.
    memory: MemoryTracker,
    /// This server's persistent compute-thread pool (the paper's `T` worker
    /// threads): created once here, reused by every tile phase of every
    /// superstep — no thread is spawned inside the superstep loop.
    pool: graphh_pool::WorkerPool,
}

/// Output of one server's compute phase for one superstep.
pub struct TilePhaseOutput {
    /// Metered work, cache stats and peak memory folded in.
    pub metrics: ServerMetrics,
    /// One message per processed tile that produced updates, in tile order.
    pub messages: Vec<BroadcastMessage>,
}

/// What one tile-phase worker produces for one tile. Outcomes are reduced in
/// tile order, which is what keeps the parallel phase bit-identical to the
/// sequential reference.
struct TileOutcome {
    /// This tile's share of the superstep metrics.
    metrics: ServerMetrics,
    /// The broadcast message, if the tile produced updates.
    message: Option<BroadcastMessage>,
    /// The decoded tile, when it missed the cache and should be admitted by
    /// the post-join pass.
    admit: Option<Arc<Tile>>,
    /// Decoded in-memory size, for transient-memory accounting (0 if skipped).
    tile_memory_bytes: u64,
}

impl ServerState {
    /// Build server `sid`'s state: stage its tiles on its local disk, build the
    /// Bloom filters, size the edge cache from the idle memory, register the
    /// permanent arrays with the memory tracker.
    pub fn build(
        config: &GraphHConfig,
        plan: &ExecutionPlan,
        partitioned: &PartitionedGraph,
        sid: ServerId,
    ) -> Self {
        let num_vertices = plan.num_vertices;
        let machine = config.cluster.machine;
        let tiles = plan.assignment.tiles_of(sid);
        let disk = MeteredBackend::new(MemoryBackend::new(), IoMeter::shared());
        let mut tile_keys = HashMap::new();
        let mut blooms = HashMap::new();
        let mut total_tile_bytes = 0u64;
        for &tid in &tiles {
            let tile = &partitioned.tiles[tid as usize];
            let blob = tile.to_bytes();
            total_tile_bytes += blob.len() as u64;
            blooms.insert(
                tid,
                BloomFilter::from_ids(tile.sources().iter().copied(), tile.sources().len().max(8)),
            );
            let key = format!("tiles/{tid}");
            disk.put(&key, &blob)
                .expect("staging a tile on the in-memory local disk cannot fail");
            tile_keys.insert(tid, key);
        }
        // Idle memory = machine memory minus the permanent vertex arrays.
        let permanent = 8 * num_vertices * 2 + 4 * num_vertices * 2;
        let idle = machine.memory_bytes.saturating_sub(permanent);
        let capacity = config.cache_capacity.unwrap_or(idle);
        let cache = EdgeCache::new(
            EdgeCacheConfig {
                capacity_bytes: capacity,
                mode: config.cache_mode,
            },
            total_tile_bytes,
        );
        let mut memory = MemoryTracker::new(machine.memory_bytes);
        // Vertex-state + message memory is permanent; register it once.
        memory.set_component("vertex-values", 8 * num_vertices);
        memory.set_component("message-buffer", 8 * num_vertices);
        memory.set_component("degree-arrays", 4 * num_vertices * 2);
        let bloom_bytes: u64 = blooms.values().map(BloomFilter::memory_bytes).sum();
        memory.set_component("bloom-filters", bloom_bytes);
        // Push-capable runs keep a resident out-edge transpose per assigned
        // tile (the push loop never touches disk or cache); pull-only runs
        // pay nothing.
        let push_indexes: Vec<PushIndex> = if plan.push_capable {
            tiles
                .iter()
                .map(|&tid| PushIndex::build(&partitioned.tiles[tid as usize]))
                .collect()
        } else {
            Vec::new()
        };
        if !push_indexes.is_empty() {
            let push_bytes: u64 = push_indexes.iter().map(PushIndex::memory_bytes).sum();
            memory.set_component("push-index", push_bytes);
        }
        ServerState {
            id: sid,
            tiles,
            disk,
            tile_keys,
            values: plan.initial_values.to_vec(),
            cache,
            blooms,
            push_indexes,
            memory,
            pool: graphh_pool::WorkerPool::new(plan.threads_per_server as usize),
        }
    }

    /// The codec the edge cache selected.
    pub fn cache_codec(&self) -> Codec {
        self.cache.codec()
    }

    /// Peak accounted memory so far.
    pub fn peak_memory(&self) -> u64 {
        self.memory.peak()
    }

    /// Current edge-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Real bytes/ops moved through this server's local-disk backend so far.
    ///
    /// This is *actual-storage* accounting, distinct from the simulated
    /// [`ServerMetrics`] disk counters: a cache miss reads the blob once to
    /// decode and once more to admit, so the meter legitimately counts the
    /// admission re-read that the simulated model does not charge.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.disk.meter().snapshot()
    }

    /// Route this server's pool-job spans into `tracer`, with the pool's
    /// worker threads on lanes `tid_base + worker_index`.
    pub fn set_tracer(&self, tracer: Tracer, tid_base: u32) {
        self.pool.set_tracer(tracer, tid_base);
    }

    /// This server's persistent compute-thread pool. Exposed so the runtime's
    /// worker loop can fan phases other than tile compute (the encode-compress
    /// publish phase) over the same resident threads instead of spawning its
    /// own.
    pub fn pool(&self) -> &graphh_pool::WorkerPool {
        &self.pool
    }

    /// Fold this server's storage-meter totals and edge-cache statistics into
    /// the global counter registry (under `storage.s{id}.*` / `cache.s{id}.*`).
    ///
    /// Call once at the end of a run: counts *add* (they are monotone totals
    /// across every run in the process), gauges overwrite.
    pub fn publish_observability(&self) {
        let registry = global_counters();
        let sid = self.id;
        let io = self.io_snapshot();
        registry
            .counter(&format!("storage.s{sid}.bytes_read"))
            .add(io.bytes_read);
        registry
            .counter(&format!("storage.s{sid}.bytes_written"))
            .add(io.bytes_written);
        registry
            .counter(&format!("storage.s{sid}.read_ops"))
            .add(io.read_ops);
        registry
            .counter(&format!("storage.s{sid}.write_ops"))
            .add(io.write_ops);
        let cache = self.cache_stats();
        registry
            .counter(&format!("cache.s{sid}.hits"))
            .add(cache.hits);
        registry
            .counter(&format!("cache.s{sid}.misses"))
            .add(cache.misses);
        registry
            .counter(&format!("cache.s{sid}.evictions"))
            .add(cache.evictions);
        registry
            .counter(&format!("cache.s{sid}.resident_tiles"))
            .set(cache.resident_tiles);
        registry
            .counter(&format!("cache.s{sid}.used_bytes"))
            .set(cache.used_bytes);
    }

    /// The compute phase of one superstep on this server, in the direction
    /// the executor resolved for this superstep (`frontier.direction`):
    ///
    /// * **pull** — walk the assigned tiles (Bloom-skipping inactive ones),
    ///   gather/apply every target against the local replica,
    /// * **push** — sweep the sorted frontier against each tile's resident
    ///   out-edge transpose (`PushIndex`), scatter/combine/apply, touching
    ///   neither the edge cache nor the local disk.
    ///
    /// Both paths emit updates in ascending target order per tile and
    /// messages in tile order, so for programs honouring the combine-order
    /// contract the broadcast bytes are identical in either direction
    /// (`docs/ALGORITHMS.md` has the proof sketch; the forced-push vs
    /// forced-pull suites in `tests/determinism.rs` pin it).
    ///
    /// Tiles are processed by this server's **persistent**
    /// [`graphh_pool::WorkerPool`] (the paper's `T` intra-server compute
    /// threads), built once in [`ServerState::build`] and reused every
    /// superstep — short supersteps pay a condvar wake, not a thread spawn.
    /// Determinism for any thread count is by construction:
    ///
    /// * each tile reads the *previous* superstep's replica (never this
    ///   phase's output), so tiles are data-independent,
    /// * every tile produces its own [`ServerMetrics`] / update buffer, and
    ///   the per-tile outputs are reduced **in tile order** after the join —
    ///   including the floating-point codec-time sums,
    /// * cache recency is stamped by tile position (not lock-acquisition
    ///   order) and admissions of missed tiles are deferred to a post-join
    ///   pass in tile order, so the LRU state — and therefore every later
    ///   superstep's hit/miss/eviction sequence — is schedule-independent.
    pub fn run_tile_phase(
        &mut self,
        program: &dyn GabProgram,
        plan: &ExecutionPlan,
        superstep: u32,
        frontier: &FrontierView<'_>,
        use_bloom: bool,
    ) -> Result<TilePhaseOutput> {
        let threads = plan.threads_per_server as usize;
        // Stamp base read before the phase so pull-path recency stamps are
        // deterministic (push supersteps never touch the cache, so the clock
        // simply does not advance on them — identically on every executor).
        let stamp_base = self.cache.clock();
        let outcomes: Vec<Result<TileOutcome>> = match frontier.direction {
            Direction::Push => self.push_outcomes(program, plan, superstep, frontier),
            // `resolve_direction` never returns `Auto`; treat it as pull.
            Direction::Pull | Direction::Auto => {
                self.pull_outcomes(program, plan, superstep, frontier, use_bloom, stamp_base)
            }
        };

        // Deterministic reduction, in tile order: fold metrics (fixing the
        // floating-point summation order), collect messages, and admit the
        // tiles that missed — evictions therefore replay identically for any
        // thread count.
        let mut metrics = ServerMetrics::default();
        let mut messages = Vec::new();
        let mut transient = Vec::with_capacity(self.tiles.len());
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let outcome = outcome?;
            metrics.merge(&outcome.metrics);
            if let Some(tile) = outcome.admit {
                let tile_id = self.tiles[i];
                let blob = self
                    .disk
                    .get(&self.tile_keys[&tile_id])
                    .expect("assigned tile must be on local disk");
                metrics.compress_seconds +=
                    self.cache
                        .admit(tile_id, &blob, &tile, stamp_base + 1 + i as u64);
            }
            if let Some(message) = outcome.message {
                messages.push(message);
            }
            transient.push(outcome.tile_memory_bytes);
        }

        // Transient tile memory: up to `threads` tiles are decoded
        // concurrently, so charge the sum of the `threads` largest (with one
        // thread this is exactly the sequential per-tile maximum).
        transient.sort_unstable_by(|a, b| b.cmp(a));
        let concurrent_tile_bytes: u64 = transient.iter().take(threads.max(1)).sum();
        self.memory.with_transient(concurrent_tile_bytes, |_| ());

        self.memory
            .set_component("edge-cache", self.cache.stats().used_bytes);
        metrics.peak_memory_bytes = self.memory.peak();

        Ok(TilePhaseOutput { metrics, messages })
    }

    /// The pull path: today's gather loop, unchanged — Bloom probe, cache
    /// lookup / disk fetch, per-target gather/apply in tile order.
    fn pull_outcomes(
        &self,
        program: &dyn GabProgram,
        plan: &ExecutionPlan,
        superstep: u32,
        frontier: &FrontierView<'_>,
        use_bloom: bool,
        stamp_base: u64,
    ) -> Vec<Result<TileOutcome>> {
        let run_everything = superstep == 0 && program.run_all_vertices_initially();
        // Skip the O(frontier)-per-tile Bloom probe outright when the frontier
        // is dense: nothing would be skipped, and the probe itself becomes the
        // hot loop. The rule reads the shared frontier stats, so it is
        // identical across executors and thread counts.
        let probe_bloom = use_bloom && !run_everything && !frontier.is_dense();
        let previously_updated = frontier.vertices;

        let vertex_ctx = VertexContext {
            values: &self.values,
            out_degrees: &plan.out_degrees,
            in_degrees: &plan.in_degrees,
            num_vertices: plan.num_vertices,
            superstep,
        };
        let tiles = &self.tiles;
        let cache = &self.cache;
        let disk = &self.disk;
        let tile_keys = &self.tile_keys;
        let blooms = &self.blooms;

        // Deterministic recency stamps: tile i of this phase gets stamp
        // `base + 1 + i`, regardless of which thread touches the cache first.
        self.pool.fork_join_ordered(tiles.len(), |i| {
            let tile_id = tiles[i];
            let stamp = stamp_base + 1 + i as u64;
            let mut metrics = ServerMetrics::default();

            // Bloom-filter tile skipping: a tile with no updated source
            // vertex cannot change any target value.
            if probe_bloom && !blooms[&tile_id].may_contain_any(previously_updated.iter()) {
                metrics.tiles_skipped += 1;
                return Ok(TileOutcome {
                    metrics,
                    message: None,
                    admit: None,
                    tile_memory_bytes: 0,
                });
            }

            // Fetch the tile: edge cache first, local disk on a miss.
            let mut admit = None;
            let tile: Arc<Tile> = match cache.lookup(tile_id, stamp) {
                Some(fetch) => {
                    metrics.cache_hits += 1;
                    metrics.decompress_seconds += fetch.decompress_seconds;
                    fetch.tile
                }
                None => {
                    metrics.cache_misses += 1;
                    let blob = disk
                        .get(&tile_keys[&tile_id])
                        .expect("assigned tile must be on local disk");
                    metrics.disk_read_bytes += blob.len() as u64;
                    metrics.disk_read_ops += 1;
                    let tile = Arc::new(Tile::from_bytes(&blob)?);
                    // Admission is deferred to the post-join pass so
                    // evictions happen in tile order on one thread.
                    admit = Some(Arc::clone(&tile));
                    tile
                }
            };

            // Process the tile against the local replica array.
            let mut tile_updates: Vec<(VertexId, f64)> = Vec::new();
            for target in tile.targets() {
                let in_degree = tile.in_degree(target);
                if in_degree == 0 && !run_everything {
                    continue;
                }
                let mut edges = tile.in_edges(target);
                let accum = program.gather(target, &mut edges, &vertex_ctx);
                let current = vertex_ctx.values[target as usize];
                let new = program.apply(target, accum, current, &vertex_ctx);
                metrics.edges_processed += u64::from(in_degree);
                if program.is_update(current, new) {
                    tile_updates.push((target, new));
                }
            }
            metrics.tiles_processed += 1;
            metrics.messages_produced += tile_updates.len() as u64;

            let message = (!tile_updates.is_empty())
                .then(|| BroadcastMessage::new(tile.target_start, tile.target_end, tile_updates));
            Ok(TileOutcome {
                metrics,
                message,
                admit,
                tile_memory_bytes: tile.memory_bytes(),
            })
        })
    }

    /// The push path: sweep the sorted frontier against each tile's resident
    /// [`PushIndex`], scatter each frontier source's out-edges, fold
    /// contributions per target with the program's order-insensitive
    /// `combine`, then apply in ascending target order.
    ///
    /// Determinism for any thread count mirrors the pull path: tiles are
    /// data-independent (they read the *previous* superstep's replica), each
    /// produces its own metrics/updates, and outcomes reduce in tile order.
    /// Within a tile the accumulation order is fixed — frontier sources
    /// ascending, each source's targets ascending — and `combine` must be
    /// order-insensitive anyway, so the per-target accumulator is
    /// schedule-independent too. The path touches neither the edge cache nor
    /// the disk: the transpose is resident, so a push superstep moves zero
    /// storage bytes and leaves cache recency untouched.
    fn push_outcomes(
        &self,
        program: &dyn GabProgram,
        plan: &ExecutionPlan,
        superstep: u32,
        frontier: &FrontierView<'_>,
    ) -> Vec<Result<TileOutcome>> {
        debug_assert_eq!(
            self.push_indexes.len(),
            self.tiles.len(),
            "push direction resolved without push indexes (plan not push-capable?)"
        );
        let vertex_ctx = VertexContext {
            values: &self.values,
            out_degrees: &plan.out_degrees,
            in_degrees: &plan.in_degrees,
            num_vertices: plan.num_vertices,
            superstep,
        };
        let indexes = &self.push_indexes;
        let active = frontier.vertices;

        self.pool.fork_join_ordered(indexes.len(), |i| {
            let index = &indexes[i];
            let mut metrics = ServerMetrics::default();
            let num_targets = index.num_targets();
            // Per-tile accumulator slots, indexed by target offset. The push
            // loop allocates these per tile (the zero-allocation gate covers
            // the broadcast codec path, not tile compute).
            let mut acc = vec![0.0f64; num_targets];
            let mut touched = vec![false; num_targets];
            let mut any_source = false;

            // Two-pointer sweep: both the frontier (sorted by the barrier
            // merge) and the index's sources are ascending.
            let (mut fi, mut si) = (0usize, 0usize);
            while fi < active.len() && si < index.sources.len() {
                match active[fi].cmp(&index.sources[si]) {
                    std::cmp::Ordering::Less => fi += 1,
                    std::cmp::Ordering::Greater => si += 1,
                    std::cmp::Ordering::Equal => {
                        let source = index.sources[si];
                        metrics.edges_processed += index.out_degree(si);
                        let value = vertex_ctx.values[source as usize];
                        let target_start = index.target_start;
                        let mut edges = index.out_edges(si);
                        program.scatter(source, value, &mut edges, &mut |target, contribution| {
                            let slot = (target - target_start) as usize;
                            if touched[slot] {
                                acc[slot] = program.combine(acc[slot], contribution);
                            } else {
                                acc[slot] = contribution;
                                touched[slot] = true;
                            }
                        });
                        any_source = true;
                        fi += 1;
                        si += 1;
                    }
                }
            }

            // No frontier source reaches this tile: the exact-skip analogue
            // of the pull path's Bloom skip (and never a false positive).
            if !any_source {
                metrics.tiles_skipped += 1;
                return Ok(TileOutcome {
                    metrics,
                    message: None,
                    admit: None,
                    tile_memory_bytes: 0,
                });
            }

            // Apply in ascending target order — the same order the pull loop
            // walks targets, so updates (and therefore wire bytes) line up.
            let mut tile_updates: Vec<(VertexId, f64)> = Vec::new();
            for slot in 0..num_targets {
                if !touched[slot] {
                    continue;
                }
                let target = index.target_start + slot as VertexId;
                let current = vertex_ctx.values[target as usize];
                let new = program.apply(target, acc[slot], current, &vertex_ctx);
                if program.is_update(current, new) {
                    tile_updates.push((target, new));
                }
            }
            metrics.tiles_processed += 1;
            metrics.messages_produced += tile_updates.len() as u64;

            let message = (!tile_updates.is_empty())
                .then(|| BroadcastMessage::new(index.target_start, index.target_end, tile_updates));
            Ok(TileOutcome {
                metrics,
                message,
                admit: None,
                // Accumulator scratch: 8 bytes + 1 flag per target slot.
                tile_memory_bytes: num_targets as u64 * 9,
            })
        })
    }

    /// The barrier's apply half: fold `updates` (pre-sorted by vertex id) into
    /// this server's replica.
    pub fn apply_updates(&mut self, updates: &[(VertexId, f64)]) {
        for &(v, value) in updates {
            self.values[v as usize] = value;
        }
    }
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("id", &self.id)
            .field("tiles", &self.tiles.len())
            .field("values", &self.values.len())
            .finish()
    }
}

/// Deterministically merge per-tile update lists into the barrier's apply
/// order: sorted by vertex id. Tiles partition the target-vertex space, so
/// each vertex appears at most once; the dedup is a safety net that keeps the
/// first occurrence if an engine ever violates that.
pub fn merge_updates(mut all_updates: Vec<(VertexId, f64)>) -> Vec<(VertexId, f64)> {
    merge_updates_in_place(&mut all_updates);
    all_updates
}

/// [`merge_updates`] without consuming the buffer, so the superstep loop can
/// clear-and-reuse one update vector across supersteps instead of allocating
/// a fresh one per superstep.
pub fn merge_updates_in_place(all_updates: &mut Vec<(VertexId, f64)>) {
    all_updates.sort_unstable_by_key(|&(v, _)| v);
    all_updates.dedup_by_key(|&mut (v, _)| v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::PageRank;
    use graphh_cluster::ClusterConfig;
    use graphh_graph::generators::{GraphGenerator, RmatGenerator};
    use graphh_partition::{Spe, SpeConfig};

    #[test]
    fn merge_updates_sorts_and_dedups() {
        let merged = merge_updates(vec![(5, 1.0), (1, 2.0), (5, 3.0), (0, 4.0)]);
        assert_eq!(merged, vec![(0, 4.0), (1, 2.0), (5, 1.0)]);
    }

    #[test]
    fn plan_rejects_empty_graph() {
        let g =
            graphh_graph::Graph::from_edges(0, graphh_graph::EdgeList::new_unweighted()).unwrap();
        let p = Spe::partition(&g, &SpeConfig::new("x", 1)).unwrap();
        let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1));
        assert!(ExecutionPlan::prepare(&cfg, &p, &PageRank::new(1)).is_err());
    }

    #[test]
    fn plan_resolves_tile_threads_from_knob_then_machine_workers() {
        let g = RmatGenerator::new(6, 4).generate(1);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 4)).unwrap();
        // Default: the machine's worker count (the paper's T).
        let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1).with_workers(3));
        let plan = ExecutionPlan::prepare(&cfg, &p, &PageRank::new(1)).unwrap();
        assert_eq!(plan.threads_per_server, 3);
        // Explicit knob wins over the machine spec.
        let pinned = cfg.clone().with_threads_per_server(2);
        assert_eq!(
            ExecutionPlan::prepare(&pinned, &p, &PageRank::new(1))
                .unwrap()
                .threads_per_server,
            2
        );
        // 0 is a config bug and surfaces as a clear error, not a clamp.
        let zero = cfg.with_threads_per_server(0);
        let err = ExecutionPlan::prepare(&zero, &p, &PageRank::new(1)).unwrap_err();
        assert!(err.to_string().contains("threads_per_server"), "{err}");
    }

    #[test]
    fn plan_rejects_zero_server_cluster_without_panicking() {
        let g = RmatGenerator::new(6, 4).generate(1);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 4)).unwrap();
        let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1));
        cfg.cluster.num_servers = 0; // bypasses the constructor assert on purpose
        let err = ExecutionPlan::prepare(&cfg, &p, &PageRank::new(1)).unwrap_err();
        assert!(err.to_string().contains("num_servers"), "{err}");
    }

    #[test]
    fn direction_decision_is_a_pure_function_of_the_replicated_frontier() {
        use crate::algorithms::{DirectionOptimizingBfs, Sssp};

        let g = RmatGenerator::new(7, 4).generate(9);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 5)).unwrap();
        let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(2));
        let dopt = DirectionOptimizingBfs::with_thresholds(0, 2, 2);
        let plan = ExecutionPlan::prepare(&cfg, &p, &dopt).unwrap();
        assert!(plan.push_capable);

        // Same frontier → same stats → same decision, on every call and on an
        // independently prepared plan (what a second process would compute).
        let sparse: Vec<VertexId> = vec![0, 3];
        let dense: Vec<VertexId> = (0..plan.num_vertices as u32).collect();
        let plan2 = ExecutionPlan::prepare(&cfg, &p, &dopt).unwrap();
        for frontier in [&sparse, &dense] {
            let a = plan.frontier_view(&dopt, frontier);
            let b = plan2.frontier_view(&dopt, frontier);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.direction, b.direction);
            assert_eq!(a.direction, plan.frontier_view(&dopt, frontier).direction);
        }
        assert_eq!(
            plan.frontier_view(&dopt, &sparse).direction,
            Direction::Push
        );
        assert_eq!(plan.frontier_view(&dopt, &dense).direction, Direction::Pull);

        // Force modes override the hook; a pull-only plan clamps push away.
        let force_pull = cfg.clone().with_direction_mode(DirectionMode::ForcePull);
        let plan_pull = ExecutionPlan::prepare(&force_pull, &p, &dopt).unwrap();
        assert!(!plan_pull.push_capable);
        assert_eq!(
            plan_pull.frontier_view(&dopt, &sparse).direction,
            Direction::Pull
        );
        let force_push = cfg.clone().with_direction_mode(DirectionMode::ForcePush);
        let plan_push = ExecutionPlan::prepare(&force_push, &p, &dopt).unwrap();
        assert_eq!(
            plan_push.frontier_view(&dopt, &dense).direction,
            Direction::Push
        );

        // A push-capable program with the default pull-only hook stays pull in
        // Auto mode: auto runs are byte-identical to the pre-direction engine.
        let sssp = Sssp::new(0);
        let plan_sssp = ExecutionPlan::prepare(&cfg, &p, &sssp).unwrap();
        assert_eq!(
            plan_sssp.frontier_view(&sssp, &sparse).direction,
            Direction::Pull
        );

        // Force-push on a genuinely pull-only program is a plan-time error.
        let err = ExecutionPlan::prepare(&force_push, &p, &PageRank::new(1)).unwrap_err();
        assert!(err.to_string().contains("pull-only"), "{err}");
    }

    #[test]
    fn frontier_stats_sum_out_edges_over_the_frontier() {
        let g = RmatGenerator::new(6, 4).generate(2);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 3)).unwrap();
        let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1));
        let plan = ExecutionPlan::prepare(&cfg, &p, &PageRank::new(1)).unwrap();
        let frontier: Vec<VertexId> = vec![1, 4, 7];
        let stats = plan.frontier_stats(&frontier);
        assert_eq!(stats.frontier_size, 3);
        assert_eq!(
            stats.frontier_out_edges,
            frontier
                .iter()
                .map(|&v| u64::from(plan.out_degrees[v as usize]))
                .sum::<u64>()
        );
        assert_eq!(stats.num_vertices, plan.num_vertices);
        assert_eq!(stats.total_out_edges, plan.total_out_edges);
        let empty = plan.frontier_stats(&[]);
        assert_eq!((empty.frontier_size, empty.frontier_out_edges), (0, 0));
    }

    #[test]
    fn server_state_stages_assigned_tiles() {
        let g = RmatGenerator::new(7, 4).generate(3);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 6)).unwrap();
        let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(3));
        let plan = ExecutionPlan::prepare(&cfg, &p, &PageRank::new(1)).unwrap();
        let total_tiles: usize = (0..3)
            .map(|sid| ServerState::build(&cfg, &plan, &p, sid).tiles.len())
            .sum();
        assert_eq!(total_tiles as u32, p.num_tiles());
        let s0 = ServerState::build(&cfg, &plan, &p, 0);
        assert_eq!(s0.values.len() as u64, plan.num_vertices);
        assert!(s0.peak_memory() > 0);
    }
}
