//! The reference executor: every simulated server runs on the calling thread.
//!
//! This is the engine loop the rest of the workspace is differentially tested
//! against — `graphh-runtime`'s threaded executor must produce bit-identical
//! values. Traffic is still pushed through the real wire path
//! ([`graphh_cluster::MessageCodec`]), so Figure 8 numbers are measured here
//! exactly as they are on the threaded channels.

use super::{merge_updates_in_place, ExecutionPlan, Executor, ServerState};
use crate::engine::{GraphHConfig, RunResult};
use crate::gab::{Direction, GabProgram};
use crate::Result;
use graphh_cluster::{ClusterMetrics, ServerMetrics, SuperstepReport};
use graphh_graph::ids::VertexId;
use graphh_obs::{global_counters, TraceConfig};
use graphh_partition::PartitionedGraph;
use std::time::Instant;

/// Runs all simulated servers on one thread, in server-id order.
#[derive(Debug, Clone, Default)]
pub struct SequentialExecutor {
    trace: TraceConfig,
}

impl SequentialExecutor {
    /// A sequential executor with tracing off.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sequential executor recording phase spans into `trace`.
    ///
    /// All servers run on the calling thread, so every span lands on lane 0
    /// (tagged with its superstep); each server's pool-job spans land on that
    /// server's pool lanes (see `docs/OBSERVABILITY.md`).
    pub fn with_trace(trace: TraceConfig) -> Self {
        Self { trace }
    }
}

impl Executor for SequentialExecutor {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn execute(
        &self,
        config: &GraphHConfig,
        partitioned: &PartitionedGraph,
        program: &dyn GabProgram,
    ) -> Result<RunResult> {
        let started = Instant::now();
        let tracer = &self.trace.tracer;
        let mut rec = tracer.thread(0);
        let load = rec.begin();
        let plan = ExecutionPlan::prepare(config, partitioned, program)?;
        let num_servers = config.cluster.num_servers;
        let mut servers: Vec<ServerState> = (0..num_servers)
            .map(|sid| {
                let server = ServerState::build(config, &plan, partitioned, sid);
                server.set_tracer(tracer.clone(), 100 * (1 + sid));
                server
            })
            .collect();
        rec.end(load, "server-build", "load");

        let mut metrics = ClusterMetrics::default();
        let mut updated_ratio = Vec::new();
        // Vertices updated in the previous superstep (drives Bloom-filter skipping).
        let mut previously_updated: Vec<VertexId> = plan.initial_frontier();
        let mut supersteps_run = 0u32;
        // Cleared and reused every superstep: the broadcast hot path reuses
        // one update buffer and one set of codec scratch buffers for the
        // whole run (zero steady-state allocation on the uncompressed path).
        let mut all_updates: Vec<(VertexId, f64)> = Vec::new();
        let mut enc_scratch: Vec<u8> = Vec::new();
        let mut wire: Vec<u8> = Vec::new();
        let mut dec_scratch: Vec<u8> = Vec::new();
        // Persistent compressor state (LZSS match-finder tables): reused for
        // every compressed message of the run, making the compressed encode
        // path allocation-free too; flushed into `compress.*` at run end.
        let mut comp = graphh_compress::CompressorScratch::new();
        // Direction decision counters, fetched once (the registry lookup
        // locks; the hot-loop adds are relaxed atomics).
        let counters = global_counters();
        let dir_pull = counters.counter("exec.direction.pull");
        let dir_push = counters.counter("exec.direction.push");

        for superstep in 0..plan.max_supersteps {
            let mut report = SuperstepReport::new(superstep, num_servers);
            all_updates.clear();
            // One frontier view per superstep: stats + direction, shared by
            // every server's tile phase (and identical to what every
            // threaded / multi-process worker computes from its replica).
            let view = plan.frontier_view(program, &previously_updated);
            match view.direction {
                Direction::Push => dir_push.add(1),
                _ => dir_pull.add(1),
            }

            for (sid, server) in servers.iter_mut().enumerate() {
                let compute = rec.begin();
                let phase = server.run_tile_phase(
                    program,
                    &plan,
                    superstep,
                    &view,
                    config.use_bloom_filter,
                )?;
                rec.end_superstep_dir(
                    compute,
                    "tile-compute",
                    "superstep",
                    superstep,
                    view.direction.as_str(),
                );
                let mut server_metrics = phase.metrics;
                // What every *other* server receives from this one.
                let mut received = ServerMetrics::default();
                let publish = rec.begin();
                for message in &phase.messages {
                    plan.message_codec.encode_into_with(
                        message,
                        &mut server_metrics,
                        &mut enc_scratch,
                        &mut wire,
                        &mut comp,
                    );
                    let fanout = u64::from(num_servers - 1);
                    server_metrics.network_sent_bytes += wire.len() as u64 * fanout;
                    server_metrics.network_messages += fanout;
                    received.network_received_bytes += wire.len() as u64;
                    received.decompress_seconds += plan.message_codec.codec_seconds(wire.len());
                    // Decode once, streaming straight into the shared update
                    // buffer: every receiver sees the same payload (their
                    // decompression time was charged above).
                    let mut scratch = ServerMetrics::default();
                    plan.message_codec
                        .decode_each(&wire, &mut scratch, &mut dec_scratch, |v, val| {
                            all_updates.push((v, val));
                        })
                        .expect("we just encoded this");
                }
                rec.end_superstep(publish, "encode-publish", "superstep", superstep);
                report.servers[sid] = server_metrics;
                for (other, slot) in report.servers.iter_mut().enumerate() {
                    if other != sid {
                        slot.network_received_bytes += received.network_received_bytes;
                        slot.decompress_seconds += received.decompress_seconds;
                    }
                }
            }

            // BSP barrier: apply all broadcast updates to every replica.
            let apply = rec.begin();
            merge_updates_in_place(&mut all_updates);
            for server in &mut servers {
                server.apply_updates(&all_updates);
            }
            rec.end_superstep(apply, "apply", "superstep", superstep);
            for (sid, server) in servers.iter().enumerate() {
                report.servers[sid].vertices_updated = all_updates.len() as u64;
                report.servers[sid].peak_memory_bytes = server.peak_memory();
            }
            report.total_vertices_updated = all_updates.len() as u64;
            updated_ratio.push(all_updates.len() as f64 / plan.num_vertices as f64);
            previously_updated.clear();
            previously_updated.extend(all_updates.iter().map(|&(v, _)| v));

            let report = plan.cost_model.finalize(report);
            metrics.push(report);
            supersteps_run = superstep + 1;

            if previously_updated.is_empty() {
                break;
            }
        }

        for server in &servers {
            server.publish_observability();
        }
        comp.publish_observability();
        let per_server_peak_memory = servers.iter().map(ServerState::peak_memory).collect();
        let cache_codec = servers
            .first()
            .map(ServerState::cache_codec)
            .unwrap_or(graphh_compress::Codec::Raw);
        let values = servers
            .into_iter()
            .next()
            .map(|s| s.values)
            .unwrap_or_default();

        Ok(RunResult {
            values,
            metrics,
            supersteps_run,
            cache_codec,
            per_server_peak_memory,
            updated_ratio_per_superstep: updated_ratio,
            executor: self.name(),
            wall_clock_seconds: started.elapsed().as_secs_f64(),
        })
    }
}
