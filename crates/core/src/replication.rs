//! Vertex replication policies and the GraphH memory model (paper §IV-A).
//!
//! GraphH replicates every vertex on every server (the **All-in-All** policy): each
//! server holds `|V|` vertex states plus a `|V|`-slot message array in dense arrays,
//! which avoids any id → slot indexing. The alternative **On-Demand** policy stores
//! only the vertices that actually appear in a server's tiles, at the cost of a
//! 4-byte index per entry. Equations (2)–(5) of the paper give the expected memory
//! of both; [`MemoryModel`] evaluates them so Figure 6a can be regenerated, and the
//! engine's accounting uses the same constants for Figure 6b.

use graphh_cluster::ClusterConfig;
use graphh_graph::GraphStats;
use serde::{Deserialize, Serialize};

/// Which vertices a server keeps in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationPolicy {
    /// Every vertex on every server (dense arrays, no index).
    AllInAll,
    /// Only vertices appearing in the server's tiles (indexed entries).
    OnDemand,
}

/// Per-vertex byte sizes used by the paper's arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VertexSizes {
    /// Bytes of mutable vertex state per vertex (value + message slot; 8 + 8 for
    /// PageRank's rank and incoming message, both doubles).
    pub state_and_message: u64,
    /// Bytes of static per-vertex data (e.g. the out-degree integer for PageRank).
    pub static_data: u64,
    /// Extra index bytes per vertex under the On-Demand policy (one unsigned int).
    pub od_index: u64,
}

impl VertexSizes {
    /// PageRank: 8-byte rank + 8-byte message + 4-byte out-degree, 4-byte OD index —
    /// i.e. the paper's `Size(Vertex, Msg) = 20` and `Size(ID, Vertex, Msg) = 24`.
    pub fn pagerank() -> Self {
        Self {
            state_and_message: 16,
            static_data: 4,
            od_index: 4,
        }
    }

    /// SSSP: 8-byte distance + 8-byte message, no static array.
    pub fn sssp() -> Self {
        Self {
            state_and_message: 16,
            static_data: 0,
            od_index: 4,
        }
    }

    /// Bytes per vertex under the All-in-All policy.
    pub fn aa_bytes(&self) -> u64 {
        self.state_and_message + self.static_data
    }

    /// Bytes per vertex under the On-Demand policy.
    pub fn od_bytes(&self) -> u64 {
        self.state_and_message + self.static_data + self.od_index
    }
}

/// Evaluates the expected per-server memory of both policies for a graph / cluster.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// Graph statistics (only `num_vertices`, `num_edges`, `avg_degree` are used).
    pub num_vertices: u64,
    /// Average degree of the graph.
    pub avg_degree: f64,
    /// Per-vertex sizes of the running program.
    pub sizes: VertexSizes,
}

impl MemoryModel {
    /// Model for a graph described by `stats`, running a program with `sizes`.
    pub fn new(stats: &GraphStats, sizes: VertexSizes) -> Self {
        Self {
            num_vertices: stats.num_vertices,
            avg_degree: stats.avg_degree,
            sizes,
        }
    }

    /// Expected number of distinct vertices a server holds under On-Demand
    /// (equation (5)): `(1 − e^(−d_avg/N))·|V| + |V|/N`.
    pub fn expected_od_vertices(&self, num_servers: u32) -> f64 {
        let n = f64::from(num_servers.max(1));
        let v = self.num_vertices as f64;
        (1.0 - (-self.avg_degree / n).exp()) * v + v / n
    }

    /// Expected per-server bytes for vertex state + messages under All-in-All
    /// (equation (2), excluding the per-worker tile buffers).
    pub fn aa_vertex_bytes(&self) -> u64 {
        self.sizes.aa_bytes() * self.num_vertices
    }

    /// Expected per-server bytes under On-Demand (equation (3), same exclusion).
    pub fn od_vertex_bytes(&self, num_servers: u32) -> u64 {
        (self.sizes.od_bytes() as f64 * self.expected_od_vertices(num_servers)) as u64
    }

    /// Full equation (2)/(3) including the `Size(Tile) × T` working buffers.
    pub fn per_server_bytes(
        &self,
        policy: ReplicationPolicy,
        cluster: &ClusterConfig,
        tile_bytes: u64,
    ) -> u64 {
        let tile_term = tile_bytes * u64::from(cluster.machine.workers);
        match policy {
            ReplicationPolicy::AllInAll => self.aa_vertex_bytes() + tile_term,
            ReplicationPolicy::OnDemand => self.od_vertex_bytes(cluster.num_servers) + tile_term,
        }
    }

    /// The cluster size at which On-Demand starts using less memory than All-in-All
    /// (Figure 6a's crossover), or `None` if it never does within `max_servers`.
    pub fn od_crossover(&self, max_servers: u32) -> Option<u32> {
        (1..=max_servers).find(|&n| self.od_vertex_bytes(n) < self.aa_vertex_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphh_graph::datasets::Dataset;

    fn model(dataset: Dataset) -> MemoryModel {
        MemoryModel::new(&dataset.paper_stats(), VertexSizes::pagerank())
    }

    #[test]
    fn vertex_sizes_match_paper_constants() {
        let pr = VertexSizes::pagerank();
        assert_eq!(pr.aa_bytes(), 20);
        assert_eq!(pr.od_bytes(), 24);
        assert_eq!(VertexSizes::sssp().aa_bytes(), 16);
    }

    #[test]
    fn aa_beats_od_in_small_clusters_for_all_datasets() {
        // Figure 6a: for every dataset the AA policy uses less memory than OD when the
        // cluster has fewer than ~16 servers.
        for d in Dataset::ALL {
            let m = model(d);
            for n in [1u32, 4, 9, 16] {
                assert!(
                    m.aa_vertex_bytes() <= m.od_vertex_bytes(n),
                    "{} at {n} servers",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn od_eventually_wins_for_eu2015() {
        // Figure 6a: with more than ~48 servers OD uses less memory than AA on EU-2015.
        let m = model(Dataset::Eu2015);
        let crossover = m.od_crossover(128).expect("OD should win eventually");
        assert!(
            (32..=96).contains(&crossover),
            "crossover at {crossover} servers"
        );
    }

    #[test]
    fn eu2015_aa_memory_matches_paper_order_of_magnitude() {
        // The paper reports ~21 GB for rank values, out-degrees and messages of
        // EU-2015 on one node; eq. (2) with 20 B/vertex gives 22 GB.
        let m = model(Dataset::Eu2015);
        let gb = m.aa_vertex_bytes() as f64 / 1e9;
        assert!((15.0..30.0).contains(&gb), "AA bytes = {gb} GB");
    }

    #[test]
    fn expected_od_vertices_bounded_by_v_plus_share() {
        let m = model(Dataset::Uk2007);
        for n in [1u32, 3, 9, 27] {
            let expected = m.expected_od_vertices(n);
            let v = m.num_vertices as f64;
            assert!(expected <= v + v / f64::from(n) + 1.0);
            assert!(expected > 0.0);
        }
    }

    #[test]
    fn per_server_bytes_includes_tile_buffers() {
        let m = model(Dataset::Twitter2010);
        let cluster = ClusterConfig::paper_testbed(9);
        let without = m.per_server_bytes(ReplicationPolicy::AllInAll, &cluster, 0);
        let with = m.per_server_bytes(ReplicationPolicy::AllInAll, &cluster, 100 * 1024 * 1024);
        assert_eq!(without, m.aa_vertex_bytes());
        assert_eq!(
            with - without,
            100 * 1024 * 1024 * u64::from(cluster.machine.workers)
        );
        let od = m.per_server_bytes(ReplicationPolicy::OnDemand, &cluster, 0);
        assert!(od >= without);
    }
}
