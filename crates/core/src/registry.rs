//! The program registry: every kernel the workspace ships, addressable by name.
//!
//! Before this module, each front-end (the `graphh-node` binary, the examples,
//! the bench harness, the determinism suites) kept its own `match` over program
//! names — and they drifted: kernels existed that no CLI could reach. The
//! registry is the single list: a [`ProgramSpec`] per kernel with its name, a
//! one-line summary, how its input graph must be prepared
//! ([`ProgramSpec::symmetrize_input`]), the options it accepts, and a builder
//! from parsed options to a boxed [`GabProgram`].
//!
//! Options travel as `key=value` strings (the CLI's `--program-arg` values),
//! parsed into a [`ProgramOptions`] bag; [`ProgramSpec::build`] rejects keys
//! the program does not accept, so a typo fails loudly instead of being
//! silently ignored. Defaults that depend on the graph (the BFS/SSSP source)
//! come from the [`ProgramContext`], which every process of a cluster derives
//! from the same deterministic workload — so defaulted options agree across
//! processes too.
//!
//! ```
//! use graphh_core::registry::{find_program, ProgramContext, ProgramOptions};
//!
//! let out_degrees = vec![1, 3, 2];
//! let ctx = ProgramContext::new(&out_degrees);
//! let spec = find_program("bfs-dopt").expect("registered");
//! let opts = ProgramOptions::parse(&["alpha=4", "beta=8"]).unwrap();
//! let program = spec.build(&ctx, &opts).unwrap();
//! assert_eq!(program.name(), "bfs-dopt");
//! ```

use crate::algorithms::{
    Bfs, DegreeCentrality, DirectionOptimizingBfs, LabelPropagation, PageRank, Sssp, Wcc,
};
use crate::exec::{DIRECTION_ALPHA, DIRECTION_BETA};
use crate::gab::GabProgram;
use graphh_graph::ids::VertexId;

/// Graph-derived facts a program builder may need for its defaults.
///
/// Deterministic: two processes that built the same graph derive the same
/// context, so defaulted options (e.g. the BFS source) agree cluster-wide.
#[derive(Debug, Clone, Copy)]
pub struct ProgramContext<'a> {
    /// Per-vertex out-degrees, indexed by vertex id.
    pub out_degrees: &'a [u32],
}

impl<'a> ProgramContext<'a> {
    /// A context over `out_degrees` (index = vertex id).
    pub fn new(out_degrees: &'a [u32]) -> Self {
        Self { out_degrees }
    }

    /// Number of vertices in the graph.
    pub fn num_vertices(&self) -> u64 {
        self.out_degrees.len() as u64
    }

    /// The default traversal source: the maximum-out-degree vertex.
    ///
    /// Matches the selection the multi-process workloads have always used
    /// (`max_by_key`, which keeps the *last* maximum on ties), so registry
    /// defaults are bit-compatible with the pre-registry `sssp` arm.
    pub fn default_source(&self) -> VertexId {
        (0..self.out_degrees.len() as u32)
            .max_by_key(|&v| self.out_degrees[v as usize])
            .unwrap_or(0)
    }
}

/// A parsed bag of `key=value` program options.
#[derive(Debug, Clone, Default)]
pub struct ProgramOptions {
    entries: Vec<(String, String)>,
}

impl ProgramOptions {
    /// An empty option bag (every option takes its default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse `key=value` strings (e.g. the repeated `--program-arg` CLI values).
    pub fn parse<S: AsRef<str>>(specs: &[S]) -> Result<Self, String> {
        let mut opts = Self::new();
        for spec in specs {
            let spec = spec.as_ref();
            let (key, value) = spec
                .split_once('=')
                .ok_or_else(|| format!("program option {spec:?} is not of the form key=value"))?;
            if key.is_empty() {
                return Err(format!("program option {spec:?} has an empty key"));
            }
            opts.set(key, value);
        }
        Ok(opts)
    }

    /// Set an option (the last write for a key wins).
    pub fn set(&mut self, key: &str, value: &str) {
        self.entries.push((key.to_string(), value.to_string()));
    }

    /// The raw value of `key`, if set.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every key that was set (with duplicates collapsed).
    pub fn keys(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.entries.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    fn parsed<T>(&self, key: &str) -> Result<Option<T>, String>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| format!("bad value for program option {key}={raw}: {e}")),
        }
    }
}

/// A registered kernel's builder: context (degrees for defaults) + parsed
/// options in, boxed program or a diagnostic out.
pub type ProgramBuilder =
    fn(&ProgramContext<'_>, &ProgramOptions) -> Result<Box<dyn GabProgram>, String>;

/// One registered kernel: its name, input contract, accepted options, builder.
pub struct ProgramSpec {
    /// Registry name, the value of `--program`.
    pub name: &'static str,
    /// One-line summary for usage/docs output.
    pub summary: &'static str,
    /// Whether the input graph should be symmetrised (both edge directions
    /// present) before partitioning — true for the component/community
    /// kernels, whose semantics are undirected.
    pub symmetrize_input: bool,
    /// Accepted option keys as `(key, doc)` pairs.
    pub options: &'static [(&'static str, &'static str)],
    build: ProgramBuilder,
}

impl std::fmt::Debug for ProgramSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramSpec")
            .field("name", &self.name)
            .field("symmetrize_input", &self.symmetrize_input)
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl ProgramSpec {
    /// Whether this program accepts the option `key`.
    pub fn accepts(&self, key: &str) -> bool {
        self.options.iter().any(|&(k, _)| k == key)
    }

    /// Build the program, rejecting options the program does not accept.
    pub fn build(
        &self,
        ctx: &ProgramContext<'_>,
        opts: &ProgramOptions,
    ) -> Result<Box<dyn GabProgram>, String> {
        for key in opts.keys() {
            if !self.accepts(key) {
                let accepted: Vec<&str> = self.options.iter().map(|&(k, _)| k).collect();
                return Err(format!(
                    "program {} does not accept option {key:?} (accepted: {})",
                    self.name,
                    if accepted.is_empty() {
                        "none".to_string()
                    } else {
                        accepted.join(", ")
                    }
                ));
            }
        }
        (self.build)(ctx, opts)
    }
}

/// Every registered program. Front-ends iterate this for usage text and
/// coverage sweeps; resolve one by name with [`find_program`].
pub const PROGRAMS: &[ProgramSpec] = &[
    ProgramSpec {
        name: "pagerank",
        summary: "PageRank with damping 0.85 (paper Algorithm 6)",
        symmetrize_input: false,
        options: &[
            ("supersteps", "superstep cap (default 10)"),
            (
                "tolerance",
                "rank delta below which a vertex is unchanged (default 0)",
            ),
        ],
        build: |_ctx, opts| {
            let supersteps = opts.parsed("supersteps")?.unwrap_or(10);
            let tolerance = opts.parsed("tolerance")?.unwrap_or(0.0);
            Ok(Box::new(PageRank::with_tolerance(supersteps, tolerance)))
        },
    },
    ProgramSpec {
        name: "sssp",
        summary: "single-source shortest paths (paper Algorithm 7)",
        symmetrize_input: false,
        options: &[(
            "source",
            "source vertex id (default: max-out-degree vertex)",
        )],
        build: |ctx, opts| {
            let source = opts
                .parsed("source")?
                .unwrap_or_else(|| ctx.default_source());
            Ok(Box::new(Sssp::new(source)))
        },
    },
    ProgramSpec {
        name: "wcc",
        summary: "weakly connected components via min-label propagation",
        symmetrize_input: true,
        options: &[],
        build: |_ctx, _opts| Ok(Box::new(Wcc::new())),
    },
    ProgramSpec {
        name: "bfs",
        summary: "breadth-first search levels (pull-only)",
        symmetrize_input: false,
        options: &[(
            "source",
            "source vertex id (default: max-out-degree vertex)",
        )],
        build: |ctx, opts| {
            let source = opts
                .parsed("source")?
                .unwrap_or_else(|| ctx.default_source());
            Ok(Box::new(Bfs::new(source)))
        },
    },
    ProgramSpec {
        name: "bfs-dopt",
        summary: "direction-optimizing BFS (Beamer alpha/beta push/pull switching)",
        symmetrize_input: false,
        options: &[
            (
                "source",
                "source vertex id (default: max-out-degree vertex)",
            ),
            ("alpha", "push/pull edge threshold (default 14)"),
            ("beta", "push/pull frontier-size threshold (default 24)"),
        ],
        build: |ctx, opts| {
            let source = opts
                .parsed("source")?
                .unwrap_or_else(|| ctx.default_source());
            let alpha = opts.parsed("alpha")?.unwrap_or(DIRECTION_ALPHA);
            let beta = opts.parsed("beta")?.unwrap_or(DIRECTION_BETA);
            Ok(Box::new(DirectionOptimizingBfs::with_thresholds(
                source, alpha, beta,
            )))
        },
    },
    ProgramSpec {
        name: "labelprop",
        summary: "label propagation with deterministic min-tie-break",
        symmetrize_input: true,
        options: &[("rounds", "propagation round cap (default 20)")],
        build: |_ctx, opts| {
            let rounds = opts.parsed("rounds")?.unwrap_or(20);
            Ok(Box::new(LabelPropagation::with_rounds(rounds)))
        },
    },
    ProgramSpec {
        name: "degree-centrality",
        summary: "weighted in-degree per vertex (one superstep)",
        symmetrize_input: false,
        options: &[],
        build: |_ctx, _opts| Ok(Box::new(DegreeCentrality::new())),
    },
];

/// Look up a program by registry name.
pub fn find_program(name: &str) -> Option<&'static ProgramSpec> {
    PROGRAMS.iter().find(|spec| spec.name == name)
}

/// All registered program names, comma-joined — for usage/error text.
pub fn program_names() -> String {
    PROGRAMS
        .iter()
        .map(|s| s.name)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_over(degrees: &[u32]) -> ProgramContext<'_> {
        ProgramContext::new(degrees)
    }

    fn err_of(result: Result<Box<dyn GabProgram>, String>) -> String {
        match result {
            Err(e) => e,
            Ok(p) => panic!("expected an error, built {}", p.name()),
        }
    }

    #[test]
    fn every_spec_builds_with_defaults_and_matches_its_name() {
        let degrees = vec![2, 5, 5, 1];
        let ctx = ctx_over(&degrees);
        for spec in PROGRAMS {
            let program = spec.build(&ctx, &ProgramOptions::new()).expect(spec.name);
            assert_eq!(program.name(), spec.name);
            assert_eq!(find_program(spec.name).unwrap().name, spec.name);
        }
        assert!(find_program("frobnicate").is_none());
        assert!(program_names().contains("bfs-dopt"));
    }

    #[test]
    fn default_source_matches_the_legacy_max_by_key_selection() {
        let degrees = vec![2, 5, 5, 1];
        // Rust's max_by_key keeps the LAST maximum: vertex 2, not 1. The
        // registry must reproduce that exactly for bit-compat with the
        // pre-registry sssp workload arm.
        assert_eq!(ctx_over(&degrees).default_source(), 2);
        assert_eq!(ctx_over(&[]).default_source(), 0);
    }

    #[test]
    fn options_parse_validate_and_reject_unknown_keys() {
        let degrees = vec![1, 2];
        let ctx = ctx_over(&degrees);
        let opts = ProgramOptions::parse(&["source=1", "alpha=3", "beta=7"]).unwrap();
        let spec = find_program("bfs-dopt").unwrap();
        assert!(spec.build(&ctx, &opts).is_ok());

        let err = err_of(find_program("wcc").unwrap().build(&ctx, &opts));
        assert!(err.contains("does not accept"), "{err}");

        assert!(ProgramOptions::parse(&["no-equals"]).is_err());
        assert!(ProgramOptions::parse(&["=empty-key"]).is_err());
        let err = err_of(find_program("sssp").unwrap().build(
            &ctx,
            &ProgramOptions::parse(&["source=not-a-number"]).unwrap(),
        ));
        assert!(err.contains("bad value"), "{err}");
    }

    #[test]
    fn last_write_wins_for_duplicate_option_keys() {
        let opts = ProgramOptions::parse(&["source=1", "source=9"]).unwrap();
        assert_eq!(opts.get("source"), Some("9"));
        assert_eq!(opts.keys(), vec!["source"]);
    }

    #[test]
    fn symmetrize_flags_cover_the_undirected_kernels() {
        for spec in PROGRAMS {
            let expect = matches!(spec.name, "wcc" | "labelprop");
            assert_eq!(spec.symmetrize_input, expect, "{}", spec.name);
        }
    }
}
