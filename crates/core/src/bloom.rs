//! Bloom filters over a tile's source vertices (paper §III-C.4).
//!
//! Many algorithms update only a few vertices per superstep. A tile whose source
//! vertices were all unchanged cannot produce any new target value, so loading it is
//! wasted work. GraphH keeps a small Bloom filter of every tile's source-vertex set
//! in memory and skips tiles whose filter matches none of the previously updated
//! vertices. Bloom filters never produce false negatives, so skipping is always safe.

use graphh_graph::ids::VertexId;

/// A fixed-size Bloom filter for vertex ids.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
    items: u64,
}

impl BloomFilter {
    /// A filter sized for `expected_items` with roughly the given false-positive rate.
    pub fn with_rate(expected_items: usize, false_positive_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = false_positive_rate.clamp(1e-6, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let num_bits = ((-n * p.ln()) / (ln2 * ln2)).ceil().max(64.0) as u64;
        let num_hashes = ((num_bits as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        Self {
            bits: vec![0u64; num_bits.div_ceil(64) as usize],
            num_bits,
            num_hashes,
            items: 0,
        }
    }

    /// A filter with the paper-appropriate default rate (1%).
    pub fn new(expected_items: usize) -> Self {
        Self::with_rate(expected_items, 0.01)
    }

    /// Build a filter containing all of `ids`.
    pub fn from_ids(ids: impl IntoIterator<Item = VertexId>, expected_items: usize) -> Self {
        let mut filter = Self::new(expected_items);
        for id in ids {
            filter.insert(id);
        }
        filter
    }

    fn hash(&self, value: VertexId, i: u32) -> u64 {
        // Double hashing with two independent multiplicative hashes.
        let x = u64::from(value).wrapping_add(1);
        let h1 = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h2 = x.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) | 1;
        h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits
    }

    /// Insert a vertex id.
    pub fn insert(&mut self, value: VertexId) {
        for i in 0..self.num_hashes {
            let bit = self.hash(value, i);
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.items += 1;
    }

    /// Whether the filter might contain `value` (no false negatives).
    pub fn may_contain(&self, value: VertexId) -> bool {
        (0..self.num_hashes).all(|i| {
            let bit = self.hash(value, i);
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Whether any of `values` might be contained.
    pub fn may_contain_any<'a>(&self, values: impl IntoIterator<Item = &'a VertexId>) -> bool {
        values.into_iter().any(|&v| self.may_contain(v))
    }

    /// Number of inserted items (counting duplicates).
    pub fn len(&self) -> u64 {
        self.items
    }

    /// Whether nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Memory used by the bit array, in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.bits.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let ids: Vec<u32> = (0..5000).map(|i| i * 7 + 3).collect();
        let filter = BloomFilter::from_ids(ids.iter().copied(), ids.len());
        for &id in &ids {
            assert!(filter.may_contain(id), "false negative for {id}");
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let ids: Vec<u32> = (0..10_000).collect();
        let filter = BloomFilter::from_ids(ids.iter().copied(), ids.len());
        let false_positives = (100_000u32..200_000)
            .filter(|&v| filter.may_contain(v))
            .count();
        let rate = false_positives as f64 / 100_000.0;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn may_contain_any_matches_membership() {
        let filter = BloomFilter::from_ids([1u32, 2, 3], 3);
        assert!(filter.may_contain_any([&3u32, &999_999]));
        // A set far from the inserted ids is very unlikely to all collide.
        let far: Vec<u32> = (1_000_000..1_000_020).collect();
        let hits = far.iter().filter(|&&v| filter.may_contain(v)).count();
        assert!(hits < 5);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let filter = BloomFilter::new(100);
        assert!(filter.is_empty());
        assert!(!filter.may_contain(42));
        assert!(!filter.may_contain_any([&1u32, &2, &3]));
    }

    #[test]
    fn memory_footprint_scales_with_expected_items() {
        let small = BloomFilter::new(100);
        let large = BloomFilter::new(100_000);
        assert!(large.memory_bytes() > small.memory_bytes());
        assert_eq!(BloomFilter::from_ids([1u32, 1, 1], 3).len(), 3);
    }
}
