//! The MPE: GraphH's out-of-core, tile-at-a-time BSP engine (paper Algorithm 5).

use crate::bloom::BloomFilter;
use crate::gab::{GabProgram, InitContext, VertexContext};
use crate::{EngineError, Result};
use graphh_cache::{CacheMode, EdgeCache, EdgeCacheConfig};
use graphh_cluster::{
    BroadcastChannel, BroadcastMessage, ClusterConfig, ClusterMetrics, CommunicationMode,
    CostModel, MemoryTracker, ServerMetrics, SuperstepReport,
};
use graphh_compress::Codec;
use graphh_graph::ids::{ServerId, TileId, VertexId};
use graphh_partition::{PartitionedGraph, Tile, TileAssignment};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of a GraphH run.
#[derive(Debug, Clone)]
pub struct GraphHConfig {
    /// The simulated cluster.
    pub cluster: ClusterConfig,
    /// Broadcast encoding policy (§IV-C); the paper's default is hybrid.
    pub communication: CommunicationMode,
    /// Broadcast message compressor; the paper's default is snappy.
    pub message_compressor: Option<Codec>,
    /// Edge cache codec policy (§IV-B); the paper's default is automatic selection.
    pub cache_mode: CacheMode,
    /// Edge cache capacity per server in bytes. `None` = whatever memory is left after
    /// the vertex-state and message arrays (the paper's "idle memory").
    pub cache_capacity: Option<u64>,
    /// Skip tiles whose sources were not updated, using per-tile Bloom filters
    /// (§III-C.4).
    pub use_bloom_filter: bool,
    /// Cap on supersteps, overriding the program's own limit when smaller.
    pub max_supersteps: Option<u32>,
}

impl GraphHConfig {
    /// The configuration the paper evaluates: hybrid broadcast, snappy messages,
    /// automatic cache mode, Bloom-filter skipping enabled.
    pub fn paper_default(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            communication: CommunicationMode::default(),
            message_compressor: Some(Codec::Snappy),
            cache_mode: CacheMode::Auto,
            cache_capacity: None,
            use_bloom_filter: true,
            max_supersteps: None,
        }
    }

    /// Disable the edge cache entirely (every tile read hits the disk), used by the
    /// Figure 7 baseline and ablations.
    pub fn without_cache(mut self) -> Self {
        self.cache_capacity = Some(0);
        self
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final vertex values (indexed by vertex id).
    pub values: Vec<f64>,
    /// Per-superstep metrics with simulated times filled in.
    pub metrics: ClusterMetrics,
    /// Number of supersteps executed.
    pub supersteps_run: u32,
    /// The codec the edge cache selected.
    pub cache_codec: Codec,
    /// Accounted peak memory per server in bytes.
    pub per_server_peak_memory: Vec<u64>,
    /// Fraction of vertices updated in each superstep (Figure 8a).
    pub updated_ratio_per_superstep: Vec<f64>,
}

impl RunResult {
    /// Average simulated seconds per superstep, excluding the first (the paper's
    /// reporting convention).
    pub fn avg_superstep_seconds(&self) -> f64 {
        self.metrics.avg_seconds_per_superstep(true)
    }

    /// Total simulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.metrics.total_seconds()
    }
}

/// One simulated server's long-lived state.
struct ServerState {
    id: ServerId,
    /// Tiles assigned to this server, in processing order.
    tiles: Vec<TileId>,
    /// Serialized tiles as stored on the server's local disk.
    disk: HashMap<TileId, Vec<u8>>,
    /// Local replica of every vertex value (All-in-All policy).
    values: Vec<f64>,
    /// Edge cache over idle memory.
    cache: EdgeCache,
    /// Per-tile Bloom filters over source vertices.
    blooms: HashMap<TileId, BloomFilter>,
    /// Memory accounting.
    memory: MemoryTracker,
}

/// The GraphH engine.
#[derive(Debug, Clone)]
pub struct GraphHEngine {
    config: GraphHConfig,
}

impl GraphHEngine {
    /// An engine with the given configuration.
    pub fn new(config: GraphHConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GraphHConfig {
        &self.config
    }

    /// Run `program` over `partitioned` on the configured cluster.
    pub fn run(
        &self,
        partitioned: &PartitionedGraph,
        program: &dyn GabProgram,
    ) -> Result<RunResult> {
        let cluster = self.config.cluster;
        let num_servers = cluster.num_servers;
        let num_vertices = partitioned.num_vertices();
        if num_vertices == 0 {
            return Err(EngineError::BadInput("graph has no vertices".into()));
        }
        if num_vertices > u64::from(u32::MAX) {
            return Err(EngineError::BadInput(
                "stand-in graphs must have fewer than 2^32 vertices".into(),
            ));
        }

        let out_degrees: Arc<Vec<u32>> = Arc::new(partitioned.out_degrees.clone());
        let in_degrees: Arc<Vec<u32>> = Arc::new(partitioned.in_degrees.clone());
        let init_ctx = InitContext {
            num_vertices,
            out_degrees: &out_degrees,
            in_degrees: &in_degrees,
        };
        let initial_values: Vec<f64> = (0..num_vertices as u32)
            .map(|v| program.initial_value(v, &init_ctx))
            .collect();

        let assignment = TileAssignment::round_robin(partitioned.num_tiles(), num_servers);
        let mut servers = self.build_servers(partitioned, &assignment, &initial_values);
        let channel = BroadcastChannel::new(
            num_servers,
            self.config.communication,
            self.config.message_compressor,
        );
        let cost_model = CostModel::new(cluster);

        // Vertex-state + message memory is permanent; register it once per server.
        let vertex_bytes = 8 * num_vertices; // f64 value replica
        let message_bytes = 8 * num_vertices; // dense received-update buffer
        let degree_bytes = 4 * num_vertices * 2; // out- and in-degree arrays
        for server in &mut servers {
            server.memory.set_component("vertex-values", vertex_bytes);
            server.memory.set_component("message-buffer", message_bytes);
            server.memory.set_component("degree-arrays", degree_bytes);
            let bloom_bytes: u64 = server
                .blooms
                .values()
                .map(BloomFilter::memory_bytes)
                .sum();
            server.memory.set_component("bloom-filters", bloom_bytes);
        }

        let max_supersteps = self
            .config
            .max_supersteps
            .unwrap_or(u32::MAX)
            .min(program.max_supersteps());

        let mut metrics = ClusterMetrics::default();
        let mut updated_ratio = Vec::new();
        // Vertices updated in the previous superstep (drives Bloom-filter skipping).
        let mut previously_updated: Vec<VertexId> =
            (0..num_vertices as u32).collect();
        let mut supersteps_run = 0u32;

        for superstep in 0..max_supersteps {
            let mut report = SuperstepReport::new(superstep, num_servers);
            let mut all_updates: Vec<(VertexId, f64)> = Vec::new();

            for sid in 0..num_servers as usize {
                let mut server_metrics = ServerMetrics::default();
                let mut received = ServerMetrics::default();
                let server = &mut servers[sid];
                server.cache.reset_stats();

                let vertex_ctx = VertexContext {
                    values: &server.values,
                    out_degrees: &out_degrees,
                    in_degrees: &in_degrees,
                    num_vertices,
                    superstep,
                };

                for &tile_id in &server.tiles.clone() {
                    // Bloom-filter tile skipping: a tile with no updated source vertex
                    // cannot change any target value.
                    let run_everything =
                        superstep == 0 && program.run_all_vertices_initially();
                    if self.config.use_bloom_filter && !run_everything {
                        let bloom = &server.blooms[&tile_id];
                        if !bloom.may_contain_any(previously_updated.iter()) {
                            server_metrics.tiles_skipped += 1;
                            continue;
                        }
                    }

                    // Fetch the tile: edge cache first, local disk on a miss.
                    let tile = match server.cache.get(tile_id) {
                        Some(tile) => tile,
                        None => {
                            let blob = server
                                .disk
                                .get(&tile_id)
                                .expect("assigned tile must be on local disk");
                            server_metrics.disk_read_bytes += blob.len() as u64;
                            server_metrics.disk_read_ops += 1;
                            let tile = Tile::from_bytes(blob)?;
                            server.cache.insert(tile_id, blob);
                            tile
                        }
                    };

                    // Process the tile against the local replica array.
                    let mut tile_updates: Vec<(VertexId, f64)> = Vec::new();
                    server.memory.with_transient(tile.memory_bytes(), |_| {
                        for target in tile.targets() {
                            let in_degree = tile.in_degree(target);
                            if in_degree == 0 && !run_everything {
                                continue;
                            }
                            let mut edges = tile.in_edges(target);
                            let accum = program.gather(target, &mut edges, &vertex_ctx);
                            let current = vertex_ctx.values[target as usize];
                            let new = program.apply(target, accum, current, &vertex_ctx);
                            server_metrics.edges_processed += u64::from(in_degree);
                            if program.is_update(current, new) {
                                tile_updates.push((target, new));
                            }
                        }
                    });
                    server_metrics.tiles_processed += 1;
                    server_metrics.messages_produced += tile_updates.len() as u64;

                    // Broadcast this tile's updates to the other servers.
                    if !tile_updates.is_empty() {
                        let message = BroadcastMessage::new(
                            tile.target_start,
                            tile.target_end,
                            tile_updates,
                        );
                        let mut receiver_slots =
                            vec![ServerMetrics::default(); (num_servers - 1) as usize];
                        let (updates, _encoding) = channel.broadcast(
                            &message,
                            &mut server_metrics,
                            &mut receiver_slots,
                        );
                        if let Some(first) = receiver_slots.first() {
                            received.merge(first);
                        }
                        all_updates.extend(updates);
                    }
                }

                // Fold cache behaviour into the superstep metrics.
                let cache_stats = server.cache.stats();
                server_metrics.cache_hits += cache_stats.hits;
                server_metrics.cache_misses += cache_stats.misses;
                server_metrics.decompress_seconds += cache_stats.decompress_seconds;
                server_metrics.compress_seconds += cache_stats.compress_seconds;
                server
                    .memory
                    .set_component("edge-cache", cache_stats.used_bytes);
                server_metrics.peak_memory_bytes = server.memory.peak();

                report.servers[sid] = server_metrics;
                // Every *other* server receives what this server's receiver slot saw.
                for (other, slot) in report.servers.iter_mut().enumerate() {
                    if other != sid {
                        slot.network_received_bytes += received.network_received_bytes;
                        slot.decompress_seconds += received.decompress_seconds;
                    }
                }
            }

            // BSP barrier: apply all broadcast updates to every replica.
            all_updates.sort_unstable_by_key(|&(v, _)| v);
            all_updates.dedup_by_key(|&mut (v, _)| v);
            for server in &mut servers {
                for &(v, value) in &all_updates {
                    server.values[v as usize] = value;
                }
            }
            for (sid, server) in servers.iter().enumerate() {
                report.servers[sid].vertices_updated = all_updates.len() as u64;
                report.servers[sid].peak_memory_bytes = server.memory.peak();
            }
            report.total_vertices_updated = all_updates.len() as u64;
            updated_ratio.push(all_updates.len() as f64 / num_vertices as f64);
            previously_updated = all_updates.iter().map(|&(v, _)| v).collect();

            let report = cost_model.finalize(report);
            metrics.push(report);
            supersteps_run = superstep + 1;

            if previously_updated.is_empty() {
                break;
            }
        }

        let per_server_peak_memory = servers.iter().map(|s| s.memory.peak()).collect();
        let cache_codec = servers
            .first()
            .map(|s| s.cache.codec())
            .unwrap_or(Codec::Raw);
        let values = servers
            .into_iter()
            .next()
            .map(|s| s.values)
            .unwrap_or_default();

        Ok(RunResult {
            values,
            metrics,
            supersteps_run,
            cache_codec,
            per_server_peak_memory,
            updated_ratio_per_superstep: updated_ratio,
        })
    }

    /// Build per-server state: stage each server's tiles on its local disk, build the
    /// Bloom filters, size the edge cache from the idle memory.
    fn build_servers(
        &self,
        partitioned: &PartitionedGraph,
        assignment: &TileAssignment,
        initial_values: &[f64],
    ) -> Vec<ServerState> {
        let num_vertices = initial_values.len() as u64;
        let machine = self.config.cluster.machine;
        (0..self.config.cluster.num_servers)
            .map(|sid| {
                let tiles = assignment.tiles_of(sid);
                let mut disk = HashMap::new();
                let mut blooms = HashMap::new();
                let mut total_tile_bytes = 0u64;
                for &tid in &tiles {
                    let tile = &partitioned.tiles[tid as usize];
                    let blob = tile.to_bytes();
                    total_tile_bytes += blob.len() as u64;
                    blooms.insert(
                        tid,
                        BloomFilter::from_ids(
                            tile.sources().iter().copied(),
                            tile.sources().len().max(8),
                        ),
                    );
                    disk.insert(tid, blob);
                }
                // Idle memory = machine memory minus the permanent vertex arrays.
                let permanent = 8 * num_vertices * 2 + 4 * num_vertices * 2;
                let idle = machine.memory_bytes.saturating_sub(permanent);
                let capacity = self.config.cache_capacity.unwrap_or(idle);
                let cache = EdgeCache::new(
                    EdgeCacheConfig {
                        capacity_bytes: capacity,
                        mode: self.config.cache_mode,
                    },
                    total_tile_bytes,
                );
                ServerState {
                    id: sid,
                    tiles,
                    disk,
                    values: initial_values.to_vec(),
                    cache,
                    blooms,
                    memory: MemoryTracker::new(machine.memory_bytes),
                }
            })
            .collect()
    }
}

// `ServerState` is internal; only its id field would otherwise be unused in release
// builds, keep it for debugging/logging symmetry.
impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("id", &self.id)
            .field("tiles", &self.tiles.len())
            .field("values", &self.values.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, DegreeCentrality, PageRank, Sssp, Wcc};
    use crate::reference;
    use graphh_graph::generators::{
        grid_graph, path_graph, star_graph, GraphGenerator, RmatGenerator,
    };
    use graphh_graph::Graph;
    use graphh_partition::{Spe, SpeConfig};

    fn partition(graph: &Graph, tiles: u32) -> PartitionedGraph {
        Spe::partition(graph, &SpeConfig::with_tile_count("test", graph, tiles)).unwrap()
    }

    fn engine(servers: u32) -> GraphHEngine {
        GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(
            servers,
        )))
    }

    #[test]
    fn pagerank_matches_reference_on_rmat() {
        let g = RmatGenerator::new(8, 6).generate(11);
        let p = partition(&g, 7);
        let result = engine(3).run(&p, &PageRank::new(10)).unwrap();
        let expected = reference::pagerank(&g, 10);
        assert!(
            reference::max_abs_diff(&result.values, &expected) < 1e-9,
            "distributed PageRank diverged from reference"
        );
        assert_eq!(result.supersteps_run, 10);
    }

    #[test]
    fn pagerank_is_identical_across_cluster_sizes() {
        let g = RmatGenerator::new(7, 5).generate(2);
        let p = partition(&g, 9);
        let one = engine(1).run(&p, &PageRank::new(5)).unwrap();
        let nine = engine(9).run(&p, &PageRank::new(5)).unwrap();
        assert!(reference::max_abs_diff(&one.values, &nine.values) < 1e-12);
    }

    #[test]
    fn sssp_matches_reference_on_weighted_grid() {
        let g = grid_graph(6, 7);
        let p = partition(&g, 5);
        let result = engine(3).run(&p, &Sssp::new(0)).unwrap();
        let expected = reference::sssp(&g, 0);
        assert_eq!(reference::max_abs_diff(&result.values, &expected), 0.0);
    }

    #[test]
    fn sssp_terminates_before_max_supersteps_via_convergence() {
        let g = path_graph(12);
        let p = partition(&g, 4);
        let result = engine(2).run(&p, &Sssp::new(0)).unwrap();
        // A 12-vertex path needs 12 supersteps to settle (one hop per superstep plus
        // the final no-update round), far below u32::MAX.
        assert!(result.supersteps_run <= 13);
        assert_eq!(
            reference::max_abs_diff(&result.values, &reference::sssp(&g, 0)),
            0.0
        );
    }

    #[test]
    fn bfs_and_wcc_match_reference() {
        let g = RmatGenerator::new(7, 4).simplified().generate(5);
        let p = partition(&g, 6);
        let bfs = engine(3).run(&p, &Bfs::new(0)).unwrap();
        assert_eq!(
            reference::max_abs_diff(&bfs.values, &reference::bfs(&g, 0)),
            0.0
        );

        // WCC needs the symmetrised graph.
        let mut b = graphh_graph::GraphBuilder::new().with_num_vertices(g.num_vertices()).symmetric(true);
        for e in g.edges().iter() {
            b.add_edge(e);
        }
        let sym = b.build().unwrap();
        let psym = partition(&sym, 6);
        let wcc = engine(3).run(&psym, &Wcc::new()).unwrap();
        assert_eq!(
            reference::max_abs_diff(&wcc.values, &reference::wcc(&sym)),
            0.0
        );
    }

    #[test]
    fn degree_centrality_matches_in_degrees() {
        let g = star_graph(64);
        let p = partition(&g, 3);
        let result = engine(2).run(&p, &DegreeCentrality::new()).unwrap();
        assert_eq!(result.values[0], 63.0);
        assert!(result.values[1..].iter().all(|&v| v == 0.0));
        assert_eq!(result.supersteps_run, 1);
    }

    #[test]
    fn metrics_record_real_work() {
        let g = RmatGenerator::new(8, 6).generate(1);
        let p = partition(&g, 8);
        let result = engine(3).run(&p, &PageRank::new(5)).unwrap();
        let m = &result.metrics;
        assert_eq!(m.num_supersteps() as u32, result.supersteps_run);
        // Every superstep processes every edge for PageRank (all vertices active).
        for report in &m.supersteps {
            assert_eq!(report.total_edges_processed(), g.num_edges());
            assert!(report.simulated_seconds > 0.0);
        }
        // 3 servers, tiles get broadcast: network traffic must be non-zero.
        assert!(m.total_network_bytes() > 0);
        // With a 128 GB machine everything fits in cache after the first superstep.
        assert!(m.supersteps[2].cache_hit_ratio() > 0.99);
        assert!(m.total_disk_bytes() > 0);
        assert!(result.per_server_peak_memory.iter().all(|&b| b > 0));
        assert_eq!(result.updated_ratio_per_superstep.len(), 5);
        assert!(result.avg_superstep_seconds() > 0.0);
    }

    #[test]
    fn single_server_generates_no_network_traffic() {
        let g = RmatGenerator::new(7, 4).generate(9);
        let p = partition(&g, 5);
        let result = engine(1).run(&p, &PageRank::new(3)).unwrap();
        assert_eq!(result.metrics.total_network_bytes(), 0);
    }

    #[test]
    fn disabling_cache_forces_disk_reads_every_superstep() {
        let g = RmatGenerator::new(7, 6).generate(4);
        let p = partition(&g, 6);
        let cached = engine(2).run(&p, &PageRank::new(4)).unwrap();
        let uncached_engine = GraphHEngine::new(
            GraphHConfig::paper_default(ClusterConfig::paper_testbed(2)).without_cache(),
        );
        let uncached = uncached_engine.run(&p, &PageRank::new(4)).unwrap();
        assert!(
            uncached.metrics.total_disk_bytes() > cached.metrics.total_disk_bytes(),
            "cache should cut disk traffic"
        );
        // Results are identical either way.
        assert!(reference::max_abs_diff(&cached.values, &uncached.values) < 1e-12);
    }

    #[test]
    fn bloom_filter_skips_tiles_for_frontier_algorithms() {
        let g = path_graph(200);
        let p = partition(&g, 20);
        let with_bloom = engine(2).run(&p, &Sssp::new(0)).unwrap();
        let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(2));
        cfg.use_bloom_filter = false;
        let without_bloom = GraphHEngine::new(cfg).run(&p, &Sssp::new(0)).unwrap();
        let skipped: u64 = with_bloom
            .metrics
            .supersteps
            .iter()
            .flat_map(|r| r.servers.iter())
            .map(|s| s.tiles_skipped)
            .sum();
        let skipped_without: u64 = without_bloom
            .metrics
            .supersteps
            .iter()
            .flat_map(|r| r.servers.iter())
            .map(|s| s.tiles_skipped)
            .sum();
        assert!(skipped > 0, "SSSP on a path should skip most tiles");
        assert_eq!(skipped_without, 0);
        assert_eq!(
            reference::max_abs_diff(&with_bloom.values, &without_bloom.values),
            0.0
        );
    }

    #[test]
    fn max_supersteps_override_caps_execution() {
        let g = RmatGenerator::new(6, 4).generate(8);
        let p = partition(&g, 4);
        let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(2));
        cfg.max_supersteps = Some(3);
        let result = GraphHEngine::new(cfg).run(&p, &PageRank::new(100)).unwrap();
        assert_eq!(result.supersteps_run, 3);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = Graph::from_edges(0, graphh_graph::EdgeList::new_unweighted()).unwrap();
        let p = partition(&g, 1);
        assert!(engine(1).run(&p, &PageRank::new(1)).is_err());
    }
}
