//! The MPE: GraphH's out-of-core, tile-at-a-time BSP engine (paper Algorithm 5).
//!
//! The engine itself is now a thin shell: configuration ([`GraphHConfig`]),
//! result reporting ([`RunResult`]) and a pluggable execution strategy
//! ([`crate::exec::Executor`]). The superstep machinery shared by all
//! strategies lives in [`crate::exec`]; the single-threaded reference strategy
//! is [`crate::exec::sequential::SequentialExecutor`], and `graphh-runtime`
//! provides a threaded one running each simulated server on its own OS thread.

use crate::exec::sequential::SequentialExecutor;
use crate::exec::Executor;
use crate::gab::{DirectionMode, GabProgram};
use crate::Result;
use graphh_cache::CacheMode;
use graphh_cluster::{ClusterConfig, ClusterMetrics, CommunicationMode};
use graphh_compress::Codec;
use graphh_partition::PartitionedGraph;
use std::sync::Arc;

/// Configuration of a GraphH run.
#[derive(Debug, Clone)]
pub struct GraphHConfig {
    /// The simulated cluster.
    pub cluster: ClusterConfig,
    /// Broadcast encoding policy (§IV-C); the paper's default is hybrid.
    pub communication: CommunicationMode,
    /// Broadcast message compressor; the paper's default is snappy.
    pub message_compressor: Option<Codec>,
    /// Edge cache codec policy (§IV-B); the paper's default is automatic selection.
    pub cache_mode: CacheMode,
    /// Edge cache capacity per server in bytes. `None` = whatever memory is left after
    /// the vertex-state and message arrays (the paper's "idle memory").
    pub cache_capacity: Option<u64>,
    /// Skip tiles whose sources were not updated, using per-tile Bloom filters
    /// (§III-C.4).
    pub use_bloom_filter: bool,
    /// Cap on supersteps, overriding the program's own limit when smaller.
    pub max_supersteps: Option<u32>,
    /// Compute threads per server for the tile phase (the paper's `T` worker
    /// threads inside every server). `None` = the machine's worker count
    /// (`cluster.machine.workers`; 12 on the paper testbed). Results are
    /// bit-identical for every thread count — only wall-clock changes.
    pub threads_per_server: Option<u32>,
    /// Per-superstep tile-loop direction policy: consult the program's
    /// [`crate::gab::GabProgram::direction`] hook (`Auto`, the default and
    /// the paper's effective behaviour, since every paper program is
    /// pull-only), or force every superstep onto one path. Forcing push for
    /// a pull-only program is rejected at plan time.
    pub direction_mode: DirectionMode,
}

impl GraphHConfig {
    /// The configuration the paper evaluates: hybrid broadcast, snappy messages,
    /// automatic cache mode, Bloom-filter skipping enabled.
    pub fn paper_default(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            communication: CommunicationMode::default(),
            message_compressor: Some(Codec::Snappy),
            cache_mode: CacheMode::Auto,
            cache_capacity: None,
            use_bloom_filter: true,
            max_supersteps: None,
            threads_per_server: None,
            direction_mode: DirectionMode::Auto,
        }
    }

    /// Disable the edge cache entirely (every tile read hits the disk), used by the
    /// Figure 7 baseline and ablations.
    pub fn without_cache(mut self) -> Self {
        self.cache_capacity = Some(0);
        self
    }

    /// Pin the tile phase to `threads` compute threads per server (the
    /// paper's `T`). A value of 0 is kept as-is and rejected by
    /// [`Self::validate`] when the run starts — silently clamping would hide
    /// a config bug.
    pub fn with_threads_per_server(mut self, threads: u32) -> Self {
        self.threads_per_server = Some(threads);
        self
    }

    /// Pin the per-superstep direction policy (see
    /// [`GraphHConfig::direction_mode`]).
    pub fn with_direction_mode(mut self, mode: DirectionMode) -> Self {
        self.direction_mode = mode;
        self
    }

    /// Check the configuration for values that would panic or hang deep
    /// inside a run. Every executor calls this before doing any work (via
    /// `ExecutionPlan::prepare`), so a bad config surfaces as a clear `Err`
    /// at construction of the plan rather than as a division by zero in tile
    /// assignment or a worker pool waiting for zero threads.
    pub fn validate(&self) -> Result<()> {
        if self.cluster.num_servers == 0 {
            return Err(crate::EngineError::BadInput(
                "invalid config: cluster.num_servers is 0 (a cluster needs at least one server)"
                    .into(),
            ));
        }
        if self.threads_per_server == Some(0) {
            return Err(crate::EngineError::BadInput(
                "invalid config: threads_per_server is 0 (each server needs at least one \
                 compute thread; use None for the machine default)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final vertex values (indexed by vertex id).
    pub values: Vec<f64>,
    /// Per-superstep metrics with simulated times filled in.
    pub metrics: ClusterMetrics,
    /// Number of supersteps executed.
    pub supersteps_run: u32,
    /// The codec the edge cache selected.
    pub cache_codec: Codec,
    /// Accounted peak memory per server in bytes.
    pub per_server_peak_memory: Vec<u64>,
    /// Fraction of vertices updated in each superstep (Figure 8a).
    pub updated_ratio_per_superstep: Vec<f64>,
    /// Name of the executor that produced this result.
    pub executor: &'static str,
    /// Real elapsed time of the run on this machine in seconds (as opposed to
    /// the *simulated* cluster seconds in `metrics`).
    pub wall_clock_seconds: f64,
}

impl RunResult {
    /// Average simulated seconds per superstep, excluding the first (the paper's
    /// reporting convention).
    pub fn avg_superstep_seconds(&self) -> f64 {
        self.metrics.avg_seconds_per_superstep(true)
    }

    /// Total simulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.metrics.total_seconds()
    }
}

/// The GraphH engine: a configuration plus an execution strategy.
#[derive(Clone)]
pub struct GraphHEngine {
    config: GraphHConfig,
    executor: Arc<dyn Executor>,
}

impl GraphHEngine {
    /// An engine with the given configuration and the sequential reference
    /// executor.
    pub fn new(config: GraphHConfig) -> Self {
        Self::with_executor(config, Arc::new(SequentialExecutor::new()))
    }

    /// An engine with an explicit execution strategy (e.g. `graphh-runtime`'s
    /// `ThreadedExecutor`).
    pub fn with_executor(config: GraphHConfig, executor: Arc<dyn Executor>) -> Self {
        Self { config, executor }
    }

    /// The configuration.
    pub fn config(&self) -> &GraphHConfig {
        &self.config
    }

    /// The execution strategy's name.
    pub fn executor_name(&self) -> &'static str {
        self.executor.name()
    }

    /// Run `program` over `partitioned` on the configured cluster.
    pub fn run(
        &self,
        partitioned: &PartitionedGraph,
        program: &dyn GabProgram,
    ) -> Result<RunResult> {
        self.executor.execute(&self.config, partitioned, program)
    }
}

impl std::fmt::Debug for GraphHEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphHEngine")
            .field("config", &self.config)
            .field("executor", &self.executor.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, DegreeCentrality, PageRank, Sssp, Wcc};
    use crate::reference;
    use graphh_graph::generators::{
        grid_graph, path_graph, star_graph, GraphGenerator, RmatGenerator,
    };
    use graphh_graph::Graph;
    use graphh_partition::{Spe, SpeConfig};

    fn partition(graph: &Graph, tiles: u32) -> PartitionedGraph {
        Spe::partition(graph, &SpeConfig::with_tile_count("test", graph, tiles)).unwrap()
    }

    fn engine(servers: u32) -> GraphHEngine {
        GraphHEngine::new(GraphHConfig::paper_default(ClusterConfig::paper_testbed(
            servers,
        )))
    }

    #[test]
    fn pagerank_matches_reference_on_rmat() {
        let g = RmatGenerator::new(8, 6).generate(11);
        let p = partition(&g, 7);
        let result = engine(3).run(&p, &PageRank::new(10)).unwrap();
        let expected = reference::pagerank(&g, 10);
        assert!(
            reference::max_abs_diff(&result.values, &expected) < 1e-9,
            "distributed PageRank diverged from reference"
        );
        assert_eq!(result.supersteps_run, 10);
        assert_eq!(result.executor, "sequential");
        assert!(result.wall_clock_seconds > 0.0);
    }

    #[test]
    fn pagerank_is_identical_across_cluster_sizes() {
        let g = RmatGenerator::new(7, 5).generate(2);
        let p = partition(&g, 9);
        let one = engine(1).run(&p, &PageRank::new(5)).unwrap();
        let nine = engine(9).run(&p, &PageRank::new(5)).unwrap();
        assert!(reference::max_abs_diff(&one.values, &nine.values) < 1e-12);
    }

    #[test]
    fn sssp_matches_reference_on_weighted_grid() {
        let g = grid_graph(6, 7);
        let p = partition(&g, 5);
        let result = engine(3).run(&p, &Sssp::new(0)).unwrap();
        let expected = reference::sssp(&g, 0);
        assert_eq!(reference::max_abs_diff(&result.values, &expected), 0.0);
    }

    #[test]
    fn sssp_terminates_before_max_supersteps_via_convergence() {
        let g = path_graph(12);
        let p = partition(&g, 4);
        let result = engine(2).run(&p, &Sssp::new(0)).unwrap();
        // A 12-vertex path needs 12 supersteps to settle (one hop per superstep plus
        // the final no-update round), far below u32::MAX.
        assert!(result.supersteps_run <= 13);
        assert_eq!(
            reference::max_abs_diff(&result.values, &reference::sssp(&g, 0)),
            0.0
        );
    }

    #[test]
    fn bfs_and_wcc_match_reference() {
        let g = RmatGenerator::new(7, 4).simplified().generate(5);
        let p = partition(&g, 6);
        let bfs = engine(3).run(&p, &Bfs::new(0)).unwrap();
        assert_eq!(
            reference::max_abs_diff(&bfs.values, &reference::bfs(&g, 0)),
            0.0
        );

        // WCC needs the symmetrised graph.
        let mut b = graphh_graph::GraphBuilder::new()
            .with_num_vertices(g.num_vertices())
            .symmetric(true);
        for e in g.edges().iter() {
            b.add_edge(e);
        }
        let sym = b.build().unwrap();
        let psym = partition(&sym, 6);
        let wcc = engine(3).run(&psym, &Wcc::new()).unwrap();
        assert_eq!(
            reference::max_abs_diff(&wcc.values, &reference::wcc(&sym)),
            0.0
        );
    }

    #[test]
    fn degree_centrality_matches_in_degrees() {
        let g = star_graph(64);
        let p = partition(&g, 3);
        let result = engine(2).run(&p, &DegreeCentrality::new()).unwrap();
        assert_eq!(result.values[0], 63.0);
        assert!(result.values[1..].iter().all(|&v| v == 0.0));
        assert_eq!(result.supersteps_run, 1);
    }

    #[test]
    fn metrics_record_real_work() {
        let g = RmatGenerator::new(8, 6).generate(1);
        let p = partition(&g, 8);
        let result = engine(3).run(&p, &PageRank::new(5)).unwrap();
        let m = &result.metrics;
        assert_eq!(m.num_supersteps() as u32, result.supersteps_run);
        // Every superstep processes every edge for PageRank (all vertices active).
        for report in &m.supersteps {
            assert_eq!(report.total_edges_processed(), g.num_edges());
            assert!(report.simulated_seconds > 0.0);
        }
        // 3 servers, tiles get broadcast: network traffic must be non-zero.
        assert!(m.total_network_bytes() > 0);
        // With a 128 GB machine everything fits in cache after the first superstep.
        assert!(m.supersteps[2].cache_hit_ratio() > 0.99);
        assert!(m.total_disk_bytes() > 0);
        assert!(result.per_server_peak_memory.iter().all(|&b| b > 0));
        assert_eq!(result.updated_ratio_per_superstep.len(), 5);
        assert!(result.avg_superstep_seconds() > 0.0);
    }

    #[test]
    fn single_server_generates_no_network_traffic() {
        let g = RmatGenerator::new(7, 4).generate(9);
        let p = partition(&g, 5);
        let result = engine(1).run(&p, &PageRank::new(3)).unwrap();
        assert_eq!(result.metrics.total_network_bytes(), 0);
    }

    #[test]
    fn disabling_cache_forces_disk_reads_every_superstep() {
        let g = RmatGenerator::new(7, 6).generate(4);
        let p = partition(&g, 6);
        let cached = engine(2).run(&p, &PageRank::new(4)).unwrap();
        let uncached_engine = GraphHEngine::new(
            GraphHConfig::paper_default(ClusterConfig::paper_testbed(2)).without_cache(),
        );
        let uncached = uncached_engine.run(&p, &PageRank::new(4)).unwrap();
        assert!(
            uncached.metrics.total_disk_bytes() > cached.metrics.total_disk_bytes(),
            "cache should cut disk traffic"
        );
        // Results are identical either way.
        assert!(reference::max_abs_diff(&cached.values, &uncached.values) < 1e-12);
    }

    #[test]
    fn bloom_filter_skips_tiles_for_frontier_algorithms() {
        let g = path_graph(200);
        let p = partition(&g, 20);
        let with_bloom = engine(2).run(&p, &Sssp::new(0)).unwrap();
        let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(2));
        cfg.use_bloom_filter = false;
        let without_bloom = GraphHEngine::new(cfg).run(&p, &Sssp::new(0)).unwrap();
        let skipped: u64 = with_bloom
            .metrics
            .supersteps
            .iter()
            .flat_map(|r| r.servers.iter())
            .map(|s| s.tiles_skipped)
            .sum();
        let skipped_without: u64 = without_bloom
            .metrics
            .supersteps
            .iter()
            .flat_map(|r| r.servers.iter())
            .map(|s| s.tiles_skipped)
            .sum();
        assert!(skipped > 0, "SSSP on a path should skip most tiles");
        assert_eq!(skipped_without, 0);
        assert_eq!(
            reference::max_abs_diff(&with_bloom.values, &without_bloom.values),
            0.0
        );
    }

    #[test]
    fn max_supersteps_override_caps_execution() {
        let g = RmatGenerator::new(6, 4).generate(8);
        let p = partition(&g, 4);
        let mut cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(2));
        cfg.max_supersteps = Some(3);
        let result = GraphHEngine::new(cfg).run(&p, &PageRank::new(100)).unwrap();
        assert_eq!(result.supersteps_run, 3);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = Graph::from_edges(0, graphh_graph::EdgeList::new_unweighted()).unwrap();
        let p = partition(&g, 1);
        assert!(engine(1).run(&p, &PageRank::new(1)).is_err());
    }
}
