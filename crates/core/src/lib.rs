//! # graphh-core
//!
//! The GraphH processing engine ("MPE", paper §III-C) and the GAB
//! (Gather–Apply–Broadcast) programming model, together with the vertex-centric
//! algorithms the paper evaluates.
//!
//! The engine consumes a [`graphh_partition::PartitionedGraph`] (the SPE output),
//! assigns tiles to the servers of a simulated cluster, and runs supersteps under
//! BSP:
//!
//! 1. each server's workers process its assigned tiles one at a time — a tile is
//!    fetched from the edge cache or (on a miss) from the simulated local disk,
//! 2. for every target vertex in the tile the user program's `gather` and `apply`
//!    run against the server's *local* vertex replica array (every vertex is
//!    replicated on every server — the All-in-All policy of §IV-A),
//! 3. changed values are broadcast to the other servers using the hybrid
//!    dense/sparse encoding of §IV-C,
//! 4. at the barrier every server folds the received updates into its replica.
//!
//! Tiles whose source vertices were not updated in the previous superstep are
//! skipped via a per-tile Bloom filter (§III-C.4).
//!
//! Every byte moved is metered ([`graphh_cluster::ServerMetrics`]) and converted to
//! simulated time by the cost model, which is how the experiment harness regenerates
//! the paper's figures without the 9-node testbed.

pub mod algorithms;
pub mod bloom;
pub mod engine;
pub mod exec;
pub mod gab;
pub mod reference;
pub mod registry;
pub mod replication;

pub use algorithms::{
    Bfs, DegreeCentrality, DirectionOptimizingBfs, LabelPropagation, PageRank, Sssp, Wcc,
};
pub use bloom::BloomFilter;
pub use engine::{GraphHConfig, GraphHEngine, RunResult};
pub use exec::sequential::SequentialExecutor;
pub use exec::{ExecutionPlan, Executor, FrontierView, ServerState};
pub use gab::{Direction, DirectionMode, FrontierStats, GabProgram, InitContext, VertexContext};
pub use registry::{ProgramContext, ProgramOptions, ProgramSpec};
pub use replication::{MemoryModel, ReplicationPolicy};

/// Errors produced by the engine.
#[derive(Debug)]
pub enum EngineError {
    /// Configuration problem (e.g. zero servers).
    InvalidConfig(String),
    /// The partitioned graph is inconsistent with the program's expectations.
    BadInput(String),
    /// Storage failure while staging tiles.
    Storage(graphh_storage::StorageError),
    /// Partition-layer failure.
    Partition(graphh_partition::PartitionError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            EngineError::BadInput(m) => write!(f, "bad input: {m}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Partition(e) => write!(f, "partition error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<graphh_storage::StorageError> for EngineError {
    fn from(e: graphh_storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<graphh_partition::PartitionError> for EngineError {
    fn from(e: graphh_partition::PartitionError) -> Self {
        EngineError::Partition(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
