//! Single-threaded reference implementations used to validate every engine.
//!
//! These are deliberately simple (plain loops over the in-memory graph) so they can
//! serve as ground truth for the distributed engines in unit, integration and
//! property tests.

use graphh_graph::ids::VertexId;
use graphh_graph::Graph;

/// PageRank run for exactly `supersteps` iterations with damping 0.85, matching what
/// the GAB, Pregel and GAS engines compute (synchronous updates, no dangling-mass
/// redistribution — none of the systems in the paper redistribute it either).
pub fn pagerank(graph: &Graph, supersteps: u32) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let csc = graph.to_csc();
    let out_deg = graph.out_degrees();
    let mut values = vec![1.0 / n as f64; n];
    for _ in 0..supersteps {
        let mut next = vec![0.15 / n as f64; n];
        for (v, next_value) in next.iter_mut().enumerate() {
            let mut accum = 0.0;
            for &src in csc.in_neighbors(v as VertexId) {
                if out_deg[src as usize] > 0 {
                    accum += values[src as usize] / f64::from(out_deg[src as usize]);
                }
            }
            *next_value += 0.85 * accum;
        }
        values = next;
    }
    values
}

/// Bellman-Ford style single-source shortest paths over edge weights.
pub fn sssp(graph: &Graph, source: VertexId) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    let mut dist = vec![f64::INFINITY; n];
    if n == 0 {
        return dist;
    }
    dist[source as usize] = 0.0;
    let csr = graph.to_csr();
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n {
            if dist[u].is_infinite() {
                continue;
            }
            for (v, w) in csr.neighbors_weighted(u as VertexId) {
                let candidate = dist[u] + f64::from(w);
                if candidate < dist[v as usize] {
                    dist[v as usize] = candidate;
                    changed = true;
                }
            }
        }
    }
    dist
}

/// Breadth-first-search levels from a source.
pub fn bfs(graph: &Graph, source: VertexId) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    let mut level = vec![f64::INFINITY; n];
    if n == 0 {
        return level;
    }
    let csr = graph.to_csr();
    let mut frontier = vec![source];
    level[source as usize] = 0.0;
    let mut depth = 0.0;
    while !frontier.is_empty() {
        depth += 1.0;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in csr.neighbors(u) {
                if level[v as usize].is_infinite() {
                    level[v as usize] = depth;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    level
}

/// Weakly connected components by min-label propagation over the *symmetrised* graph;
/// the result is, for every vertex, the smallest vertex id in its weak component.
pub fn wcc(graph: &Graph) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    let mut label: Vec<f64> = (0..n).map(|v| v as f64).collect();
    if n == 0 {
        return label;
    }
    let csr = graph.to_csr();
    let csc = graph.to_csc();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            let mut best = label[v];
            for &u in csr.neighbors(v as VertexId) {
                best = best.min(label[u as usize]);
            }
            for &u in csc.in_neighbors(v as VertexId) {
                best = best.min(label[u as usize]);
            }
            if best < label[v] {
                label[v] = best;
                changed = true;
            }
        }
    }
    label
}

/// Maximum absolute difference between two value vectors (∞ if lengths differ).
/// Infinite entries are considered equal if both are infinite.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            if x.is_infinite() && y.is_infinite() {
                0.0
            } else {
                (x - y).abs()
            }
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphh_graph::generators::{binary_tree, cycle_graph, grid_graph, path_graph, star_graph};

    #[test]
    fn pagerank_sums_to_one_ish_on_cycle() {
        // On a cycle every vertex has the same rank and there is no dangling mass.
        let g = cycle_graph(10);
        let pr = pagerank(&g, 30);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for &r in &pr {
            assert!((r - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_hub_of_star_has_highest_rank() {
        let g = star_graph(50);
        let pr = pagerank(&g, 20);
        let hub = pr[0];
        for &r in &pr[1..] {
            assert!(hub > r);
        }
    }

    #[test]
    fn sssp_on_path_counts_hops() {
        let g = path_graph(6);
        let d = sssp(&g, 0);
        for (i, &dist) in d.iter().enumerate() {
            assert_eq!(dist, i as f64);
        }
        // From the middle, earlier vertices are unreachable (directed path).
        let d2 = sssp(&g, 3);
        assert!(d2[0].is_infinite());
        assert_eq!(d2[5], 2.0);
    }

    #[test]
    fn bfs_matches_sssp_on_unit_weight_graph() {
        let g = binary_tree(5);
        assert_eq!(max_abs_diff(&bfs(&g, 0), &sssp(&g, 0)), 0.0);
    }

    #[test]
    fn wcc_grid_is_one_component_two_paths_are_two() {
        let grid = grid_graph(4, 5);
        let labels = wcc(&grid);
        assert!(labels.iter().all(|&l| l == 0.0));

        // Two disjoint directed paths: 0->1->2 and 3->4.
        let mut b = graphh_graph::GraphBuilder::new().with_num_vertices(5);
        b.add_edge(graphh_graph::Edge::new(0, 1));
        b.add_edge(graphh_graph::Edge::new(1, 2));
        b.add_edge(graphh_graph::Edge::new(3, 4));
        let g = b.build().unwrap();
        let labels = wcc(&g);
        assert_eq!(labels, vec![0.0, 0.0, 0.0, 3.0, 3.0]);
    }

    #[test]
    fn max_abs_diff_handles_infinities_and_lengths() {
        assert_eq!(max_abs_diff(&[f64::INFINITY], &[f64::INFINITY]), 0.0);
        assert_eq!(max_abs_diff(&[1.0], &[1.0, 2.0]), f64::INFINITY);
        assert!((max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]) - 0.5).abs() < 1e-12);
    }
}
