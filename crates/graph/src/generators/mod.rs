//! Synthetic graph generators.
//!
//! The paper evaluates on four web/social crawls we cannot redistribute; the
//! generators here produce scaled-down graphs with the same *shape*: heavy-tailed
//! in-degree distributions (R-MAT, Chung-Lu), plus uniform (Erdős–Rényi) and
//! structured graphs (paths, grids, stars, trees) for tests and SSSP workloads.
//!
//! All generators are deterministic given a seed.

mod chung_lu;
mod erdos_renyi;
mod rmat;
mod structured;

pub use chung_lu::ChungLuGenerator;
pub use erdos_renyi::ErdosRenyiGenerator;
pub use rmat::RmatGenerator;
pub use structured::{
    binary_tree, complete_graph, cycle_graph, grid_graph, path_graph, star_graph,
};

use crate::Graph;

/// Common interface for all random-graph generators.
pub trait GraphGenerator {
    /// Generate a graph using the given seed.
    fn generate(&self, seed: u64) -> Graph;

    /// Human-readable description (used in experiment logs).
    fn describe(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_are_deterministic() {
        let gens: Vec<Box<dyn GraphGenerator>> = vec![
            Box::new(RmatGenerator::new(8, 4)),
            Box::new(ErdosRenyiGenerator::new(100, 400)),
            Box::new(ChungLuGenerator::power_law(100, 5.0, 2.2)),
        ];
        for g in gens {
            let a = g.generate(7);
            let b = g.generate(7);
            assert_eq!(a.num_vertices(), b.num_vertices(), "{}", g.describe());
            assert_eq!(a.num_edges(), b.num_edges(), "{}", g.describe());
            let ea: Vec<_> = a.edges().iter().map(|e| (e.src, e.dst)).collect();
            let eb: Vec<_> = b.edges().iter().map(|e| (e.src, e.dst)).collect();
            assert_eq!(ea, eb, "{}", g.describe());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = RmatGenerator::new(8, 4);
        let a = g.generate(1);
        let b = g.generate(2);
        let ea: Vec<_> = a.edges().iter().map(|e| (e.src, e.dst)).collect();
        let eb: Vec<_> = b.edges().iter().map(|e| (e.src, e.dst)).collect();
        assert_ne!(ea, eb);
    }
}
