//! Deterministic structured graphs used by tests and the SSSP / traversal examples.

use crate::builder::GraphBuilder;
use crate::edge::Edge;
use crate::ids::VertexId;
use crate::Graph;

/// Directed path `0 -> 1 -> ... -> n-1`.
pub fn path_graph(n: u64) -> Graph {
    let mut b = GraphBuilder::new().with_num_vertices(n);
    for i in 1..n {
        b.add_edge(Edge::new((i - 1) as VertexId, i as VertexId));
    }
    b.build().expect("path ids in range")
}

/// Directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
pub fn cycle_graph(n: u64) -> Graph {
    let mut b = GraphBuilder::new().with_num_vertices(n);
    for i in 0..n {
        b.add_edge(Edge::new(i as VertexId, ((i + 1) % n) as VertexId));
    }
    b.build().expect("cycle ids in range")
}

/// Star with `n-1` spokes pointing at the hub (vertex 0): `i -> 0` for all `i > 0`.
pub fn star_graph(n: u64) -> Graph {
    let mut b = GraphBuilder::new().with_num_vertices(n);
    for i in 1..n {
        b.add_edge(Edge::new(i as VertexId, 0));
    }
    b.build().expect("star ids in range")
}

/// Complete directed graph (no self loops): every ordered pair once.
pub fn complete_graph(n: u64) -> Graph {
    let mut b = GraphBuilder::new().with_num_vertices(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_edge(Edge::new(i as VertexId, j as VertexId));
            }
        }
    }
    b.build().expect("complete ids in range")
}

/// `rows x cols` grid with bidirectional edges to the right and down neighbours.
/// Edge weights are 1.0, so it doubles as a weighted SSSP test case.
pub fn grid_graph(rows: u64, cols: u64) -> Graph {
    let id = |r: u64, c: u64| (r * cols + c) as VertexId;
    let mut b = GraphBuilder::new()
        .with_num_vertices(rows * cols)
        .symmetric(true);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(Edge::new(id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                b.add_edge(Edge::new(id(r, c), id(r + 1, c)));
            }
        }
    }
    b.build().expect("grid ids in range")
}

/// Complete binary tree of the given depth with edges pointing away from the root.
/// Depth 0 is a single vertex.
pub fn binary_tree(depth: u32) -> Graph {
    let n = (1u64 << (depth + 1)) - 1;
    let mut b = GraphBuilder::new().with_num_vertices(n);
    for parent in 0..n {
        for child in [2 * parent + 1, 2 * parent + 2] {
            if child < n {
                b.add_edge(Edge::new(parent as VertexId, child as VertexId));
            }
        }
    }
    b.build().expect("tree ids in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_counts() {
        let g = path_graph(10);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn cycle_every_vertex_has_degree_one() {
        let g = cycle_graph(7);
        assert_eq!(g.num_edges(), 7);
        assert!(g.out_degrees().iter().all(|&d| d == 1));
        assert!(g.in_degrees().iter().all(|&d| d == 1));
    }

    #[test]
    fn star_hub_collects_all_edges() {
        let g = star_graph(100);
        assert_eq!(g.in_degree(0), 99);
        assert_eq!(g.out_degree(0), 0);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(6);
        assert_eq!(g.num_edges(), 6 * 5);
    }

    #[test]
    fn grid_is_symmetric() {
        let g = grid_graph(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Interior corner checks: corner vertices have degree 2, symmetric edges.
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 2);
        // Undirected grid: 2 * (rows*(cols-1) + cols*(rows-1)) directed edges.
        assert_eq!(g.num_edges(), 2 * (3 * 3 + 4 * 2));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        // Leaves have no children.
        assert_eq!(g.out_degree(14), 0);
    }

    #[test]
    fn single_vertex_tree() {
        let g = binary_tree(0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
