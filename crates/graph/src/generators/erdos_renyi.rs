//! Erdős–Rényi G(n, m) generator: m uniformly random directed edges.

use super::GraphGenerator;
use crate::builder::GraphBuilder;
use crate::edge::Edge;
use crate::ids::VertexId;
use crate::Graph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Uniform random directed graph with a fixed vertex and edge count.
///
/// The paper's All-in-All vs On-Demand memory analysis (§IV-A, eq. 4–5) assumes a
/// random graph; this generator lets the tests check those formulas empirically.
#[derive(Debug, Clone)]
pub struct ErdosRenyiGenerator {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of edges to sample.
    pub num_edges: u64,
    /// Remove self loops.
    pub drop_self_loops: bool,
}

impl ErdosRenyiGenerator {
    /// A G(n, m) generator.
    pub fn new(num_vertices: u64, num_edges: u64) -> Self {
        Self {
            num_vertices,
            num_edges,
            drop_self_loops: false,
        }
    }

    /// Drop self loops (the sampled edge count may then be slightly below `num_edges`).
    pub fn without_self_loops(mut self) -> Self {
        self.drop_self_loops = true;
        self
    }
}

impl GraphGenerator for ErdosRenyiGenerator {
    fn generate(&self, seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut builder = GraphBuilder::new()
            .with_num_vertices(self.num_vertices)
            .drop_self_loops(self.drop_self_loops);
        for _ in 0..self.num_edges {
            let src = rng.gen_range(0..self.num_vertices) as VertexId;
            let dst = rng.gen_range(0..self.num_vertices) as VertexId;
            builder.add_edge(Edge::new(src, dst));
        }
        builder.build().expect("sampled ids are in range")
    }

    fn describe(&self) -> String {
        format!("erdos_renyi(n={}, m={})", self.num_vertices, self.num_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_has_exact_counts_without_filtering() {
        let g = ErdosRenyiGenerator::new(50, 200).generate(1);
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn er_without_self_loops() {
        let g = ErdosRenyiGenerator::new(10, 500)
            .without_self_loops()
            .generate(1);
        for e in g.edges().iter() {
            assert_ne!(e.src, e.dst);
        }
    }

    #[test]
    fn er_degree_distribution_is_roughly_uniform() {
        let g = ErdosRenyiGenerator::new(1000, 20_000).generate(5);
        let max_in = *g.in_degrees().iter().max().unwrap();
        // Expected degree 20; a uniform random graph should not have extreme hubs.
        assert!(max_in < 80, "max in-degree {max_in} too large for ER graph");
    }
}
