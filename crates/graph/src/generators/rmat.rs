//! R-MAT (recursive matrix) generator.
//!
//! R-MAT graphs reproduce the heavy-tailed degree distributions of web and social
//! graphs, which is the property the paper's skew-sensitive mechanisms (tile size
//! bounds, PowerGraph vertex cuts, sparse/dense broadcast) react to.

use super::GraphGenerator;
use crate::builder::GraphBuilder;
use crate::edge::Edge;
use crate::ids::VertexId;
use crate::Graph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Kronecker/R-MAT generator: `2^scale` vertices, `edge_factor * 2^scale` edges.
#[derive(Debug, Clone)]
pub struct RmatGenerator {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: u32,
    /// Quadrant probability a (top-left). Defaults follow the Graph500 values.
    pub a: f64,
    /// Quadrant probability b (top-right).
    pub b: f64,
    /// Quadrant probability c (bottom-left).
    pub c: f64,
    /// Drop duplicate edges and self loops.
    pub simplify: bool,
}

impl RmatGenerator {
    /// Graph500-style parameters (a=0.57, b=0.19, c=0.19, d=0.05).
    pub fn new(scale: u32, edge_factor: u32) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            simplify: false,
        }
    }

    /// Override the quadrant probabilities (`d` is implied as `1 - a - b - c`).
    pub fn with_probabilities(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0);
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Enable de-duplication and self-loop removal.
    pub fn simplified(mut self) -> Self {
        self.simplify = true;
        self
    }

    /// Number of vertices this generator will produce.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of edges this generator will attempt to produce (before simplification).
    pub fn num_edges(&self) -> u64 {
        self.num_vertices() * u64::from(self.edge_factor)
    }

    fn sample_edge(&self, rng: &mut impl Rng) -> Edge {
        let mut src = 0u64;
        let mut dst = 0u64;
        for level in (0..self.scale).rev() {
            let r: f64 = rng.gen();
            // Add a small amount of noise per level so the degree distribution is
            // smooth rather than strictly self-similar.
            let (hi_src, hi_dst) = if r < self.a {
                (0, 0)
            } else if r < self.a + self.b {
                (0, 1)
            } else if r < self.a + self.b + self.c {
                (1, 0)
            } else {
                (1, 1)
            };
            src |= hi_src << level;
            dst |= hi_dst << level;
        }
        Edge::new(src as VertexId, dst as VertexId)
    }
}

impl GraphGenerator for RmatGenerator {
    fn generate(&self, seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut builder = GraphBuilder::new()
            .with_num_vertices(self.num_vertices())
            .dedup(self.simplify)
            .drop_self_loops(self.simplify);
        let m = self.num_edges();
        for _ in 0..m {
            builder.add_edge(self.sample_edge(&mut rng));
        }
        builder
            .build()
            .expect("rmat edges are in range by construction")
    }

    fn describe(&self) -> String {
        format!(
            "rmat(scale={}, edge_factor={}, a={}, b={}, c={})",
            self.scale, self.edge_factor, self.a, self.b, self.c
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeHistogram;

    #[test]
    fn rmat_produces_requested_size() {
        let g = RmatGenerator::new(10, 8).generate(42);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 8 * 1024);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = RmatGenerator::new(12, 8).generate(42);
        // Top 1% of vertices should own far more than 1% of in-edges.
        let share = DegreeHistogram::top_percent_share(g.in_degrees(), 1.0);
        assert!(share > 0.10, "expected skew, top 1% share = {share}");
    }

    #[test]
    fn simplified_rmat_has_no_self_loops_or_duplicates() {
        let g = RmatGenerator::new(8, 4).simplified().generate(3);
        let mut seen = std::collections::HashSet::new();
        for e in g.edges().iter() {
            assert_ne!(e.src, e.dst);
            assert!(seen.insert((e.src, e.dst)));
        }
        assert!(g.num_edges() <= 4 * 256);
    }

    #[test]
    #[should_panic]
    fn invalid_probabilities_rejected() {
        let _ = RmatGenerator::new(4, 2).with_probabilities(0.6, 0.3, 0.3);
    }
}
