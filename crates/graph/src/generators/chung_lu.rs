//! Chung-Lu generator: random graph with a prescribed expected degree sequence.
//!
//! Used for the dataset stand-ins because it lets us dial in the exact average
//! degree and power-law exponent of each of the paper's crawls (Table I) while
//! keeping generation linear in |E|.

use super::GraphGenerator;
use crate::builder::GraphBuilder;
use crate::edge::Edge;
use crate::ids::VertexId;
use crate::Graph;
use rand::distributions::{Distribution, WeightedIndex};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Chung-Lu style generator with an explicit expected-degree weight per vertex.
#[derive(Debug, Clone)]
pub struct ChungLuGenerator {
    /// Expected out-degree weight of every vertex.
    out_weights: Vec<f64>,
    /// Expected in-degree weight of every vertex.
    in_weights: Vec<f64>,
    /// Total number of edges to sample.
    num_edges: u64,
}

impl ChungLuGenerator {
    /// Build from explicit weight sequences; `num_edges` edges are sampled with
    /// source ∝ out-weight and target ∝ in-weight.
    pub fn new(out_weights: Vec<f64>, in_weights: Vec<f64>, num_edges: u64) -> Self {
        assert_eq!(out_weights.len(), in_weights.len());
        assert!(!out_weights.is_empty());
        Self {
            out_weights,
            in_weights,
            num_edges,
        }
    }

    /// A power-law graph: `n` vertices, average degree `avg_degree`, in-degree
    /// exponent `gamma` (web graphs: roughly 2.1); out-degrees use a milder
    /// exponent, mirroring the paper's crawls whose max in-degree is orders of
    /// magnitude larger than the max out-degree (Table I).
    pub fn power_law(n: u64, avg_degree: f64, gamma: f64) -> Self {
        assert!(n > 0);
        let num_edges = (n as f64 * avg_degree).round() as u64;
        let mut in_weights: Vec<f64> = (0..n)
            .map(|i| ((i + 1) as f64).powf(-1.0 / (gamma - 1.0)))
            .collect();
        // Out-degree tail is much lighter (exponent ~2.8 equivalent).
        let mut out_weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-1.0 / 1.8)).collect();
        // Shuffle which vertex ids are the hubs so heavy vertices are not all low
        // ids (low ids ending up in the same tile would be unrealistic).
        let perm = pseudo_permutation(n, 0xC0FF_EE00 ^ n);
        in_weights = permute(&in_weights, &perm);
        out_weights = permute(&out_weights, &perm);
        Self {
            out_weights,
            in_weights,
            num_edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.out_weights.len() as u64
    }

    /// Number of edges that will be sampled.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }
}

impl GraphGenerator for ChungLuGenerator {
    fn generate(&self, seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out_dist = WeightedIndex::new(&self.out_weights).expect("non-empty positive weights");
        let in_dist = WeightedIndex::new(&self.in_weights).expect("non-empty positive weights");
        let n = self.num_vertices();
        let mut builder = GraphBuilder::new().with_num_vertices(n);
        for _ in 0..self.num_edges {
            let src = out_dist.sample(&mut rng) as VertexId;
            let dst = in_dist.sample(&mut rng) as VertexId;
            builder.add_edge(Edge::new(src, dst));
        }
        builder.build().expect("permuted ids are in range")
    }

    fn describe(&self) -> String {
        format!("chung_lu(n={}, m={})", self.num_vertices(), self.num_edges)
    }
}

/// A deterministic pseudo-random permutation of `0..n` derived from `seed`.
fn pseudo_permutation(n: u64, seed: u64) -> Vec<u32> {
    use rand::seq::SliceRandom;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    perm
}

/// Reorder `values` so that entry `i` moves to position `perm[i]`.
fn permute(values: &[f64], perm: &[u32]) -> Vec<f64> {
    let mut out = vec![0.0; values.len()];
    for (i, &p) in perm.iter().enumerate() {
        out[p as usize] = values[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeHistogram;

    #[test]
    fn power_law_has_requested_average_degree() {
        let g = ChungLuGenerator::power_law(2000, 8.0, 2.1).generate(9);
        assert_eq!(g.num_vertices(), 2000);
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((avg - 8.0).abs() < 0.5, "avg degree {avg}");
    }

    #[test]
    fn power_law_in_degrees_are_heavier_than_out_degrees() {
        let g = ChungLuGenerator::power_law(5000, 10.0, 2.1).generate(11);
        let max_in = *g.in_degrees().iter().max().unwrap();
        let max_out = *g.out_degrees().iter().max().unwrap();
        assert!(
            max_in > max_out,
            "web-like graphs should have in-degree hubs (in {max_in} vs out {max_out})"
        );
        let share = DegreeHistogram::top_percent_share(g.in_degrees(), 1.0);
        assert!(share > 0.15, "top-1% in-degree share {share}");
    }

    #[test]
    fn explicit_weights_respected() {
        // Vertex 0 takes almost all in-edges.
        let out = vec![1.0; 10];
        let mut inw = vec![0.0001; 10];
        inw[0] = 1000.0;
        let g = ChungLuGenerator::new(out, inw, 500).generate(1);
        assert!(g.in_degree(0) > 450);
    }

    #[test]
    #[should_panic]
    fn mismatched_weight_lengths_panic() {
        let _ = ChungLuGenerator::new(vec![1.0; 3], vec![1.0; 4], 10);
    }
}
