//! Directed edges and edge lists.

use crate::ids::VertexId;
use serde::{Deserialize, Serialize};

/// A single directed edge `src -> dst` with an optional weight.
///
/// Unweighted graphs (PageRank, WCC, BFS inputs) carry an implicit weight of `1.0`,
/// matching the paper's convention `val(u, v) = 1` for unweighted graphs (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Target vertex.
    pub dst: VertexId,
    /// Edge value; `1.0` for unweighted graphs.
    pub weight: f32,
}

impl Edge {
    /// An unweighted edge (weight `1.0`).
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Self {
            src,
            dst,
            weight: 1.0,
        }
    }

    /// A weighted edge.
    #[inline]
    pub fn weighted(src: VertexId, dst: VertexId, weight: f32) -> Self {
        Self { src, dst, weight }
    }

    /// The edge with its direction flipped (used to derive in-adjacency).
    #[inline]
    pub fn reversed(self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }
}

/// A list of directed edges stored structure-of-arrays style.
///
/// Weights are stored only when at least one weighted edge was inserted, mirroring
/// the paper's tile format, which omits the `val` array for unweighted graphs to
/// save space (§III-B.2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EdgeList {
    srcs: Vec<VertexId>,
    dsts: Vec<VertexId>,
    /// Present iff the list is weighted. Always the same length as `srcs` when present.
    weights: Option<Vec<f32>>,
}

impl EdgeList {
    /// An empty unweighted edge list.
    pub fn new_unweighted() -> Self {
        Self {
            srcs: Vec::new(),
            dsts: Vec::new(),
            weights: None,
        }
    }

    /// An empty weighted edge list.
    pub fn new_weighted() -> Self {
        Self {
            srcs: Vec::new(),
            dsts: Vec::new(),
            weights: Some(Vec::new()),
        }
    }

    /// An empty unweighted edge list with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            srcs: Vec::with_capacity(capacity),
            dsts: Vec::with_capacity(capacity),
            weights: None,
        }
    }

    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    /// Whether the list has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    /// Whether the list carries an explicit weight array.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Append an edge. Pushing a weighted edge (weight != 1.0) onto an unweighted
    /// list upgrades the list to weighted, back-filling prior weights with `1.0`.
    pub fn push(&mut self, edge: Edge) {
        if self.weights.is_none() && edge.weight != 1.0 {
            self.weights = Some(vec![1.0; self.srcs.len()]);
        }
        self.srcs.push(edge.src);
        self.dsts.push(edge.dst);
        if let Some(w) = &mut self.weights {
            w.push(edge.weight);
        }
    }

    /// Edge at index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Edge {
        Edge {
            src: self.srcs[i],
            dst: self.dsts[i],
            weight: self.weights.as_ref().map_or(1.0, |w| w[i]),
        }
    }

    /// Iterate over edges in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Source id array.
    pub fn sources(&self) -> &[VertexId] {
        &self.srcs
    }

    /// Target id array.
    pub fn targets(&self) -> &[VertexId] {
        &self.dsts
    }

    /// Weight array, if the list is weighted.
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// The largest vertex id referenced by any edge, or `None` for an empty list.
    pub fn max_vertex_id(&self) -> Option<VertexId> {
        self.srcs.iter().chain(self.dsts.iter()).copied().max()
    }

    /// Append all edges from `other`.
    pub fn extend_from(&mut self, other: &EdgeList) {
        for e in other.iter() {
            self.push(e);
        }
    }

    /// Sort edges by `(dst, src)`; the order the pre-processing engine needs before
    /// cutting the edge stream into tiles (tiles group edges by target vertex).
    pub fn sort_by_target(&mut self) {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by_key(|&i| (self.dsts[i as usize], self.srcs[i as usize]));
        self.permute(&order);
    }

    /// Sort edges by `(src, dst)`; the order streaming baselines (GraphD/Chaos) use.
    pub fn sort_by_source(&mut self) {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by_key(|&i| (self.srcs[i as usize], self.dsts[i as usize]));
        self.permute(&order);
    }

    fn permute(&mut self, order: &[u32]) {
        self.srcs = order.iter().map(|&i| self.srcs[i as usize]).collect();
        self.dsts = order.iter().map(|&i| self.dsts[i as usize]).collect();
        if let Some(w) = &self.weights {
            self.weights = Some(order.iter().map(|&i| w[i as usize]).collect());
        }
    }

    /// The number of bytes a plain-text CSV edge list of this graph would occupy.
    /// Used for the "Edge List (CSV)" column of Tables I, IV and V.
    pub fn csv_size_bytes(&self) -> u64 {
        let mut total = 0u64;
        for e in self.iter() {
            // "src,dst\n" (plus ",w" when weighted)
            total += digits(e.src) + 1 + digits(e.dst) + 1;
            if self.is_weighted() {
                total += 4; // e.g. "1.5,"-style short weights
            }
        }
        total
    }
}

fn digits(v: u32) -> u64 {
    if v == 0 {
        1
    } else {
        (v as f64).log10().floor() as u64 + 1
    }
}

impl FromIterator<Edge> for EdgeList {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        let mut list = EdgeList::new_unweighted();
        for e in iter {
            list.push(e);
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut list = EdgeList::new_unweighted();
        list.push(Edge::new(1, 2));
        list.push(Edge::new(3, 4));
        assert_eq!(list.len(), 2);
        assert_eq!(list.get(0), Edge::new(1, 2));
        assert_eq!(list.get(1), Edge::new(3, 4));
    }

    #[test]
    fn unweighted_list_upgrades_on_weighted_push() {
        let mut list = EdgeList::new_unweighted();
        list.push(Edge::new(0, 1));
        assert!(!list.is_weighted());
        list.push(Edge::weighted(1, 2, 2.5));
        assert!(list.is_weighted());
        assert_eq!(list.get(0).weight, 1.0);
        assert_eq!(list.get(1).weight, 2.5);
    }

    #[test]
    fn sort_by_target_orders_by_dst_then_src() {
        let mut list = EdgeList::new_unweighted();
        list.push(Edge::new(5, 2));
        list.push(Edge::new(1, 0));
        list.push(Edge::new(3, 2));
        list.push(Edge::new(0, 1));
        list.sort_by_target();
        let pairs: Vec<(u32, u32)> = list.iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(pairs, vec![(1, 0), (0, 1), (3, 2), (5, 2)]);
    }

    #[test]
    fn sort_preserves_weights() {
        let mut list = EdgeList::new_weighted();
        list.push(Edge::weighted(2, 1, 10.0));
        list.push(Edge::weighted(0, 0, 20.0));
        list.sort_by_source();
        assert_eq!(list.get(0).weight, 20.0);
        assert_eq!(list.get(1).weight, 10.0);
    }

    #[test]
    fn max_vertex_id_and_empty() {
        let mut list = EdgeList::new_unweighted();
        assert!(list.max_vertex_id().is_none());
        assert!(list.is_empty());
        list.push(Edge::new(7, 3));
        assert_eq!(list.max_vertex_id(), Some(7));
    }

    #[test]
    fn csv_size_counts_digits_and_separators() {
        let mut list = EdgeList::new_unweighted();
        list.push(Edge::new(10, 3)); // "10,3\n" = 5 bytes
        assert_eq!(list.csv_size_bytes(), 5);
    }

    #[test]
    fn reversed_edge_swaps_endpoints() {
        let e = Edge::weighted(1, 2, 3.0);
        let r = e.reversed();
        assert_eq!((r.src, r.dst, r.weight), (2, 1, 3.0));
    }

    #[test]
    fn from_iterator_collects() {
        let list: EdgeList = (0..5u32).map(|i| Edge::new(i, i + 1)).collect();
        assert_eq!(list.len(), 5);
        assert_eq!(list.get(4), Edge::new(4, 5));
    }
}
