//! Scaled-down stand-ins for the paper's benchmark datasets (Table I).
//!
//! The paper evaluates on four crawls — Twitter-2010, UK-2007, UK-2014 and EU-2015 —
//! that range from 25 GB to 1.7 TB as edge lists. We cannot ship or regenerate those,
//! so each dataset is represented by a Chung-Lu power-law graph whose *relative*
//! proportions (|V|, |E|, average degree, in/out-degree skew) track Table I at a
//! configurable scale factor. Experiments record the scale factor used so the
//! paper-vs-measured comparison in EXPERIMENTS.md is explicit about it.
//!
//! The *original* (paper-scale) statistics are kept alongside so cost models and
//! analytic tables (Table III/IV, Fig. 6a) can also be evaluated at full scale.

use crate::generators::{ChungLuGenerator, GraphGenerator};
use crate::properties::GraphStats;
use crate::Graph;
use serde::{Deserialize, Serialize};

/// The four benchmark datasets of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Twitter follower graph (42M vertices, 1.5B edges, 25 GB CSV).
    Twitter2010,
    /// .uk web crawl 2007 (134M vertices, 5.5B edges, 93 GB CSV).
    Uk2007,
    /// .uk web crawl 2014 (788M vertices, 47.6B edges, 0.9 TB CSV).
    Uk2014,
    /// .eu web crawl 2015 (1.1B vertices, 91.8B edges, 1.7 TB CSV).
    Eu2015,
}

impl Dataset {
    /// All four datasets in Table I order.
    pub const ALL: [Dataset; 4] = [
        Dataset::Twitter2010,
        Dataset::Uk2007,
        Dataset::Uk2014,
        Dataset::Eu2015,
    ];

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Twitter2010 => "Twitter-2010",
            Dataset::Uk2007 => "UK-2007",
            Dataset::Uk2014 => "UK-2014",
            Dataset::Eu2015 => "EU-2015",
        }
    }

    /// Paper-scale statistics (Table I).
    pub fn paper_stats(self) -> GraphStats {
        let (v, e, avg, max_in, max_out, csv_gb) = match self {
            Dataset::Twitter2010 => (
                42_000_000u64,
                1_500_000_000u64,
                35.3,
                700_000,
                770_000,
                25.0,
            ),
            Dataset::Uk2007 => (134_000_000, 5_500_000_000, 41.2, 6_300_000, 22_400, 93.0),
            Dataset::Uk2014 => (788_000_000, 47_600_000_000, 60.4, 8_600_000, 16_300, 900.0),
            Dataset::Eu2015 => (
                1_100_000_000,
                91_800_000_000,
                85.7,
                20_000_000,
                35_300,
                1700.0,
            ),
        };
        GraphStats {
            name: self.name().to_string(),
            num_vertices: v,
            num_edges: e,
            avg_degree: avg,
            max_in_degree: max_in,
            max_out_degree: max_out,
            csv_size_bytes: (csv_gb * 1e9) as u64,
            weighted: false,
        }
    }

    /// The default specification used by the experiment harness: scale factor chosen
    /// so each stand-in generates in well under a second and the four datasets keep
    /// their relative ordering (UK-2007 ≈ 3.7× Twitter's edges, EU-2015 ≈ 61×, …).
    pub fn default_spec(self) -> DatasetSpec {
        // Per-dataset divisor on |V|; |E| follows from the paper's average degree.
        let scale_divisor = match self {
            Dataset::Twitter2010 => 4_000.0,
            Dataset::Uk2007 => 10_000.0,
            Dataset::Uk2014 => 40_000.0,
            Dataset::Eu2015 => 50_000.0,
        };
        DatasetSpec::scaled(self, scale_divisor)
    }

    /// Generate the default stand-in graph for this dataset.
    pub fn generate(self, seed: u64) -> Graph {
        self.default_spec().generate(seed)
    }
}

/// A concrete, generatable specification of a dataset stand-in.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which paper dataset this stands in for.
    pub dataset: Dataset,
    /// Divisor applied to the paper's |V| (and hence |E|).
    pub scale_divisor: f64,
    /// Number of vertices in the generated graph.
    pub num_vertices: u64,
    /// Number of edges in the generated graph.
    pub num_edges: u64,
    /// Average degree (same as the paper's).
    pub avg_degree: f64,
    /// Power-law exponent for the in-degree tail.
    pub gamma: f64,
}

impl DatasetSpec {
    /// Build a spec dividing the paper-scale vertex count by `scale_divisor`.
    pub fn scaled(dataset: Dataset, scale_divisor: f64) -> Self {
        let paper = dataset.paper_stats();
        let num_vertices = ((paper.num_vertices as f64 / scale_divisor).round() as u64).max(1000);
        let num_edges = (num_vertices as f64 * paper.avg_degree).round() as u64;
        Self {
            dataset,
            scale_divisor,
            num_vertices,
            num_edges,
            avg_degree: paper.avg_degree,
            // Web crawls have in-degree exponents close to 2.1; Twitter is a bit
            // flatter (more hubs).
            gamma: match dataset {
                Dataset::Twitter2010 => 1.9,
                _ => 2.1,
            },
        }
    }

    /// Generate the stand-in graph.
    pub fn generate(&self, seed: u64) -> Graph {
        ChungLuGenerator::power_law(self.num_vertices, self.avg_degree, self.gamma)
            .generate(seed ^ hash_name(self.dataset.name()))
    }

    /// Ratio between the paper's edge count and the stand-in's (for reporting).
    pub fn edge_scale_ratio(&self) -> f64 {
        self.dataset.paper_stats().num_edges as f64 / self.num_edges as f64
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stats_match_table1() {
        let t = Dataset::Twitter2010.paper_stats();
        assert_eq!(t.num_vertices, 42_000_000);
        assert_eq!(t.num_edges, 1_500_000_000);
        let eu = Dataset::Eu2015.paper_stats();
        assert_eq!(eu.num_vertices, 1_100_000_000);
        assert!((eu.avg_degree - 85.7).abs() < 1e-9);
    }

    #[test]
    fn default_specs_preserve_relative_ordering() {
        let sizes: Vec<u64> = Dataset::ALL
            .iter()
            .map(|d| d.default_spec().num_edges)
            .collect();
        // Twitter < UK-2007 < UK-2014 < EU-2015 must still hold after scaling? The
        // scale divisors differ, so only require that every stand-in is non-trivial
        // and EU-2015 is the densest per-vertex.
        assert!(sizes.iter().all(|&s| s > 10_000));
        let eu = Dataset::Eu2015.default_spec();
        let tw = Dataset::Twitter2010.default_spec();
        assert!(eu.avg_degree > tw.avg_degree);
    }

    #[test]
    fn generated_graph_matches_spec() {
        let spec = DatasetSpec::scaled(Dataset::Twitter2010, 20_000.0);
        let g = spec.generate(1);
        assert_eq!(g.num_vertices(), spec.num_vertices);
        assert_eq!(g.num_edges(), spec.num_edges);
        let stats = g.stats();
        assert!((stats.avg_degree - spec.avg_degree).abs() / spec.avg_degree < 0.05);
    }

    #[test]
    fn generation_is_deterministic_per_dataset_and_seed() {
        let a = DatasetSpec::scaled(Dataset::Uk2007, 50_000.0).generate(7);
        let b = DatasetSpec::scaled(Dataset::Uk2007, 50_000.0).generate(7);
        assert_eq!(
            a.edges().iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>(),
            b.edges().iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_datasets_generate_different_graphs() {
        let a = DatasetSpec::scaled(Dataset::Uk2007, 50_000.0).generate(7);
        let b = DatasetSpec::scaled(Dataset::Uk2014, 50_000.0 * 788.0 / 134.0).generate(7);
        assert_ne!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn edge_scale_ratio_reported() {
        let spec = Dataset::Uk2007.default_spec();
        assert!(spec.edge_scale_ratio() > 100.0);
    }
}
