//! Identifier and count types shared across the workspace.
//!
//! The paper's graphs have up to 1.1 billion vertices; our scaled-down stand-ins
//! stay far below `u32::MAX`, so vertex ids are `u32` (matching the 4-byte ids the
//! paper assumes in its memory-model arithmetic, §IV-A), while counts that can
//! describe the *original* datasets (e.g. 91.8 billion edges for EU-2015) are `u64`.

/// Identifier of a vertex. Vertices are always densely numbered `0..num_vertices`.
pub type VertexId = u32;

/// Number of vertices in a graph.
pub type VertexCount = u64;

/// Number of edges in a graph.
pub type EdgeCount = u64;

/// Identifier of a tile produced by the pre-processing engine.
pub type TileId = u32;

/// Identifier of a (simulated) server in the cluster.
pub type ServerId = u32;

/// Identifier of a worker thread inside a server.
pub type WorkerId = u32;

/// Returns the server a tile is assigned to under GraphH's round-robin placement:
/// tile `i` goes to server `i mod N` (§III-C.1).
#[inline]
pub fn tile_home_server(tile: TileId, num_servers: u32) -> ServerId {
    assert!(num_servers > 0, "cluster must have at least one server");
    tile % num_servers
}

/// Returns the server that owns vertex `v` under hash-based edge-cut partitioning
/// (Pregel+/GraphD, §II-B.1). We use a multiplicative hash rather than plain modulo
/// so that consecutive ids do not all land on the same server.
#[inline]
pub fn vertex_hash_server(v: VertexId, num_servers: u32) -> ServerId {
    assert!(num_servers > 0, "cluster must have at least one server");
    // Fibonacci hashing: spreads consecutive ids uniformly.
    let h = (u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 33) % u64::from(num_servers)) as ServerId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assignment_cycles() {
        assert_eq!(tile_home_server(0, 3), 0);
        assert_eq!(tile_home_server(1, 3), 1);
        assert_eq!(tile_home_server(2, 3), 2);
        assert_eq!(tile_home_server(3, 3), 0);
    }

    #[test]
    fn hash_assignment_in_range_and_spread() {
        let n = 8;
        let mut counts = vec![0u32; n as usize];
        for v in 0..10_000u32 {
            let s = vertex_hash_server(v, n);
            assert!(s < n);
            counts[s as usize] += 1;
        }
        // Every server should get a reasonable share (within 3x of uniform).
        for &c in &counts {
            assert!(
                c > 10_000 / (n * 3),
                "unbalanced hash distribution: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        tile_home_server(0, 0);
    }
}
