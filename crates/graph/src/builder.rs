//! Incremental graph construction with optional de-duplication and relabeling.

use crate::edge::{Edge, EdgeList};
use crate::ids::{VertexCount, VertexId};
use crate::{Graph, GraphError};
use std::collections::HashMap;

/// Builds a [`Graph`] from individually inserted edges.
///
/// The builder tracks the maximum vertex id seen so the caller does not need to know
/// `|V|` up front, can optionally drop duplicate and self-loop edges, and can relabel
/// arbitrary (sparse) external ids into the dense `0..|V|` range the engines require.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    edges: EdgeList,
    dedup: bool,
    drop_self_loops: bool,
    symmetric: bool,
    seen: std::collections::HashSet<(VertexId, VertexId)>,
    explicit_num_vertices: Option<VertexCount>,
}

impl GraphBuilder {
    /// A new builder for an unweighted graph.
    pub fn new() -> Self {
        Self {
            edges: EdgeList::new_unweighted(),
            ..Default::default()
        }
    }

    /// A new builder for a weighted graph.
    pub fn new_weighted() -> Self {
        Self {
            edges: EdgeList::new_weighted(),
            ..Default::default()
        }
    }

    /// Drop duplicate `(src, dst)` pairs.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Drop self-loop edges (`src == dst`).
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Insert the reverse of every edge too (treat input as undirected).
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Fix the vertex count instead of deriving it from the maximum edge endpoint.
    pub fn with_num_vertices(mut self, n: VertexCount) -> Self {
        self.explicit_num_vertices = Some(n);
        self
    }

    /// Add a single edge, applying the configured filters.
    pub fn add_edge(&mut self, edge: Edge) -> &mut Self {
        self.insert(edge);
        if self.symmetric && edge.src != edge.dst {
            self.insert(edge.reversed());
        }
        self
    }

    fn insert(&mut self, edge: Edge) {
        if self.drop_self_loops && edge.src == edge.dst {
            return;
        }
        if self.dedup && !self.seen.insert((edge.src, edge.dst)) {
            return;
        }
        self.edges.push(edge);
    }

    /// Add many edges.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = Edge>) -> &mut Self {
        for e in edges {
            self.add_edge(e);
        }
        self
    }

    /// Number of edges accepted so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edge has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finish building. The vertex count is the explicit one if set, otherwise
    /// `max id + 1` (0 for an empty graph).
    pub fn build(self) -> Result<Graph, GraphError> {
        let n = self
            .explicit_num_vertices
            .unwrap_or_else(|| self.edges.max_vertex_id().map_or(0, |m| u64::from(m) + 1));
        Graph::from_edges(n, self.edges)
    }
}

/// Relabels sparse external vertex ids (e.g. from a raw crawl file) into dense ids.
#[derive(Debug, Default)]
pub struct Relabeler {
    map: HashMap<u64, VertexId>,
    reverse: Vec<u64>,
}

impl Relabeler {
    /// Empty relabeler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dense id for an external id, allocating a new one on first sight.
    pub fn relabel(&mut self, external: u64) -> VertexId {
        if let Some(&v) = self.map.get(&external) {
            return v;
        }
        let v = self.reverse.len() as VertexId;
        self.map.insert(external, v);
        self.reverse.push(external);
        v
    }

    /// External id for a dense id.
    pub fn original(&self, dense: VertexId) -> Option<u64> {
        self.reverse.get(dense as usize).copied()
    }

    /// Number of distinct vertices seen.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// Whether no vertex has been seen.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_derives_vertex_count() {
        let mut b = GraphBuilder::new();
        b.add_edge(Edge::new(0, 5));
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 6);
    }

    #[test]
    fn builder_dedup_and_self_loops() {
        let mut b = GraphBuilder::new().dedup(true).drop_self_loops(true);
        b.add_edge(Edge::new(1, 2));
        b.add_edge(Edge::new(1, 2));
        b.add_edge(Edge::new(3, 3));
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn builder_symmetric_duplicates_reverse() {
        let mut b = GraphBuilder::new().symmetric(true);
        b.add_edge(Edge::new(0, 1));
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(1), 1);
    }

    #[test]
    fn builder_explicit_vertex_count_allows_isolated() {
        let mut b = GraphBuilder::new().with_num_vertices(100);
        b.add_edge(Edge::new(0, 1));
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 100);
    }

    #[test]
    fn builder_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn relabeler_is_consistent_and_reversible() {
        let mut r = Relabeler::new();
        let a = r.relabel(1_000_000);
        let b = r.relabel(42);
        let a2 = r.relabel(1_000_000);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.original(a), Some(1_000_000));
        assert_eq!(r.original(b), Some(42));
        assert_eq!(r.len(), 2);
    }
}
