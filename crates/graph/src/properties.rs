//! Whole-graph summary statistics (Table I columns).

use crate::degree::DegreeStats;
use crate::ids::{EdgeCount, VertexCount};
use crate::Graph;
use serde::{Deserialize, Serialize};

/// The statistics the paper reports for each benchmark dataset in Table I, plus a
/// couple of extras the cost models need (weighted flag, CSV size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Human-readable dataset name (empty for ad-hoc graphs).
    pub name: String,
    /// Number of vertices.
    pub num_vertices: VertexCount,
    /// Number of directed edges.
    pub num_edges: EdgeCount,
    /// Average degree |E|/|V|.
    pub avg_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: u32,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Size of the plain-text edge list in bytes.
    pub csv_size_bytes: u64,
    /// Whether edges carry explicit weights.
    pub weighted: bool,
}

impl GraphStats {
    /// Compute statistics for a graph.
    pub fn compute(graph: &Graph) -> Self {
        let d = DegreeStats::from_degrees(graph.in_degrees(), graph.out_degrees());
        Self {
            name: String::new(),
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            avg_degree: d.avg_degree,
            max_in_degree: d.max_in_degree,
            max_out_degree: d.max_out_degree,
            csv_size_bytes: graph.edges().csv_size_bytes(),
            weighted: graph.is_weighted(),
        }
    }

    /// Attach a dataset name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// One row of Table I as a tab-separated string.
    pub fn table_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{:.1}\t{}\t{}\t{}",
            self.name,
            self.num_vertices,
            self.num_edges,
            self.avg_degree,
            self.max_in_degree,
            self.max_out_degree,
            human_bytes(self.csv_size_bytes)
        )
    }
}

/// Format a byte count with binary suffixes (e.g. `1.5 GiB`).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{Edge, EdgeList};

    #[test]
    fn stats_reflect_graph_shape() {
        let mut edges = EdgeList::new_unweighted();
        for i in 0..10u32 {
            edges.push(Edge::new(i, 0));
        }
        let g = Graph::from_edges(11, edges).unwrap();
        let s = g.stats().named("star");
        assert_eq!(s.name, "star");
        assert_eq!(s.num_vertices, 11);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.max_in_degree, 10);
        assert_eq!(s.max_out_degree, 1);
        assert!(!s.weighted);
        assert!(s.csv_size_bytes > 0);
        assert!(s.table_row().contains("star"));
    }

    #[test]
    fn human_bytes_scales_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert!(human_bytes(3 * 1024 * 1024).starts_with("3.00 MiB"));
        assert!(human_bytes(5 * 1024 * 1024 * 1024).starts_with("5.00 GiB"));
    }
}
