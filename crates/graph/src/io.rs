//! Edge-list I/O: the plain-text CSV/TSV format the paper's raw inputs use and a
//! compact binary format used as an intermediate by the pre-processing engine.

use crate::builder::GraphBuilder;
use crate::edge::{Edge, EdgeList};
use crate::ids::VertexId;
use crate::{Graph, GraphError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write a graph as a text edge list (`src<sep>dst[<sep>weight]\n`).
pub fn write_edge_list<W: Write>(graph: &Graph, mut w: W, sep: char) -> Result<(), GraphError> {
    for e in graph.edges().iter() {
        if graph.is_weighted() {
            writeln!(w, "{}{}{}{}{}", e.src, sep, e.dst, sep, e.weight)?;
        } else {
            writeln!(w, "{}{}{}", e.src, sep, e.dst)?;
        }
    }
    Ok(())
}

/// Parse a text edge list. Lines starting with `#` or `%` are comments; fields may be
/// separated by commas, tabs, or runs of spaces. Vertex ids are used verbatim (they
/// must already be dense); the vertex count is `max id + 1` unless `num_vertices`
/// is given.
pub fn read_edge_list<R: Read>(r: R, num_vertices: Option<u64>) -> Result<Graph, GraphError> {
    let reader = BufReader::new(r);
    let mut builder = GraphBuilder::new();
    if let Some(n) = num_vertices {
        builder = builder.with_num_vertices(n);
    }
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = line
            .split([',', '\t', ' '])
            .filter(|f| !f.is_empty())
            .collect();
        if fields.len() < 2 {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: format!("expected at least 2 fields, got {}", fields.len()),
            });
        }
        let src: VertexId = fields[0].parse().map_err(|e| GraphError::Parse {
            line: idx + 1,
            message: format!("bad source id: {e}"),
        })?;
        let dst: VertexId = fields[1].parse().map_err(|e| GraphError::Parse {
            line: idx + 1,
            message: format!("bad target id: {e}"),
        })?;
        let edge = if fields.len() >= 3 {
            let w: f32 = fields[2].parse().map_err(|e| GraphError::Parse {
                line: idx + 1,
                message: format!("bad weight: {e}"),
            })?;
            Edge::weighted(src, dst, w)
        } else {
            Edge::new(src, dst)
        };
        builder.add_edge(edge);
    }
    builder.build()
}

/// Read an edge-list file from disk.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f, None)
}

/// Write an edge-list file to disk (CSV).
pub fn write_edge_list_file(graph: &Graph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let f = std::fs::File::create(path)?;
    write_edge_list(graph, BufWriter::new(f), ',')
}

/// Magic header for the binary edge-list format.
const BINARY_MAGIC: &[u8; 8] = b"GRAPHH01";

/// Serialize a graph into the compact binary edge-list format:
/// magic, flags, |V|, |E|, then (src, dst[, weight]) tuples in little-endian.
pub fn write_binary<W: Write>(graph: &Graph, mut w: W) -> Result<(), GraphError> {
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&[u8::from(graph.is_weighted())])?;
    w.write_all(&graph.num_vertices().to_le_bytes())?;
    w.write_all(&graph.num_edges().to_le_bytes())?;
    for e in graph.edges().iter() {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
        if graph.is_weighted() {
            w.write_all(&e.weight.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialize a graph from the binary edge-list format.
pub fn read_binary<R: Read>(mut r: R) -> Result<Graph, GraphError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: "bad magic header for binary graph".into(),
        });
    }
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let weighted = flag[0] != 0;
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let num_vertices = u64::from_le_bytes(buf8);
    r.read_exact(&mut buf8)?;
    let num_edges = u64::from_le_bytes(buf8);
    let mut edges = if weighted {
        EdgeList::new_weighted()
    } else {
        EdgeList::new_unweighted()
    };
    let mut buf4 = [0u8; 4];
    for _ in 0..num_edges {
        r.read_exact(&mut buf4)?;
        let src = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let dst = u32::from_le_bytes(buf4);
        let weight = if weighted {
            r.read_exact(&mut buf4)?;
            f32::from_le_bytes(buf4)
        } else {
            1.0
        };
        edges.push(Edge::weighted(src, dst, weight));
    }
    Graph::from_edges(num_vertices, edges)
}

/// Number of bytes `write_binary` will produce for a graph with the given shape.
pub fn binary_size_bytes(num_edges: u64, weighted: bool) -> u64 {
    let per_edge = if weighted { 12 } else { 8 };
    8 + 1 + 8 + 8 + num_edges * per_edge
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path_graph, GraphGenerator, RmatGenerator};

    #[test]
    fn text_roundtrip_unweighted() {
        let g = RmatGenerator::new(6, 4).generate(3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf, ',').unwrap();
        let g2 = read_edge_list(&buf[..], Some(g.num_vertices())).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.in_degrees(), g2.in_degrees());
    }

    #[test]
    fn text_parses_comments_and_mixed_separators() {
        let text = "# a comment\n0 1\n1,2\n2\t3\n\n% another\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn text_parses_weights() {
        let text = "0,1,2.5\n1,2,0.5\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edges().get(0).weight, 2.5);
    }

    #[test]
    fn text_reports_parse_error_line() {
        let text = "0,1\nnot_an_edge\n";
        let err = read_edge_list(text.as_bytes(), None).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binary_roundtrip_weighted_and_unweighted() {
        for weighted in [false, true] {
            let mut g = path_graph(20);
            if weighted {
                let mut edges = EdgeList::new_weighted();
                for (i, e) in g.edges().iter().enumerate() {
                    edges.push(Edge::weighted(e.src, e.dst, i as f32));
                }
                g = Graph::from_edges(20, edges).unwrap();
            }
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            assert_eq!(buf.len() as u64, binary_size_bytes(g.num_edges(), weighted));
            let g2 = read_binary(&buf[..]).unwrap();
            assert_eq!(g.num_vertices(), g2.num_vertices());
            assert_eq!(
                g.edges()
                    .iter()
                    .map(|e| (e.src, e.dst, e.weight))
                    .collect::<Vec<_>>(),
                g2.edges()
                    .iter()
                    .map(|e| (e.src, e.dst, e.weight))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTMAGIC_____"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. } | GraphError::Io(_)));
    }

    #[test]
    fn file_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("g.csv");
        let g = path_graph(5);
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.num_edges(), 4);
    }
}
