//! Compressed sparse adjacency structures.
//!
//! [`Csr`] groups edges by **source** (out-adjacency, what Pregel-style systems
//! keep in memory); [`Csc`] groups edges by **target** (in-adjacency, the layout
//! GraphH tiles use because GAB gathers along in-edges, §III-B).
//!
//! Both follow the classic three-array layout the paper describes (§III-B.2):
//! `row` offsets, `col` neighbor ids, and an optional `val` array that is omitted
//! for unweighted graphs.

use crate::edge::{Edge, EdgeList};
use crate::ids::{EdgeCount, VertexCount, VertexId};
use serde::{Deserialize, Serialize};

/// Out-adjacency in compressed sparse row form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets`/`weights` for vertex `v`.
    offsets: Vec<u64>,
    /// Neighbor ids, grouped by source vertex.
    targets: Vec<VertexId>,
    /// Edge weights; `None` for unweighted graphs.
    weights: Option<Vec<f32>>,
}

/// In-adjacency in compressed sparse column form (sources grouped by target).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csc {
    /// `offsets[v]..offsets[v+1]` indexes `sources`/`weights` for vertex `v`.
    offsets: Vec<u64>,
    /// Neighbor ids, grouped by target vertex.
    sources: Vec<VertexId>,
    /// Edge weights; `None` for unweighted graphs.
    weights: Option<Vec<f32>>,
}

fn build(
    num_vertices: VertexCount,
    edges: &EdgeList,
    key: impl Fn(Edge) -> VertexId,
    value: impl Fn(Edge) -> VertexId,
) -> (Vec<u64>, Vec<VertexId>, Option<Vec<f32>>) {
    let n = num_vertices as usize;
    let mut counts = vec![0u64; n + 1];
    for e in edges.iter() {
        counts[key(e) as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts;
    let mut cursor = offsets.clone();
    let mut ids = vec![0 as VertexId; edges.len()];
    let mut weights = if edges.is_weighted() {
        Some(vec![0f32; edges.len()])
    } else {
        None
    };
    for e in edges.iter() {
        let k = key(e) as usize;
        let pos = cursor[k] as usize;
        ids[pos] = value(e);
        if let Some(w) = &mut weights {
            w[pos] = e.weight;
        }
        cursor[k] += 1;
    }
    (offsets, ids, weights)
}

impl Csr {
    /// Build from an edge list, grouping by source vertex.
    pub fn from_edges(num_vertices: VertexCount, edges: &EdgeList) -> Self {
        let (offsets, targets, weights) = build(num_vertices, edges, |e| e.src, |e| e.dst);
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> VertexCount {
        (self.offsets.len() - 1) as VertexCount
    }

    /// Number of edges.
    pub fn num_edges(&self) -> EdgeCount {
        self.targets.len() as EdgeCount
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-neighbors of `v` together with edge weights (1.0 when unweighted).
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (lo..hi).map(move |i| (self.targets[i], self.weights.as_ref().map_or(1.0, |w| w[i])))
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Offset array (length `num_vertices + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Flat neighbor array.
    pub fn values(&self) -> &[VertexId] {
        &self.targets
    }

    /// Bytes needed to hold this structure in memory (offsets + ids + weights).
    pub fn memory_bytes(&self) -> u64 {
        let ids = self.targets.len() as u64 * 4;
        let offs = self.offsets.len() as u64 * 8;
        let w = self.weights.as_ref().map_or(0, |w| w.len() as u64 * 4);
        ids + offs + w
    }
}

impl Csc {
    /// Build from an edge list, grouping by target vertex.
    pub fn from_edges(num_vertices: VertexCount, edges: &EdgeList) -> Self {
        let (offsets, sources, weights) = build(num_vertices, edges, |e| e.dst, |e| e.src);
        Self {
            offsets,
            sources,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> VertexCount {
        (self.offsets.len() - 1) as VertexCount
    }

    /// Number of edges.
    pub fn num_edges(&self) -> EdgeCount {
        self.sources.len() as EdgeCount
    }

    /// In-neighbors of `v`.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.sources[lo..hi]
    }

    /// In-neighbors of `v` with edge weights (1.0 when unweighted).
    pub fn in_neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (lo..hi).map(move |i| (self.sources[i], self.weights.as_ref().map_or(1.0, |w| w[i])))
    }

    /// In-degree of `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Offset array (length `num_vertices + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Flat neighbor (source id) array.
    pub fn values(&self) -> &[VertexId] {
        &self.sources
    }

    /// Bytes needed to hold this structure in memory.
    pub fn memory_bytes(&self) -> u64 {
        let ids = self.sources.len() as u64 * 4;
        let offs = self.offsets.len() as u64 * 8;
        let w = self.weights.as_ref().map_or(0, |w| w.len() as u64 * 4);
        ids + offs + w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> EdgeList {
        let mut list = EdgeList::new_unweighted();
        for &(s, d) in &[(0u32, 1u32), (0, 2), (1, 2), (2, 0), (3, 2)] {
            list.push(Edge::new(s, d));
        }
        list
    }

    #[test]
    fn csr_neighbors_grouped_by_source() {
        let csr = Csr::from_edges(4, &edges());
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[2]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.neighbors(3), &[2]);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.num_edges(), 5);
    }

    #[test]
    fn csc_neighbors_grouped_by_target() {
        let csc = Csc::from_edges(4, &edges());
        assert_eq!(csc.in_neighbors(0), &[2]);
        assert_eq!(csc.in_neighbors(1), &[0]);
        assert_eq!(csc.in_neighbors(2), &[0, 1, 3]);
        assert_eq!(csc.in_neighbors(3), &[] as &[u32]);
        assert_eq!(csc.degree(2), 3);
    }

    #[test]
    fn weighted_edges_preserved() {
        let mut list = EdgeList::new_weighted();
        list.push(Edge::weighted(0, 1, 2.0));
        list.push(Edge::weighted(2, 1, 5.0));
        let csc = Csc::from_edges(3, &list);
        let got: Vec<(u32, f32)> = csc.in_neighbors_weighted(1).collect();
        assert_eq!(got, vec![(0, 2.0), (2, 5.0)]);
    }

    #[test]
    fn memory_bytes_unweighted() {
        let csr = Csr::from_edges(4, &edges());
        // 5 ids * 4 + 5 offsets * 8 = 60
        assert_eq!(csr.memory_bytes(), 5 * 4 + 5 * 8);
    }

    #[test]
    fn isolated_vertices_have_empty_adjacency() {
        let list = EdgeList::new_unweighted();
        let csr = Csr::from_edges(3, &list);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_edges(), 0);
        assert!(csr.neighbors(1).is_empty());
    }
}
