//! # graphh-graph
//!
//! Graph substrate for the GraphH reproduction (CLUSTER 2017).
//!
//! This crate provides everything the rest of the workspace needs to *describe* graphs:
//!
//! * compact vertex / edge identifiers ([`VertexId`], [`ids`]),
//! * edge lists ([`edge::EdgeList`]) and builders ([`builder::GraphBuilder`]),
//! * compressed sparse row/column adjacency ([`csr::Csr`], [`csr::Csc`]),
//! * degree statistics ([`degree`], [`properties::GraphStats`]),
//! * synthetic graph generators (R-MAT, Chung-Lu, Erdős–Rényi, and structured
//!   graphs) in [`generators`],
//! * the scaled-down stand-ins for the paper's benchmark datasets (Table I) in
//!   [`datasets`],
//! * plain-text and binary edge-list I/O in [`io`].
//!
//! The paper operates on directed graphs; an undirected graph is represented by
//! inserting both arc directions.

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod degree;
pub mod edge;
pub mod generators;
pub mod ids;
pub mod io;
pub mod properties;

pub use builder::GraphBuilder;
pub use csr::{Csc, Csr};
pub use datasets::{Dataset, DatasetSpec};
pub use degree::DegreeStats;
pub use edge::{Edge, EdgeList};
pub use ids::{EdgeCount, VertexCount, VertexId};
pub use properties::GraphStats;

/// A directed graph held fully in memory: its edge list plus derived degree arrays.
///
/// This is the canonical exchange format between the pre-processing engine
/// (`graphh-partition`) and everything that needs raw graphs (generators, tests,
/// baselines that partition differently from GraphH).
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of vertices; vertex ids are `0..num_vertices`.
    num_vertices: VertexCount,
    /// The directed edges.
    edges: EdgeList,
    /// Out-degree of every vertex.
    out_degree: Vec<u32>,
    /// In-degree of every vertex.
    in_degree: Vec<u32>,
}

impl Graph {
    /// Build a graph from an edge list over `num_vertices` vertices.
    ///
    /// Edges referring to vertices `>= num_vertices` are rejected.
    pub fn from_edges(num_vertices: VertexCount, edges: EdgeList) -> Result<Self, GraphError> {
        for e in edges.iter() {
            if u64::from(e.src) >= num_vertices || u64::from(e.dst) >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: e.src.max(e.dst),
                    num_vertices,
                });
            }
        }
        let (in_degree, out_degree) = degree::compute_degrees(num_vertices, &edges);
        Ok(Self {
            num_vertices,
            edges,
            out_degree,
            in_degree,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> VertexCount {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> EdgeCount {
        self.edges.len() as EdgeCount
    }

    /// Borrow the edge list.
    pub fn edges(&self) -> &EdgeList {
        &self.edges
    }

    /// Consume the graph, returning its edge list.
    pub fn into_edges(self) -> EdgeList {
        self.edges
    }

    /// Out-degree array indexed by vertex id.
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degree
    }

    /// In-degree array indexed by vertex id.
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degree
    }

    /// Out-degree of a single vertex.
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out_degree[v as usize]
    }

    /// In-degree of a single vertex.
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.in_degree[v as usize]
    }

    /// Whether the graph carries edge weights.
    pub fn is_weighted(&self) -> bool {
        self.edges.is_weighted()
    }

    /// Build the out-adjacency CSR (edges grouped by source).
    pub fn to_csr(&self) -> Csr {
        Csr::from_edges(self.num_vertices, &self.edges)
    }

    /// Build the in-adjacency CSC (edges grouped by target). This is the layout
    /// GraphH tiles use, because GAB gathers along in-edges.
    pub fn to_csc(&self) -> Csc {
        Csc::from_edges(self.num_vertices, &self.edges)
    }

    /// Summary statistics used by Table I and the cost models.
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(self)
    }
}

/// Errors produced by graph construction and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint is outside `0..num_vertices`.
    VertexOutOfRange {
        /// Offending vertex id.
        vertex: VertexId,
        /// Declared vertex count.
        num_vertices: VertexCount,
    },
    /// A text edge list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 -> 2
        let mut edges = EdgeList::new_unweighted();
        edges.push(Edge::new(0, 1));
        edges.push(Edge::new(0, 2));
        edges.push(Edge::new(1, 2));
        edges.push(Edge::new(2, 0));
        edges.push(Edge::new(3, 2));
        Graph::from_edges(4, edges).unwrap()
    }

    #[test]
    fn graph_counts() {
        let g = toy_graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert!(!g.is_weighted());
    }

    #[test]
    fn graph_degrees() {
        let g = toy_graph();
        assert_eq!(g.out_degrees(), &[2, 1, 1, 1]);
        assert_eq!(g.in_degrees(), &[1, 1, 3, 0]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 3);
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let mut edges = EdgeList::new_unweighted();
        edges.push(Edge::new(0, 9));
        let err = Graph::from_edges(4, edges).unwrap_err();
        match err {
            GraphError::VertexOutOfRange { vertex, .. } => assert_eq!(vertex, 9),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn csr_and_csc_agree_on_edge_count() {
        let g = toy_graph();
        assert_eq!(g.to_csr().num_edges(), g.num_edges());
        assert_eq!(g.to_csc().num_edges(), g.num_edges());
    }

    #[test]
    fn error_display_is_informative() {
        let err = GraphError::Parse {
            line: 3,
            message: "bad field".into(),
        };
        assert!(err.to_string().contains("line 3"));
    }
}
