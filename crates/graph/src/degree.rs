//! Degree computation and summary statistics.

use crate::edge::EdgeList;
use crate::ids::{VertexCount, VertexId};
use serde::{Deserialize, Serialize};

/// Compute `(in_degree, out_degree)` arrays for a graph over `num_vertices` vertices.
///
/// These arrays are exactly the ones the SPE persists to the DFS alongside the tiles
/// (Algorithm 4, lines 1–2): PageRank needs the out-degree array resident on every
/// server, and the tile splitter walks the in-degree array.
pub fn compute_degrees(num_vertices: VertexCount, edges: &EdgeList) -> (Vec<u32>, Vec<u32>) {
    let n = num_vertices as usize;
    let mut in_deg = vec![0u32; n];
    let mut out_deg = vec![0u32; n];
    for i in 0..edges.len() {
        out_deg[edges.sources()[i] as usize] += 1;
        in_deg[edges.targets()[i] as usize] += 1;
    }
    (in_deg, out_deg)
}

/// Aggregate degree statistics, mirroring the columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Average degree |E| / |V|.
    pub avg_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: u32,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Vertex with the maximum in-degree.
    pub max_in_vertex: VertexId,
    /// Vertex with the maximum out-degree.
    pub max_out_vertex: VertexId,
    /// Number of vertices with zero in- and out-degree.
    pub isolated_vertices: u64,
}

impl DegreeStats {
    /// Compute statistics from in/out degree arrays.
    pub fn from_degrees(in_degree: &[u32], out_degree: &[u32]) -> Self {
        assert_eq!(in_degree.len(), out_degree.len());
        let n = in_degree.len();
        let total_edges: u64 = out_degree.iter().map(|&d| u64::from(d)).sum();
        let mut max_in = 0u32;
        let mut max_out = 0u32;
        let mut max_in_v = 0;
        let mut max_out_v = 0;
        let mut isolated = 0u64;
        for v in 0..n {
            if in_degree[v] > max_in {
                max_in = in_degree[v];
                max_in_v = v as VertexId;
            }
            if out_degree[v] > max_out {
                max_out = out_degree[v];
                max_out_v = v as VertexId;
            }
            if in_degree[v] == 0 && out_degree[v] == 0 {
                isolated += 1;
            }
        }
        Self {
            avg_degree: if n == 0 {
                0.0
            } else {
                total_edges as f64 / n as f64
            },
            max_in_degree: max_in,
            max_out_degree: max_out,
            max_in_vertex: max_in_v,
            max_out_vertex: max_out_v,
            isolated_vertices: isolated,
        }
    }
}

/// A coarse histogram of a degree distribution on a log2 scale, used to check that
/// generated stand-in graphs are skewed the way the paper's web crawls are.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeHistogram {
    /// `buckets[i]` counts vertices with degree in `[2^i, 2^(i+1))`; bucket 0 also
    /// holds degree-0 vertices.
    pub buckets: Vec<u64>,
}

impl DegreeHistogram {
    /// Build the histogram of a degree array.
    pub fn from_degrees(degrees: &[u32]) -> Self {
        let mut buckets = vec![0u64; 33];
        for &d in degrees {
            let b = if d <= 1 {
                0
            } else {
                31 - (d.leading_zeros() as usize)
            };
            buckets[b] += 1;
        }
        while buckets.len() > 1 && *buckets.last().unwrap() == 0 {
            buckets.pop();
        }
        Self { buckets }
    }

    /// A crude skewness indicator: fraction of edges owned by the top 1% of vertices.
    pub fn top_percent_share(degrees: &[u32], percent: f64) -> f64 {
        if degrees.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<u32> = degrees.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sorted.iter().map(|&d| u64::from(d)).sum();
        if total == 0 {
            return 0.0;
        }
        let k = ((degrees.len() as f64 * percent / 100.0).ceil() as usize).max(1);
        let top: u64 = sorted[..k.min(sorted.len())]
            .iter()
            .map(|&d| u64::from(d))
            .sum();
        top as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    #[test]
    fn degrees_match_manual_count() {
        let mut edges = EdgeList::new_unweighted();
        edges.push(Edge::new(0, 1));
        edges.push(Edge::new(0, 2));
        edges.push(Edge::new(1, 2));
        let (ind, outd) = compute_degrees(3, &edges);
        assert_eq!(outd, vec![2, 1, 0]);
        assert_eq!(ind, vec![0, 1, 2]);
    }

    #[test]
    fn stats_find_max_and_isolated() {
        let in_deg = vec![0, 1, 5, 0];
        let out_deg = vec![3, 2, 1, 0];
        let s = DegreeStats::from_degrees(&in_deg, &out_deg);
        assert_eq!(s.max_in_degree, 5);
        assert_eq!(s.max_in_vertex, 2);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_out_vertex, 0);
        assert_eq!(s.isolated_vertices, 1);
        assert!((s.avg_degree - 1.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_log2() {
        let degrees = vec![0, 1, 2, 3, 4, 8, 9, 1000];
        let h = DegreeHistogram::from_degrees(&degrees);
        // degree 0 and 1 -> bucket 0 (2 vertices); 2,3 -> bucket 1; 4 -> bucket 2;
        // 8,9 -> bucket 3; 1000 -> bucket 9
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[3], 2);
        assert_eq!(h.buckets[9], 1);
    }

    #[test]
    fn top_share_of_uniform_distribution_is_small() {
        let degrees = vec![10u32; 1000];
        let share = DegreeHistogram::top_percent_share(&degrees, 1.0);
        assert!((share - 0.01).abs() < 1e-6);
    }

    #[test]
    fn top_share_of_skewed_distribution_is_large() {
        let mut degrees = vec![1u32; 990];
        degrees.extend(vec![1000u32; 10]);
        let share = DegreeHistogram::top_percent_share(&degrees, 1.0);
        assert!(share > 0.9);
    }

    #[test]
    fn empty_degree_stats() {
        let s = DegreeStats::from_degrees(&[], &[]);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(DegreeHistogram::top_percent_share(&[], 1.0), 0.0);
    }
}
