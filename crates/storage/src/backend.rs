//! Byte-level object stores.
//!
//! A backend maps string keys to immutable byte blobs — exactly the access pattern
//! GraphH needs for tiles (written once by the pre-processing engine, read many
//! times by workers). Three implementations:
//!
//! * [`MemoryBackend`] — in-process map; used by tests and by the "all data fits in
//!   the cache" configurations,
//! * [`LocalDiskBackend`] — one file per object under a root directory; the
//!   simulated servers' local disks,
//! * [`MeteredBackend`] — wraps any backend and charges every byte to an
//!   [`IoMeter`].

use crate::meter::IoMeter;
use crate::{Result, StorageError};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An object store keyed by string paths.
pub trait StorageBackend: Send + Sync {
    /// Store `data` under `key`, overwriting any existing object.
    fn put(&self, key: &str, data: &[u8]) -> Result<()>;

    /// Retrieve the object stored under `key`.
    fn get(&self, key: &str) -> Result<Vec<u8>>;

    /// Whether an object exists under `key`.
    fn exists(&self, key: &str) -> bool;

    /// Size in bytes of the object under `key`.
    fn size(&self, key: &str) -> Result<u64>;

    /// Delete the object under `key` (idempotent).
    fn delete(&self, key: &str) -> Result<()>;

    /// All keys with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Total bytes stored across all objects.
    fn total_bytes(&self) -> u64;
}

/// In-memory object store.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    objects: RwLock<BTreeMap<String, Arc<Vec<u8>>>>,
}

impl MemoryBackend {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        self.objects
            .write()
            .insert(key.to_string(), Arc::new(data.to_vec()));
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.objects
            .read()
            .get(key)
            .map(|v| v.as_ref().clone())
            .ok_or_else(|| StorageError::NotFound(key.to_string()))
    }

    fn exists(&self, key: &str) -> bool {
        self.objects.read().contains_key(key)
    }

    fn size(&self, key: &str) -> Result<u64> {
        self.objects
            .read()
            .get(key)
            .map(|v| v.len() as u64)
            .ok_or_else(|| StorageError::NotFound(key.to_string()))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.objects.write().remove(key);
        Ok(())
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.objects
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|v| v.len() as u64).sum()
    }
}

/// Object store backed by files under a root directory. Keys may contain `/`, which
/// maps to subdirectories.
#[derive(Debug)]
pub struct LocalDiskBackend {
    root: PathBuf,
}

impl LocalDiskBackend {
    /// Create (or reuse) a backend rooted at `root`.
    pub fn new(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// Absolute path of the file that would store `key`.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.root.join(key)
    }

    /// Root directory of this backend.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

impl StorageBackend for LocalDiskBackend {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        let path = self.path_for(key);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, data)?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        let path = self.path_for(key);
        std::fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::NotFound(key.to_string())
            } else {
                StorageError::Io(e)
            }
        })
    }

    fn exists(&self, key: &str) -> bool {
        self.path_for(key).is_file()
    }

    fn size(&self, key: &str) -> Result<u64> {
        let meta = std::fs::metadata(self.path_for(key)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::NotFound(key.to_string())
            } else {
                StorageError::Io(e)
            }
        })?;
        Ok(meta.len())
    }

    fn delete(&self, key: &str) -> Result<()> {
        match std::fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError::Io(e)),
        }
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut keys = Vec::new();
        collect_files(&self.root, &self.root, &mut keys);
        keys.retain(|k| k.starts_with(prefix));
        keys.sort();
        keys
    }

    fn total_bytes(&self) -> u64 {
        let mut keys = Vec::new();
        collect_files(&self.root, &self.root, &mut keys);
        keys.iter()
            .filter_map(|k| std::fs::metadata(self.root.join(k)).ok())
            .map(|m| m.len())
            .sum()
    }
}

fn collect_files(root: &Path, dir: &Path, keys: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_files(root, &path, keys);
        } else if let Ok(rel) = path.strip_prefix(root) {
            keys.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
}

/// Wraps a backend and charges all traffic to an [`IoMeter`].
pub struct MeteredBackend<B> {
    inner: B,
    meter: Arc<IoMeter>,
}

impl<B: StorageBackend> MeteredBackend<B> {
    /// Wrap `inner`, charging to `meter`.
    pub fn new(inner: B, meter: Arc<IoMeter>) -> Self {
        Self { inner, meter }
    }

    /// The meter this backend charges to.
    pub fn meter(&self) -> &Arc<IoMeter> {
        &self.meter
    }

    /// Access the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: StorageBackend> StorageBackend for MeteredBackend<B> {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        self.meter.record_write(data.len() as u64);
        self.inner.put(key, data)
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        let data = self.inner.get(key)?;
        self.meter.record_read(data.len() as u64);
        Ok(data)
    }

    fn exists(&self, key: &str) -> bool {
        self.inner.exists(key)
    }

    fn size(&self, key: &str) -> Result<u64> {
        self.inner.size(key)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.inner.delete(key)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }

    fn total_bytes(&self) -> u64 {
        self.inner.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn StorageBackend) {
        backend.put("tiles/tile-0", b"hello").unwrap();
        backend.put("tiles/tile-1", b"world!").unwrap();
        backend.put("degrees/out", b"123").unwrap();
        assert!(backend.exists("tiles/tile-0"));
        assert!(!backend.exists("missing"));
        assert_eq!(backend.get("tiles/tile-1").unwrap(), b"world!");
        assert_eq!(backend.size("tiles/tile-1").unwrap(), 6);
        assert_eq!(
            backend.list("tiles/"),
            vec!["tiles/tile-0".to_string(), "tiles/tile-1".to_string()]
        );
        assert_eq!(backend.total_bytes(), 5 + 6 + 3);
        backend.delete("tiles/tile-0").unwrap();
        assert!(!backend.exists("tiles/tile-0"));
        // Deleting again is fine.
        backend.delete("tiles/tile-0").unwrap();
        assert!(matches!(
            backend.get("tiles/tile-0"),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn memory_backend_contract() {
        exercise(&MemoryBackend::new());
    }

    #[test]
    fn local_disk_backend_contract() {
        let dir = tempfile::tempdir().unwrap();
        exercise(&LocalDiskBackend::new(dir.path()).unwrap());
    }

    #[test]
    fn overwrite_replaces_content() {
        let b = MemoryBackend::new();
        b.put("k", b"aaa").unwrap();
        b.put("k", b"bb").unwrap();
        assert_eq!(b.get("k").unwrap(), b"bb");
        assert_eq!(b.total_bytes(), 2);
    }

    #[test]
    fn metered_backend_counts_bytes() {
        let meter = IoMeter::shared();
        let b = MeteredBackend::new(MemoryBackend::new(), Arc::clone(&meter));
        b.put("a", &[0u8; 100]).unwrap();
        let _ = b.get("a").unwrap();
        let _ = b.get("a").unwrap();
        let snap = meter.snapshot();
        assert_eq!(snap.bytes_written, 100);
        assert_eq!(snap.bytes_read, 200);
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.read_ops, 2);
    }

    #[test]
    fn local_disk_nested_keys_map_to_directories() {
        let dir = tempfile::tempdir().unwrap();
        let b = LocalDiskBackend::new(dir.path()).unwrap();
        b.put("a/b/c/file.bin", b"x").unwrap();
        assert!(dir.path().join("a/b/c/file.bin").is_file());
        assert_eq!(b.list("a/b/"), vec!["a/b/c/file.bin".to_string()]);
    }
}
