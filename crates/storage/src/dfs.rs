//! A small distributed-file-system façade (the paper's HDFS/Lustre role, §III-A.1).
//!
//! The DFS centrally manages raw graphs, tiles and results. GraphH only needs
//! whole-file `put`/`get`/`list`, but to stay faithful to what an HDFS deployment
//! costs we also model block placement and a replication factor: every write is
//! charged `replication` times to the backing store, and the block map records which
//! simulated server each block replica lives on (round-robin placement).

use crate::backend::StorageBackend;
use crate::{Result, StorageError};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// DFS configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DfsConfig {
    /// Block size in bytes (HDFS default is 128 MiB; tests use small values).
    pub block_size: u64,
    /// Number of replicas per block.
    pub replication: u32,
    /// Number of storage nodes blocks are spread across.
    pub num_nodes: u32,
}

impl Default for DfsConfig {
    fn default() -> Self {
        Self {
            block_size: 128 * 1024 * 1024,
            replication: 3,
            num_nodes: 9,
        }
    }
}

/// Metadata the namespace keeps per file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileMetadata {
    /// File path (key).
    pub path: String,
    /// Length in bytes.
    pub len: u64,
    /// Number of blocks.
    pub num_blocks: u64,
    /// For each block, the storage nodes holding a replica.
    pub block_locations: Vec<Vec<u32>>,
}

/// The DFS: a namespace plus block placement over a shared backend.
pub struct Dfs<B> {
    backend: B,
    config: DfsConfig,
    namespace: RwLock<BTreeMap<String, FileMetadata>>,
    next_block_node: RwLock<u32>,
}

impl<B: StorageBackend> Dfs<B> {
    /// Create an empty DFS over `backend`.
    pub fn new(backend: B, config: DfsConfig) -> Result<Self> {
        if config.block_size == 0 {
            return Err(StorageError::InvalidArgument(
                "block_size must be > 0".into(),
            ));
        }
        if config.replication == 0 || config.num_nodes == 0 {
            return Err(StorageError::InvalidArgument(
                "replication and num_nodes must be > 0".into(),
            ));
        }
        Ok(Self {
            backend,
            config,
            namespace: RwLock::new(BTreeMap::new()),
            next_block_node: RwLock::new(0),
        })
    }

    /// The DFS configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// The backend (useful for inspecting meters in tests).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Write a whole file. Overwrites any existing file at `path`.
    pub fn put(&self, path: &str, data: &[u8]) -> Result<FileMetadata> {
        self.backend.put(path, data)?;
        // Charge the extra replicas: HDFS writes every block `replication` times.
        for _ in 1..self.config.replication {
            self.backend.put(&format!(".replica/{path}"), data)?;
        }
        let num_blocks = if data.is_empty() {
            0
        } else {
            data.len() as u64 / self.config.block_size
                + u64::from(!(data.len() as u64).is_multiple_of(self.config.block_size))
        };
        let mut locations = Vec::with_capacity(num_blocks as usize);
        {
            let mut next = self.next_block_node.write();
            for _ in 0..num_blocks {
                let mut replicas = Vec::with_capacity(self.config.replication as usize);
                for r in 0..self.config.replication.min(self.config.num_nodes) {
                    replicas.push((*next + r) % self.config.num_nodes);
                }
                *next = (*next + 1) % self.config.num_nodes;
                locations.push(replicas);
            }
        }
        let meta = FileMetadata {
            path: path.to_string(),
            len: data.len() as u64,
            num_blocks,
            block_locations: locations,
        };
        self.namespace
            .write()
            .insert(path.to_string(), meta.clone());
        Ok(meta)
    }

    /// Read a whole file.
    pub fn get(&self, path: &str) -> Result<Vec<u8>> {
        if !self.namespace.read().contains_key(path) {
            return Err(StorageError::NotFound(path.to_string()));
        }
        self.backend.get(path)
    }

    /// File metadata, if the file exists.
    pub fn stat(&self, path: &str) -> Option<FileMetadata> {
        self.namespace.read().get(path).cloned()
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.namespace.read().contains_key(path)
    }

    /// Delete a file (idempotent).
    pub fn delete(&self, path: &str) -> Result<()> {
        self.namespace.write().remove(path);
        self.backend.delete(path)?;
        self.backend.delete(&format!(".replica/{path}"))
    }

    /// All file paths under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.namespace
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Total logical bytes stored (not counting replicas).
    pub fn total_logical_bytes(&self) -> u64 {
        self.namespace.read().values().map(|m| m.len).sum()
    }
}

/// A DFS shared between simulated servers.
pub type SharedDfs<B> = Arc<Dfs<B>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemoryBackend, MeteredBackend};
    use crate::meter::IoMeter;

    fn small_config() -> DfsConfig {
        DfsConfig {
            block_size: 10,
            replication: 3,
            num_nodes: 4,
        }
    }

    #[test]
    fn put_get_roundtrip_and_metadata() {
        let dfs = Dfs::new(MemoryBackend::new(), small_config()).unwrap();
        let data = vec![7u8; 35];
        let meta = dfs.put("tiles/tile-0.bin", &data).unwrap();
        assert_eq!(meta.len, 35);
        assert_eq!(meta.num_blocks, 4); // ceil(35/10)
        assert_eq!(meta.block_locations.len(), 4);
        for replicas in &meta.block_locations {
            assert_eq!(replicas.len(), 3);
            for &node in replicas {
                assert!(node < 4);
            }
        }
        assert_eq!(dfs.get("tiles/tile-0.bin").unwrap(), data);
        assert!(dfs.exists("tiles/tile-0.bin"));
        assert_eq!(dfs.total_logical_bytes(), 35);
    }

    #[test]
    fn replication_charges_backend_writes() {
        let meter = IoMeter::shared();
        let backend = MeteredBackend::new(MemoryBackend::new(), Arc::clone(&meter));
        let dfs = Dfs::new(backend, small_config()).unwrap();
        dfs.put("f", &[0u8; 100]).unwrap();
        // 3 replicas of 100 bytes.
        assert_eq!(meter.snapshot().bytes_written, 300);
    }

    #[test]
    fn list_and_delete() {
        let dfs = Dfs::new(MemoryBackend::new(), small_config()).unwrap();
        dfs.put("tiles/0", b"a").unwrap();
        dfs.put("tiles/1", b"b").unwrap();
        dfs.put("degrees/out", b"c").unwrap();
        assert_eq!(dfs.list("tiles/").len(), 2);
        dfs.delete("tiles/0").unwrap();
        assert_eq!(dfs.list("tiles/").len(), 1);
        assert!(!dfs.exists("tiles/0"));
        assert!(matches!(dfs.get("tiles/0"), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn empty_file_has_zero_blocks() {
        let dfs = Dfs::new(MemoryBackend::new(), small_config()).unwrap();
        let meta = dfs.put("empty", b"").unwrap();
        assert_eq!(meta.num_blocks, 0);
        assert_eq!(dfs.get("empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(Dfs::new(
            MemoryBackend::new(),
            DfsConfig {
                block_size: 0,
                ..small_config()
            }
        )
        .is_err());
        assert!(Dfs::new(
            MemoryBackend::new(),
            DfsConfig {
                replication: 0,
                ..small_config()
            }
        )
        .is_err());
    }

    #[test]
    fn block_placement_round_robins_across_nodes() {
        let dfs = Dfs::new(MemoryBackend::new(), small_config()).unwrap();
        let mut first_nodes = Vec::new();
        for i in 0..8 {
            let meta = dfs.put(&format!("f{i}"), &[0u8; 10]).unwrap();
            first_nodes.push(meta.block_locations[0][0]);
        }
        // All 4 nodes should appear as a primary location.
        let distinct: std::collections::HashSet<_> = first_nodes.iter().collect();
        assert_eq!(distinct.len(), 4);
    }
}
