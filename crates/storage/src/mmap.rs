//! Memory-mapped access to locally persisted tiles.
//!
//! When a tile misses the edge cache, a GraphH worker reads it from the server's
//! local disk (§III-C.3). Mapping the file avoids a copy through a userspace buffer
//! and mirrors how a production implementation would stream large tiles; the
//! metering hook still records the logical bytes touched so the cost model charges
//! the read to the simulated disk.

use crate::meter::IoMeter;
use crate::{Result, StorageError};
use memmap2::Mmap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A read-only memory-mapped file.
#[derive(Debug)]
pub struct MappedFile {
    path: PathBuf,
    map: Mmap,
}

impl MappedFile {
    /// Map `path` read-only. Empty files are supported (zero-length map).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::NotFound(path.display().to_string())
            } else {
                StorageError::Io(e)
            }
        })?;
        // Safety: the file is opened read-only and GraphH never mutates tile files
        // after the pre-processing engine has written them.
        let map = unsafe { Mmap::map(&file)? };
        Ok(Self { path, map })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.map
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Path this mapping came from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads tile files from a local directory via mmap, charging reads to a meter.
pub struct MmapTileReader {
    root: PathBuf,
    meter: Arc<IoMeter>,
}

impl MmapTileReader {
    /// A reader rooted at `root`, charging to `meter`.
    pub fn new(root: impl AsRef<Path>, meter: Arc<IoMeter>) -> Self {
        Self {
            root: root.as_ref().to_path_buf(),
            meter,
        }
    }

    /// Map the file stored under `key` and charge its full length as a read.
    pub fn read(&self, key: &str) -> Result<MappedFile> {
        let mapped = MappedFile::open(self.root.join(key))?;
        self.meter.record_read(mapped.len() as u64);
        Ok(mapped)
    }

    /// The meter reads are charged to.
    pub fn meter(&self) -> &Arc<IoMeter> {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapped_file_reads_contents() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("tile.bin");
        std::fs::write(&path, b"abcdef").unwrap();
        let m = MappedFile::open(&path).unwrap();
        assert_eq!(m.bytes(), b"abcdef");
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert_eq!(m.path(), path);
    }

    #[test]
    fn missing_file_is_not_found() {
        let dir = tempfile::tempdir().unwrap();
        let err = MappedFile::open(dir.path().join("nope")).unwrap_err();
        assert!(matches!(err, StorageError::NotFound(_)));
    }

    #[test]
    fn reader_charges_meter() {
        let dir = tempfile::tempdir().unwrap();
        std::fs::write(dir.path().join("t0"), vec![1u8; 128]).unwrap();
        let meter = IoMeter::shared();
        let reader = MmapTileReader::new(dir.path(), Arc::clone(&meter));
        let m = reader.read("t0").unwrap();
        assert_eq!(m.len(), 128);
        assert_eq!(meter.snapshot().bytes_read, 128);
        assert_eq!(reader.meter().snapshot().read_ops, 1);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("empty");
        std::fs::write(&path, b"").unwrap();
        let m = MappedFile::open(&path).unwrap();
        assert!(m.is_empty());
    }
}
