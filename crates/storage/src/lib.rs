//! # graphh-storage
//!
//! Storage substrate for the GraphH reproduction.
//!
//! The paper stores raw graphs, partitioned tiles and results in a distributed file
//! system (HDFS or Lustre, §III-A.1) and keeps each server's assigned tiles on its
//! local disk. This crate provides both layers:
//!
//! * [`backend`] — byte-level object stores ([`backend::MemoryBackend`],
//!   [`backend::LocalDiskBackend`]) behind one trait, plus a metering wrapper that
//!   counts every byte moved (the cluster cost model consumes those counters),
//! * [`dfs`] — a small distributed-file-system façade (namespace, block placement,
//!   replication factor) over any backend,
//! * [`meter`] — shared I/O counters,
//! * [`mmap`] — memory-mapped read access to locally persisted tiles (the
//!   out-of-core path GraphH workers use when a tile misses the edge cache).

pub mod backend;
pub mod dfs;
pub mod meter;
pub mod mmap;

pub use backend::{LocalDiskBackend, MemoryBackend, MeteredBackend, StorageBackend};
pub use dfs::{Dfs, DfsConfig, FileMetadata};
pub use meter::{IoMeter, IoSnapshot};

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// The requested object does not exist.
    NotFound(String),
    /// An object with this name already exists and overwrite was not requested.
    AlreadyExists(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Invalid argument (e.g. zero block size).
    InvalidArgument(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NotFound(k) => write!(f, "object not found: {k}"),
            StorageError::AlreadyExists(k) => write!(f, "object already exists: {k}"),
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
