//! I/O metering: every byte the engines move through storage is counted here so the
//! cluster cost model can convert traffic into simulated time (DESIGN.md §2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe counters for one storage device (a server's local disk, or the DFS).
#[derive(Debug, Default)]
pub struct IoMeter {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
}

impl IoMeter {
    /// A fresh meter wrapped in an [`Arc`] so several backends can share it.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record a read of `bytes` bytes.
    pub fn record_read(&self, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a write of `bytes` bytes.
    pub fn record_write(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of an [`IoMeter`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
}

impl IoSnapshot {
    /// Difference `self - earlier`, useful for per-superstep accounting.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            read_ops: self.read_ops - earlier.read_ops,
            write_ops: self.write_ops - earlier.write_ops,
        }
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_resets() {
        let m = IoMeter::default();
        m.record_read(100);
        m.record_read(50);
        m.record_write(10);
        let s = m.snapshot();
        assert_eq!(s.bytes_read, 150);
        assert_eq!(s.bytes_written, 10);
        assert_eq!(s.read_ops, 2);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.total_bytes(), 160);
        m.reset();
        assert_eq!(m.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_since_computes_delta() {
        let m = IoMeter::default();
        m.record_read(100);
        let a = m.snapshot();
        m.record_read(40);
        m.record_write(5);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.bytes_read, 40);
        assert_eq!(d.bytes_written, 5);
        assert_eq!(d.read_ops, 1);
    }

    #[test]
    fn meter_is_thread_safe() {
        let m = IoMeter::shared();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_read(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().bytes_read, 4000);
    }
}
