//! Input-format size models (Table IV).
//!
//! Each system in the paper's evaluation converts the raw edge list into its own
//! on-disk input format before computation. Table IV compares those footprints.
//! The formulas here reproduce that comparison for any graph, using the same layout
//! assumptions the systems' documentation describes:
//!
//! * **Edge list (CSV)** — decimal text, two ids per line.
//! * **Pregel+ / GraphD** — binary adjacency lists: per vertex an id + degree, then
//!   4-byte neighbour ids (out-edges only).
//! * **Giraph** — JSON-ish text with per-vertex overhead, roughly 1.4× the binary
//!   adjacency size (Giraph's `VertexInputFormat` keeps ids and values as text).
//! * **Chaos** — edge array of (src, dst) pairs, 8 bytes per edge, plus per-partition
//!   vertex tables.
//! * **GraphH** — the tiles produced by the SPE plus the two degree arrays.

use crate::spe::PartitionedGraph;
use graphh_graph::GraphStats;
use serde::{Deserialize, Serialize};

/// Input footprint of every system for one graph (bytes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputSizes {
    /// Raw CSV edge list.
    pub edge_list_csv: u64,
    /// Pregel+ / GraphD binary adjacency lists.
    pub pregel_like: u64,
    /// Giraph text vertex input.
    pub giraph: u64,
    /// Chaos streaming-partition input.
    pub chaos: u64,
    /// GraphH tiles + degree arrays.
    pub graphh: u64,
}

impl InputSizes {
    /// Estimate all footprints from graph statistics (paper-scale datasets included,
    /// since only |V|, |E| and the CSV size are needed).
    pub fn from_stats(stats: &GraphStats) -> Self {
        let v = stats.num_vertices;
        let e = stats.num_edges;
        let csv = if stats.csv_size_bytes > 0 {
            stats.csv_size_bytes
        } else {
            // ~2 ids of ~7 digits + separator + newline.
            e * 16
        };
        // Pregel+/GraphD: per vertex 8 bytes (id + degree), per edge 4 bytes.
        let pregel_like = v * 8 + e * 4;
        // Giraph text input: ~40% larger than the binary adjacency representation.
        let giraph = (pregel_like as f64 * 1.4) as u64;
        // Chaos: 8 bytes per edge plus 8 bytes per vertex of partition metadata.
        let chaos = e * 8 + v * 8;
        // GraphH tiles: 4 bytes per edge (source id; targets are implicit in the CSR
        // offsets) + 8 bytes per vertex of offsets + 8 bytes per vertex of degrees.
        let graphh = e * 4 + v * 16;
        Self {
            edge_list_csv: csv,
            pregel_like,
            giraph,
            chaos,
            graphh,
        }
    }

    /// Exact footprints for a graph that has actually been partitioned: the GraphH
    /// column uses the real serialized tile size instead of the estimate.
    pub fn from_partitioned(stats: &GraphStats, partitioned: &PartitionedGraph) -> Self {
        let mut sizes = Self::from_stats(stats);
        sizes.graphh = partitioned.total_input_bytes();
        sizes
    }

    /// GraphH's footprint relative to the raw CSV (the paper reports ~0.22 for
    /// EU-2015: 378 GB vs 1.7 TB).
    pub fn graphh_to_csv_ratio(&self) -> f64 {
        if self.edge_list_csv == 0 {
            return 0.0;
        }
        self.graphh as f64 / self.edge_list_csv as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spe::{Spe, SpeConfig};
    use graphh_graph::datasets::Dataset;
    use graphh_graph::generators::{GraphGenerator, RmatGenerator};

    #[test]
    fn paper_scale_ordering_matches_table4() {
        // For every dataset the paper reports GraphH < Chaos < Pregel+ < Giraph < CSV.
        for d in Dataset::ALL {
            let sizes = InputSizes::from_stats(&d.paper_stats());
            assert!(sizes.graphh < sizes.chaos, "{}", d.name());
            assert!(sizes.chaos < sizes.pregel_like * 2, "{}", d.name());
            assert!(sizes.pregel_like < sizes.giraph, "{}", d.name());
            assert!(sizes.giraph < sizes.edge_list_csv, "{}", d.name());
        }
    }

    #[test]
    fn eu2015_graphh_footprint_is_roughly_a_fifth_of_csv() {
        let sizes = InputSizes::from_stats(&Dataset::Eu2015.paper_stats());
        let ratio = sizes.graphh_to_csv_ratio();
        // Paper: 378 GB / 1.7 TB ≈ 0.22.
        assert!((0.15..0.35).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn partitioned_sizes_use_real_tile_bytes() {
        let g = RmatGenerator::new(8, 6).generate(5);
        let p = Spe::partition(&g, &SpeConfig::new("x", 256)).unwrap();
        let stats = g.stats();
        let est = InputSizes::from_stats(&stats);
        let exact = InputSizes::from_partitioned(&stats, &p);
        assert_eq!(exact.graphh, p.total_input_bytes());
        // The estimate and the real footprint should be within 2x of each other.
        let ratio = exact.graphh as f64 / est.graphh as f64;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
