//! Splitter construction (Algorithm 4, lines 3–8).
//!
//! The splitter is a monotone array of vertex ids that cuts the target-vertex space
//! into `P` tiles: vertex `v`'s in-edges belong to tile `t` iff
//! `splitter[t] <= v < splitter[t + 1]`. Walking the in-degree array, vertices are
//! accumulated into the current tile until it holds at least `S = |E| / P` edges.

use crate::{PartitionError, Result};
use graphh_graph::ids::{TileId, VertexId};
use serde::{Deserialize, Serialize};

/// A tile splitter: the boundaries of every tile's target-vertex range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Splitter {
    /// `boundaries[t]..boundaries[t+1]` is tile `t`'s target range; the first entry
    /// is always 0 and the last is `num_vertices`.
    boundaries: Vec<VertexId>,
}

impl Splitter {
    /// Build a splitter from the in-degree array with average tile size `avg_tile_size`
    /// (the paper's `S`, §III-B.3).
    pub fn from_in_degrees(in_degrees: &[u32], avg_tile_size: u64) -> Result<Self> {
        if avg_tile_size == 0 {
            return Err(PartitionError::InvalidConfig(
                "average tile size must be at least 1 edge".into(),
            ));
        }
        let mut boundaries = vec![0 as VertexId];
        let mut size = 0u64;
        for (v, &d) in in_degrees.iter().enumerate() {
            size += u64::from(d);
            if size >= avg_tile_size {
                boundaries.push(v as VertexId + 1);
                size = 0;
            }
        }
        let n = in_degrees.len() as VertexId;
        if *boundaries.last().unwrap() != n {
            boundaries.push(n);
        }
        // A graph with zero vertices still gets one (empty) tile boundary pair.
        if boundaries.len() == 1 {
            boundaries.push(0);
        }
        Ok(Self { boundaries })
    }

    /// Build a splitter that produces (about) `num_tiles` tiles.
    pub fn with_tile_count(in_degrees: &[u32], num_tiles: u32) -> Result<Self> {
        if num_tiles == 0 {
            return Err(PartitionError::InvalidConfig(
                "tile count must be at least 1".into(),
            ));
        }
        let total: u64 = in_degrees.iter().map(|&d| u64::from(d)).sum();
        let avg = (total / u64::from(num_tiles)).max(1);
        Self::from_in_degrees(in_degrees, avg)
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> u32 {
        (self.boundaries.len() - 1) as u32
    }

    /// The target-vertex range `[start, end)` of tile `t`.
    pub fn tile_range(&self, t: TileId) -> (VertexId, VertexId) {
        (self.boundaries[t as usize], self.boundaries[t as usize + 1])
    }

    /// The tile that owns target vertex `v` (binary search over the boundaries).
    pub fn tile_of(&self, v: VertexId) -> TileId {
        debug_assert!(v < *self.boundaries.last().unwrap());
        // partition_point returns the number of boundaries <= v, so subtracting one
        // yields the tile whose range contains v.
        let idx = self.boundaries.partition_point(|&b| b <= v);
        (idx - 1) as TileId
    }

    /// The raw boundary array.
    pub fn boundaries(&self) -> &[VertexId] {
        &self.boundaries
    }

    /// Edge count of every tile, given the in-degree array the splitter was built from.
    pub fn tile_edge_counts(&self, in_degrees: &[u32]) -> Vec<u64> {
        (0..self.num_tiles())
            .map(|t| {
                let (lo, hi) = self.tile_range(t);
                in_degrees[lo as usize..hi as usize]
                    .iter()
                    .map(|&d| u64::from(d))
                    .sum()
            })
            .collect()
    }

    /// Imbalance factor: max tile edge count over the mean (1.0 = perfectly even).
    pub fn imbalance(&self, in_degrees: &[u32]) -> f64 {
        let counts = self.tile_edge_counts(in_degrees);
        let total: u64 = counts.iter().sum();
        if total == 0 || counts.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / counts.len() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_covers_all_vertices_in_order() {
        let in_deg = vec![1u32, 1, 1, 1, 1, 1, 1, 1];
        let s = Splitter::from_in_degrees(&in_deg, 3).unwrap();
        let b = s.boundaries();
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 8);
        for w in b.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Tiles of ~3 edges each: [0,3), [3,6), [6,8)
        assert_eq!(s.num_tiles(), 3);
        assert_eq!(s.tile_range(0), (0, 3));
        assert_eq!(s.tile_range(2), (6, 8));
    }

    #[test]
    fn tile_of_matches_ranges() {
        let in_deg = vec![5u32, 0, 3, 2, 7, 1];
        let s = Splitter::from_in_degrees(&in_deg, 6).unwrap();
        for v in 0..in_deg.len() as u32 {
            let t = s.tile_of(v);
            let (lo, hi) = s.tile_range(t);
            assert!(v >= lo && v < hi, "vertex {v} tile {t} range [{lo},{hi})");
        }
    }

    #[test]
    fn high_degree_vertex_gets_its_own_tile() {
        let in_deg = vec![1u32, 100, 1, 1];
        let s = Splitter::from_in_degrees(&in_deg, 10).unwrap();
        let t = s.tile_of(1);
        let (lo, hi) = s.tile_range(t);
        // The hub closes its tile immediately after being added.
        assert!(hi - lo <= 2, "hub tile range [{lo},{hi}) too wide");
    }

    #[test]
    fn edge_counts_sum_to_total() {
        let in_deg: Vec<u32> = (0..100).map(|i| (i % 7) as u32).collect();
        let total: u64 = in_deg.iter().map(|&d| u64::from(d)).sum();
        let s = Splitter::from_in_degrees(&in_deg, 20).unwrap();
        let counts = s.tile_edge_counts(&in_deg);
        assert_eq!(counts.iter().sum::<u64>(), total);
        assert!(s.imbalance(&in_deg) >= 1.0);
    }

    #[test]
    fn with_tile_count_hits_requested_granularity() {
        let in_deg = vec![2u32; 1000];
        let s = Splitter::with_tile_count(&in_deg, 10).unwrap();
        assert!((9..=11).contains(&s.num_tiles()), "{} tiles", s.num_tiles());
    }

    #[test]
    fn zero_tile_size_rejected() {
        assert!(Splitter::from_in_degrees(&[1, 2, 3], 0).is_err());
        assert!(Splitter::with_tile_count(&[1, 2, 3], 0).is_err());
    }

    #[test]
    fn empty_graph_has_one_empty_tile() {
        let s = Splitter::from_in_degrees(&[], 10).unwrap();
        assert_eq!(s.num_tiles(), 1);
        assert_eq!(s.tile_range(0), (0, 0));
    }
}
