//! The pre-processing engine ("SPE", paper §III-B, Algorithm 4).
//!
//! The original system runs three Spark map-reduce jobs; here the same three logical
//! passes run as data-parallel steps over the in-memory edge list, on a
//! [`graphh_pool::WorkerPool`] (the same persistent pool substrate the engine's
//! tile phases run on):
//!
//! 1. degree counting,
//! 2. splitter construction from the in-degree array,
//! 3. grouping edges by tile — contiguous edge-list chunks are bucketed per
//!    tile in parallel and the per-chunk buckets merged **in chunk order**
//!    (preserving the original edge order, so the output is bit-identical to
//!    a single sequential pass) — and encoding each tile as CSR, one tile per
//!    pool item.
//!
//! The output — tiles plus the in/out-degree arrays — can be persisted to the DFS
//! once and reused by every vertex-centric program, exactly like the paper's
//! pre-processing results.

use crate::splitter::Splitter;
use crate::tile::Tile;
use crate::{PartitionError, Result};
use graphh_graph::ids::{TileId, VertexId};
use graphh_graph::{Graph, GraphStats};
use graphh_pool::WorkerPool;
use graphh_storage::{Dfs, StorageBackend};
use serde::{Deserialize, Serialize};

/// Configuration of the pre-processing engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeConfig {
    /// Logical name of the graph; used as the DFS key prefix.
    pub graph_name: String,
    /// Average number of edges per tile (the paper's `S`). The paper recommends
    /// 15–25 million for production graphs; tests and the scaled-down experiments use
    /// much smaller values so several tiles exist per server.
    pub avg_tile_size: u64,
}

impl SpeConfig {
    /// Config with an explicit average tile size.
    pub fn new(graph_name: impl Into<String>, avg_tile_size: u64) -> Self {
        Self {
            graph_name: graph_name.into(),
            avg_tile_size,
        }
    }

    /// Config that aims for a given number of tiles on a specific graph.
    pub fn with_tile_count(graph_name: impl Into<String>, graph: &Graph, num_tiles: u32) -> Self {
        let avg = (graph.num_edges() / u64::from(num_tiles.max(1))).max(1);
        Self::new(graph_name, avg)
    }
}

/// The artifact the SPE produces: tiles, degree arrays and summary statistics.
#[derive(Debug, Clone)]
pub struct PartitionedGraph {
    /// Logical graph name (DFS prefix).
    pub graph_name: String,
    /// The tiles, indexed by tile id.
    pub tiles: Vec<Tile>,
    /// The splitter that produced the tiles.
    pub splitter: Splitter,
    /// In-degree of every vertex.
    pub in_degrees: Vec<u32>,
    /// Out-degree of every vertex.
    pub out_degrees: Vec<u32>,
    /// Statistics of the source graph.
    pub stats: GraphStats,
}

/// The pre-processing engine.
#[derive(Debug, Default)]
pub struct Spe;

/// Floor on edges per bucketing chunk: below this, the per-chunk bucket
/// allocation outweighs the parallelism.
const MIN_EDGES_PER_CHUNK: usize = 8 * 1024;

impl Spe {
    /// Partition a graph into tiles (stage one of GraphH's two-stage
    /// partitioning) on a freshly sized worker pool. Callers that already own
    /// a pool — the `graphh-node` launcher partitions and then runs on one —
    /// should use [`Spe::partition_with_pool`] to avoid standing up a second
    /// set of threads.
    pub fn partition(graph: &Graph, config: &SpeConfig) -> Result<PartitionedGraph> {
        Self::partition_with_pool(graph, config, &WorkerPool::with_host_parallelism())
    }

    /// Partition a graph into tiles using the caller's worker pool for the
    /// data-parallel passes. The result is bit-identical for any pool size
    /// (chunked bucketing merges in chunk order, tiles are built per index).
    pub fn partition_with_pool(
        graph: &Graph,
        config: &SpeConfig,
        pool: &WorkerPool,
    ) -> Result<PartitionedGraph> {
        if config.avg_tile_size == 0 {
            return Err(PartitionError::InvalidConfig(
                "avg_tile_size must be at least 1".into(),
            ));
        }
        let in_degrees = graph.in_degrees().to_vec();
        let out_degrees = graph.out_degrees().to_vec();
        let splitter = Splitter::from_in_degrees(&in_degrees, config.avg_tile_size)?;

        // Group edges by tile: contiguous edge-list chunks are bucketed in
        // parallel, then the per-chunk buckets are merged in chunk order —
        // chunks partition the edge list in order, so every tile sees its
        // edges in exactly the order a single sequential pass would produce.
        let num_tiles = splitter.num_tiles() as usize;
        let edges = graph.edges();
        let num_edges = edges.len();
        let num_chunks = (pool.threads() * 4)
            .min(num_edges.div_ceil(MIN_EDGES_PER_CHUNK))
            .max(1);
        let chunk_len = num_edges.div_ceil(num_chunks);
        let chunked: Vec<Vec<Vec<(VertexId, VertexId, f32)>>> =
            pool.fork_join_ordered(num_chunks, |c| {
                let start = c * chunk_len;
                let end = ((c + 1) * chunk_len).min(num_edges);
                let mut buckets: Vec<Vec<(VertexId, VertexId, f32)>> = vec![Vec::new(); num_tiles];
                for i in start..end {
                    let e = edges.get(i);
                    buckets[splitter.tile_of(e.dst) as usize].push((e.src, e.dst, e.weight));
                }
                buckets
            });
        let mut per_tile_edges: Vec<Vec<(VertexId, VertexId, f32)>> = vec![Vec::new(); num_tiles];
        for buckets in chunked {
            for (t, mut bucket) in buckets.into_iter().enumerate() {
                if per_tile_edges[t].is_empty() {
                    // Common case (few chunks): steal the allocation.
                    per_tile_edges[t] = std::mem::take(&mut bucket);
                } else {
                    per_tile_edges[t].extend_from_slice(&bucket);
                }
            }
        }

        // Encode each tile as CSR, one pool item per tile.
        let weighted = graph.is_weighted();
        let per_tile_edges = &per_tile_edges;
        let tiles: Vec<Tile> = pool.fork_join_ordered(num_tiles, |t| {
            let (lo, hi) = splitter.tile_range(t as TileId);
            let mut adjacency: Vec<Vec<(VertexId, f32)>> = vec![Vec::new(); (hi - lo) as usize];
            for &(src, dst, w) in &per_tile_edges[t] {
                adjacency[(dst - lo) as usize].push((src, w));
            }
            // Sort each adjacency list by source id: deterministic output and
            // better delta compression.
            for list in &mut adjacency {
                list.sort_unstable_by_key(|&(s, _)| s);
            }
            Tile::from_adjacency(t as TileId, lo, &adjacency, weighted)
        });

        Ok(PartitionedGraph {
            graph_name: config.graph_name.clone(),
            tiles,
            splitter,
            in_degrees,
            out_degrees,
            stats: graph.stats().named(config.graph_name.clone()),
        })
    }
}

impl PartitionedGraph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.in_degrees.len() as u64
    }

    /// Number of edges across all tiles.
    pub fn num_edges(&self) -> u64 {
        self.tiles.iter().map(Tile::num_edges).sum()
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> u32 {
        self.tiles.len() as u32
    }

    /// Total serialized size of all tiles in bytes — the "GraphH" column of Table IV
    /// minus the two degree arrays.
    pub fn total_tile_bytes(&self) -> u64 {
        self.tiles.iter().map(Tile::serialized_size).sum()
    }

    /// Total input footprint (tiles + degree arrays), i.e. the Table IV entry.
    pub fn total_input_bytes(&self) -> u64 {
        self.total_tile_bytes() + 2 * 4 * self.num_vertices()
    }

    /// Largest tile size in edges (the balance property the two-stage scheme targets).
    pub fn max_tile_edges(&self) -> u64 {
        self.tiles.iter().map(Tile::num_edges).max().unwrap_or(0)
    }

    /// Persist tiles and degree arrays to a DFS under `graph_name/`.
    pub fn persist<B: StorageBackend>(&self, dfs: &Dfs<B>) -> Result<()> {
        for tile in &self.tiles {
            dfs.put(
                &Tile::storage_key(&self.graph_name, tile.tile_id),
                &tile.to_bytes(),
            )?;
        }
        dfs.put(
            &format!("{}/degrees/in.bin", self.graph_name),
            &encode_u32_array(&self.in_degrees),
        )?;
        dfs.put(
            &format!("{}/degrees/out.bin", self.graph_name),
            &encode_u32_array(&self.out_degrees),
        )?;
        Ok(())
    }

    /// Load a previously persisted partitioned graph from the DFS.
    pub fn load<B: StorageBackend>(dfs: &Dfs<B>, graph_name: &str) -> Result<Self> {
        let tile_keys = dfs.list(&format!("{graph_name}/tiles/"));
        if tile_keys.is_empty() {
            return Err(PartitionError::Corrupt(format!(
                "no tiles found under {graph_name}/tiles/"
            )));
        }
        let mut tiles = Vec::with_capacity(tile_keys.len());
        for key in tile_keys {
            let bytes = dfs.get(&key)?;
            tiles.push(Tile::from_bytes(&bytes)?);
        }
        tiles.sort_by_key(|t| t.tile_id);
        let in_degrees = decode_u32_array(&dfs.get(&format!("{graph_name}/degrees/in.bin"))?)?;
        let out_degrees = decode_u32_array(&dfs.get(&format!("{graph_name}/degrees/out.bin"))?)?;
        let splitter = Splitter::from_in_degrees(
            &in_degrees,
            tiles.iter().map(Tile::num_edges).max().unwrap_or(1).max(1),
        )?;
        let num_edges: u64 = tiles.iter().map(Tile::num_edges).sum();
        let num_vertices = in_degrees.len() as u64;
        let stats = GraphStats {
            name: graph_name.to_string(),
            num_vertices,
            num_edges,
            avg_degree: if num_vertices == 0 {
                0.0
            } else {
                num_edges as f64 / num_vertices as f64
            },
            max_in_degree: in_degrees.iter().copied().max().unwrap_or(0),
            max_out_degree: out_degrees.iter().copied().max().unwrap_or(0),
            csv_size_bytes: 0,
            weighted: tiles.iter().any(Tile::is_weighted),
        };
        Ok(Self {
            graph_name: graph_name.to_string(),
            tiles,
            splitter,
            in_degrees,
            out_degrees,
            stats,
        })
    }
}

fn encode_u32_array(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4 + 8);
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_u32_array(data: &[u8]) -> Result<Vec<u32>> {
    if data.len() < 8 {
        return Err(PartitionError::Corrupt("degree array truncated".into()));
    }
    let len = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
    if data.len() != 8 + len * 4 {
        return Err(PartitionError::Corrupt(
            "degree array length mismatch".into(),
        ));
    }
    Ok(data[8..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphh_graph::generators::{GraphGenerator, RmatGenerator};
    use graphh_storage::{DfsConfig, MemoryBackend};

    fn partitioned(avg_tile_size: u64) -> (Graph, PartitionedGraph) {
        let g = RmatGenerator::new(9, 8).generate(3);
        let p = Spe::partition(&g, &SpeConfig::new("rmat9", avg_tile_size)).unwrap();
        (g, p)
    }

    #[test]
    fn partition_conserves_edges_and_vertices() {
        let (g, p) = partitioned(200);
        assert_eq!(p.num_edges(), g.num_edges());
        assert_eq!(p.num_vertices(), g.num_vertices());
        assert_eq!(u64::from(p.num_tiles()), p.tiles.len() as u64);
        assert!(p.num_tiles() > 1);
    }

    #[test]
    fn every_edge_lands_in_the_tile_owning_its_target() {
        let (g, p) = partitioned(500);
        // Rebuild the multiset of edges from the tiles and compare with the input.
        let mut from_tiles: Vec<(u32, u32)> = Vec::new();
        for t in &p.tiles {
            for target in t.targets() {
                for (src, _) in t.in_edges(target) {
                    from_tiles.push((src, target));
                }
                assert!(p.splitter.tile_of(target) == t.tile_id);
            }
        }
        let mut from_graph: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        from_tiles.sort_unstable();
        from_graph.sort_unstable();
        assert_eq!(from_tiles, from_graph);
    }

    #[test]
    fn tiles_are_balanced_up_to_hub_vertices() {
        let (g, p) = partitioned(300);
        let max_in = *g.in_degrees().iter().max().unwrap() as u64;
        // A tile can exceed the target size only because its last vertex is a hub.
        assert!(p.max_tile_edges() <= 300 + max_in);
    }

    #[test]
    fn tile_degrees_match_graph_in_degrees() {
        let (g, p) = partitioned(250);
        for t in &p.tiles {
            for target in t.targets() {
                assert_eq!(t.in_degree(target), g.in_degree(target));
            }
        }
    }

    #[test]
    fn persist_and_load_roundtrip() {
        let (_, p) = partitioned(400);
        let dfs = Dfs::new(MemoryBackend::new(), DfsConfig::default()).unwrap();
        p.persist(&dfs).unwrap();
        let loaded = PartitionedGraph::load(&dfs, "rmat9").unwrap();
        assert_eq!(loaded.num_tiles(), p.num_tiles());
        assert_eq!(loaded.num_edges(), p.num_edges());
        assert_eq!(loaded.in_degrees, p.in_degrees);
        assert_eq!(loaded.out_degrees, p.out_degrees);
        assert_eq!(loaded.tiles[0], p.tiles[0]);
    }

    #[test]
    fn load_missing_graph_is_an_error() {
        let dfs = Dfs::new(MemoryBackend::new(), DfsConfig::default()).unwrap();
        assert!(PartitionedGraph::load(&dfs, "nope").is_err());
    }

    #[test]
    fn tile_format_is_smaller_than_csv() {
        let (g, p) = partitioned(300);
        assert!(p.total_input_bytes() < g.edges().csv_size_bytes() * 2);
        assert!(p.total_tile_bytes() > 0);
    }

    #[test]
    fn zero_tile_size_rejected() {
        let g = RmatGenerator::new(4, 2).generate(1);
        assert!(Spe::partition(&g, &SpeConfig::new("x", 0)).is_err());
    }

    /// The data-parallel bucketing must be invisible: any pool size yields
    /// byte-for-byte the tiles a sequential pass produces (chunk-order merge
    /// preserves edge order, so even equal-key sort outcomes match).
    #[test]
    fn partition_is_identical_for_any_pool_size() {
        let g = RmatGenerator::new(9, 8).generate(17);
        let reference =
            Spe::partition_with_pool(&g, &SpeConfig::new("det", 200), &WorkerPool::new(1)).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = Spe::partition_with_pool(
                &g,
                &SpeConfig::new("det", 200),
                &WorkerPool::new(threads),
            )
            .unwrap();
            assert_eq!(parallel.num_tiles(), reference.num_tiles());
            for (a, b) in parallel.tiles.iter().zip(&reference.tiles) {
                assert_eq!(a, b, "tile diverged with a {threads}-thread pool");
            }
            assert_eq!(parallel.in_degrees, reference.in_degrees);
        }
    }

    /// One pool can serve both pre-processing and (later) the run — and a
    /// reused pool keeps producing correct partitions.
    #[test]
    fn partition_with_reused_pool() {
        let pool = WorkerPool::with_host_parallelism();
        let g = RmatGenerator::new(8, 6).generate(3);
        let p1 = Spe::partition_with_pool(&g, &SpeConfig::new("a", 300), &pool).unwrap();
        let p2 = Spe::partition_with_pool(&g, &SpeConfig::new("b", 300), &pool).unwrap();
        assert_eq!(p1.num_edges(), p2.num_edges());
        assert_eq!(p1.tiles, p2.tiles);
    }

    #[test]
    fn with_tile_count_config() {
        let g = RmatGenerator::new(8, 4).generate(1);
        let cfg = SpeConfig::with_tile_count("x", &g, 8);
        let p = Spe::partition(&g, &cfg).unwrap();
        assert!((6..=12).contains(&p.num_tiles()), "{} tiles", p.num_tiles());
    }
}
