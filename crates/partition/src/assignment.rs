//! Stage two of the two-stage partitioning: assigning tiles to servers (§III-C.1).
//!
//! GraphH assigns tile `i` to server `i mod N` and each server then fetches its tiles
//! from the DFS to local disk. The assignment is computed once per (graph, cluster
//! size) pair and shared by every engine run.

use graphh_graph::ids::{tile_home_server, ServerId, TileId};
use serde::{Deserialize, Serialize};

/// A mapping of tiles to servers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileAssignment {
    num_servers: u32,
    /// `owner[t]` = server owning tile `t`.
    owner: Vec<ServerId>,
}

impl TileAssignment {
    /// Round-robin assignment of `num_tiles` tiles across `num_servers` servers.
    pub fn round_robin(num_tiles: u32, num_servers: u32) -> Self {
        assert!(num_servers > 0, "cluster must have at least one server");
        let owner = (0..num_tiles)
            .map(|t| tile_home_server(t, num_servers))
            .collect();
        Self { num_servers, owner }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> u32 {
        self.num_servers
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> u32 {
        self.owner.len() as u32
    }

    /// Server owning tile `t`.
    pub fn owner_of(&self, t: TileId) -> ServerId {
        self.owner[t as usize]
    }

    /// Tiles owned by a server, in ascending tile order.
    pub fn tiles_of(&self, server: ServerId) -> Vec<TileId> {
        self.owner
            .iter()
            .enumerate()
            .filter_map(|(t, &s)| (s == server).then_some(t as TileId))
            .collect()
    }

    /// Number of tiles each server owns.
    pub fn tiles_per_server(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_servers as usize];
        for &s in &self.owner {
            counts[s as usize] += 1;
        }
        counts
    }

    /// Imbalance: max tiles per server over mean (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        let counts = self.tiles_per_server();
        let total: u32 = counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = f64::from(total) / counts.len() as f64;
        f64::from(*counts.iter().max().unwrap()) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_tiles_evenly() {
        let a = TileAssignment::round_robin(10, 3);
        assert_eq!(a.num_tiles(), 10);
        assert_eq!(a.num_servers(), 3);
        assert_eq!(a.tiles_per_server(), vec![4, 3, 3]);
        assert!(a.imbalance() < 1.3);
    }

    #[test]
    fn owner_and_tiles_of_are_consistent() {
        let a = TileAssignment::round_robin(12, 4);
        for server in 0..4 {
            for t in a.tiles_of(server) {
                assert_eq!(a.owner_of(t), server);
            }
        }
        let total: usize = (0..4).map(|s| a.tiles_of(s).len()).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn single_server_owns_everything() {
        let a = TileAssignment::round_robin(7, 1);
        assert_eq!(a.tiles_of(0).len(), 7);
        assert_eq!(a.imbalance(), 1.0);
    }

    #[test]
    fn more_servers_than_tiles_leaves_some_idle() {
        let a = TileAssignment::round_robin(2, 8);
        assert_eq!(a.tiles_per_server().iter().sum::<u32>(), 2);
        assert_eq!(a.tiles_of(5).len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = TileAssignment::round_robin(4, 0);
    }
}
