//! Tiles: the basic graph processing unit (paper §III-B.2).
//!
//! A tile owns the in-edges of a contiguous range of target vertices
//! `[target_start, target_end)` in an enhanced CSR layout:
//!
//! * `offsets[i]` .. `offsets[i+1]` index the source ids of target vertex
//!   `target_start + i`,
//! * `sources` holds the source vertex ids,
//! * `weights` holds edge values and is omitted entirely for unweighted graphs
//!   (the paper's space optimisation).
//!
//! Tiles are immutable once built, serialize to a compact binary blob for the DFS /
//! local disk, and report the statistics the engine needs (edge count, memory size,
//! distinct source count for the Bloom filter).

use crate::{PartitionError, Result};
use graphh_graph::ids::{TileId, VertexId};
use serde::{Deserialize, Serialize};

/// Magic prefix of the tile binary format.
const TILE_MAGIC: &[u8; 8] = b"GHTILE01";

/// Summary of a tile that is cheap to keep in memory for every tile on a server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileMetadata {
    /// Tile id (position in the global tile order).
    pub tile_id: TileId,
    /// First target vertex covered by the tile.
    pub target_start: VertexId,
    /// One past the last target vertex covered by the tile.
    pub target_end: VertexId,
    /// Number of edges in the tile.
    pub num_edges: u64,
    /// Whether the tile stores edge weights.
    pub weighted: bool,
    /// Serialized size in bytes.
    pub serialized_bytes: u64,
}

/// A tile of in-edges in enhanced CSR form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tile {
    /// Tile id.
    pub tile_id: TileId,
    /// First target vertex covered.
    pub target_start: VertexId,
    /// One past the last target vertex covered.
    pub target_end: VertexId,
    /// CSR offsets, length `target_end - target_start + 1`.
    offsets: Vec<u64>,
    /// Source vertex ids grouped by target.
    sources: Vec<VertexId>,
    /// Edge weights; `None` for unweighted graphs.
    weights: Option<Vec<f32>>,
}

impl Tile {
    /// Build a tile from per-target adjacency lists.
    ///
    /// `in_edges[i]` lists `(source, weight)` pairs of target vertex
    /// `target_start + i`. Pass `weighted = false` to drop the weight array.
    pub fn from_adjacency(
        tile_id: TileId,
        target_start: VertexId,
        in_edges: &[Vec<(VertexId, f32)>],
        weighted: bool,
    ) -> Self {
        let mut offsets = Vec::with_capacity(in_edges.len() + 1);
        let mut sources = Vec::new();
        let mut weights = if weighted { Some(Vec::new()) } else { None };
        offsets.push(0u64);
        for list in in_edges {
            for &(s, w) in list {
                sources.push(s);
                if let Some(ws) = &mut weights {
                    ws.push(w);
                }
            }
            offsets.push(sources.len() as u64);
        }
        Self {
            tile_id,
            target_start,
            target_end: target_start + in_edges.len() as VertexId,
            offsets,
            sources,
            weights,
        }
    }

    /// Number of target vertices covered by the tile.
    pub fn num_targets(&self) -> u32 {
        self.target_end - self.target_start
    }

    /// Number of edges stored in the tile.
    pub fn num_edges(&self) -> u64 {
        self.sources.len() as u64
    }

    /// Whether the tile stores edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The target vertices covered, in ascending order.
    pub fn targets(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.target_start..self.target_end
    }

    /// In-edges of a target vertex as `(source, weight)` pairs.
    ///
    /// # Panics
    /// Panics if `target` is outside `[target_start, target_end)`.
    pub fn in_edges(&self, target: VertexId) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        assert!(
            target >= self.target_start && target < self.target_end,
            "target {target} outside tile range [{}, {})",
            self.target_start,
            self.target_end
        );
        let i = (target - self.target_start) as usize;
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (lo..hi).map(move |k| (self.sources[k], self.weights.as_ref().map_or(1.0, |w| w[k])))
    }

    /// In-degree of a target vertex within this tile.
    pub fn in_degree(&self, target: VertexId) -> u32 {
        let i = (target - self.target_start) as usize;
        (self.offsets[i + 1] - self.offsets[i]) as u32
    }

    /// All source vertex ids appearing in the tile (with duplicates).
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Number of distinct source vertices (used to size the Bloom filter).
    pub fn distinct_source_count(&self) -> usize {
        let mut s: Vec<VertexId> = self.sources.clone();
        s.sort_unstable();
        s.dedup();
        s.len()
    }

    /// In-memory footprint of the decoded tile in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.offsets.len() as u64 * 8
            + self.sources.len() as u64 * 4
            + self.weights.as_ref().map_or(0, |w| w.len() as u64 * 4)
    }

    /// Cheap metadata snapshot.
    pub fn metadata(&self) -> TileMetadata {
        TileMetadata {
            tile_id: self.tile_id,
            target_start: self.target_start,
            target_end: self.target_end,
            num_edges: self.num_edges(),
            weighted: self.is_weighted(),
            serialized_bytes: self.serialized_size(),
        }
    }

    /// Size of [`Tile::to_bytes`]'s output without producing it.
    pub fn serialized_size(&self) -> u64 {
        let header = 8 + 4 + 4 + 4 + 1 + 8;
        let offsets = self.offsets.len() as u64 * 8;
        let sources = self.sources.len() as u64 * 4;
        let weights = self.weights.as_ref().map_or(0, |w| w.len() as u64 * 4);
        header + offsets + sources + weights
    }

    /// Serialize to the compact binary format written to the DFS and local disks.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_size() as usize);
        out.extend_from_slice(TILE_MAGIC);
        out.extend_from_slice(&self.tile_id.to_le_bytes());
        out.extend_from_slice(&self.target_start.to_le_bytes());
        out.extend_from_slice(&self.target_end.to_le_bytes());
        out.push(u8::from(self.is_weighted()));
        out.extend_from_slice(&(self.sources.len() as u64).to_le_bytes());
        for &o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        for &s in &self.sources {
            out.extend_from_slice(&s.to_le_bytes());
        }
        if let Some(ws) = &self.weights {
            for &w in ws {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Deserialize a tile previously produced by [`Tile::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > data.len() {
                return Err(PartitionError::Corrupt(format!(
                    "tile truncated at offset {} (need {n} bytes, have {})",
                    *pos,
                    data.len() - *pos
                )));
            }
            let slice = &data[*pos..*pos + n];
            *pos += n;
            Ok(slice)
        };
        let magic = take(&mut pos, 8)?;
        if magic != TILE_MAGIC {
            return Err(PartitionError::Corrupt("bad tile magic".into()));
        }
        let tile_id = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let target_start = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let target_end = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if target_end < target_start {
            return Err(PartitionError::Corrupt("tile target range inverted".into()));
        }
        let weighted = take(&mut pos, 1)?[0] != 0;
        let num_edges = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        let num_targets = (target_end - target_start) as usize;
        let mut offsets = Vec::with_capacity(num_targets + 1);
        for _ in 0..=num_targets {
            offsets.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
        }
        if offsets.last().copied().unwrap_or(0) as usize != num_edges {
            return Err(PartitionError::Corrupt(
                "tile offsets inconsistent with edge count".into(),
            ));
        }
        let mut sources = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            sources.push(u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()));
        }
        let weights = if weighted {
            let mut ws = Vec::with_capacity(num_edges);
            for _ in 0..num_edges {
                ws.push(f32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()));
            }
            Some(ws)
        } else {
            None
        };
        Ok(Self {
            tile_id,
            target_start,
            target_end,
            offsets,
            sources,
            weights,
        })
    }

    /// The canonical DFS / local-disk key for a tile.
    pub fn storage_key(graph_name: &str, tile_id: TileId) -> String {
        format!("{graph_name}/tiles/tile-{tile_id:06}.bin")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tile(weighted: bool) -> Tile {
        // Targets 10, 11, 12 with in-edges from various sources.
        let adjacency = vec![
            vec![(1u32, 0.5f32), (7, 1.5)],
            vec![],
            vec![(1, 2.0), (2, 3.0), (3, 4.0)],
        ];
        Tile::from_adjacency(4, 10, &adjacency, weighted)
    }

    #[test]
    fn tile_shape_and_lookup() {
        let t = sample_tile(true);
        assert_eq!(t.tile_id, 4);
        assert_eq!(t.num_targets(), 3);
        assert_eq!(t.num_edges(), 5);
        assert_eq!(t.in_degree(10), 2);
        assert_eq!(t.in_degree(11), 0);
        assert_eq!(t.in_degree(12), 3);
        let edges: Vec<_> = t.in_edges(12).collect();
        assert_eq!(edges, vec![(1, 2.0), (2, 3.0), (3, 4.0)]);
        assert_eq!(t.targets().collect::<Vec<_>>(), vec![10, 11, 12]);
        assert_eq!(t.distinct_source_count(), 4);
    }

    #[test]
    fn unweighted_tile_reports_unit_weights_and_saves_space() {
        let weighted = sample_tile(true);
        let unweighted = sample_tile(false);
        assert!(unweighted.memory_bytes() < weighted.memory_bytes());
        let edges: Vec<_> = unweighted.in_edges(10).collect();
        assert_eq!(edges, vec![(1, 1.0), (7, 1.0)]);
    }

    #[test]
    fn serialization_roundtrip() {
        for weighted in [false, true] {
            let t = sample_tile(weighted);
            let bytes = t.to_bytes();
            assert_eq!(bytes.len() as u64, t.serialized_size());
            let back = Tile::from_bytes(&bytes).unwrap();
            assert_eq!(back, t);
            assert_eq!(back.metadata(), t.metadata());
        }
    }

    #[test]
    fn corrupt_tiles_are_rejected() {
        let t = sample_tile(false);
        let bytes = t.to_bytes();
        // Truncation.
        assert!(Tile::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(Tile::from_bytes(&bad).is_err());
        // Inconsistent edge count.
        let mut bad = bytes;
        bad[21] ^= 0x01; // first byte of num_edges
        assert!(Tile::from_bytes(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "outside tile range")]
    fn out_of_range_target_panics() {
        let t = sample_tile(false);
        let _ = t.in_edges(99).count();
    }

    #[test]
    fn empty_tile_roundtrips() {
        let t = Tile::from_adjacency(0, 5, &[], false);
        assert_eq!(t.num_targets(), 0);
        assert_eq!(t.num_edges(), 0);
        let back = Tile::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn storage_key_is_stable() {
        assert_eq!(
            Tile::storage_key("uk-2007", 3),
            "uk-2007/tiles/tile-000003.bin"
        );
    }
}
