//! # graphh-partition
//!
//! GraphH's two-stage graph partitioning (paper §III-B), i.e. the role Spark plays
//! in the original system ("SPE", Spark-based Pre-processing Engine).
//!
//! Stage one splits the input graph's edges into `P` **tiles**: contiguous ranges of
//! *target* vertices whose in-edges together hold roughly `S = |E| / P` edges, stored
//! in an enhanced CSR layout ([`tile::Tile`]). Stage two assigns tiles to the `N`
//! servers of the processing engine round-robin ([`assignment`]).
//!
//! The pre-processing pipeline itself ([`spe::Spe`]) mirrors Algorithm 4:
//!
//! 1. count every vertex's in/out degree,
//! 2. walk the in-degree array to build the splitter array ([`splitter`]),
//! 3. group edges by tile and encode each tile as CSR,
//! 4. persist tiles plus the two degree arrays to the DFS.
//!
//! [`formats`] reproduces Table IV: the on-disk input footprint each evaluated system
//! needs for the same graph.

pub mod assignment;
pub mod formats;
pub mod spe;
pub mod splitter;
pub mod tile;

pub use assignment::TileAssignment;
pub use spe::{PartitionedGraph, Spe, SpeConfig};
pub use splitter::Splitter;
pub use tile::{Tile, TileMetadata};

/// Errors produced by the partitioning layer.
#[derive(Debug)]
pub enum PartitionError {
    /// Tile serialization or deserialization failed.
    Corrupt(String),
    /// Invalid configuration (e.g. zero tile size).
    InvalidConfig(String),
    /// Underlying storage failure.
    Storage(graphh_storage::StorageError),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Corrupt(m) => write!(f, "corrupt tile data: {m}"),
            PartitionError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            PartitionError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<graphh_storage::StorageError> for PartitionError {
    fn from(e: graphh_storage::StorageError) -> Self {
        PartitionError::Storage(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PartitionError>;
