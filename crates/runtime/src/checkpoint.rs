//! Superstep-granular checkpoints: the `GHHC` snapshot file.
//!
//! A checkpoint is everything a worker needs to rejoin a run mid-flight:
//! the superstep cursor (the next superstep to execute), the frontier that
//! superstep starts from, and the full vertex-replica values — the values in
//! the same `GHHV` section the `graphh-node --out` value files use, so a
//! checkpoint's value payload is bit-compatible with the run's final output
//! format. Supersteps are deterministic, so a restarted server that loads
//! the checkpoint and has its peers replay the delta (see
//! `crate::resume::ReplayLog`) recomputes byte-identical state.
//!
//! ```text
//! b"GHHC" | u32 LE version=1 | u32 LE server id | u32 LE next superstep
//!         | u64 LE frontier count | u32 LE frontier vertex ids ...
//!         | b"GHHV" | u64 LE value count | f64 bits LE ...
//! ```
//!
//! Writes are atomic (tmp file + rename) and loads reject truncated or
//! corrupt files, so a server killed *while* checkpointing leaves either the
//! previous intact checkpoint or none — never a half-written one that would
//! poison the restart.

use graphh_graph::ids::{ServerId, VertexId};
use graphh_obs::global_counters;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic header of a checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"GHHC";

/// Magic header of a value file / checkpoint value section.
pub const VALUES_MAGIC: [u8; 4] = *b"GHHV";

/// Checkpoint format version this build writes and reads.
const CHECKPOINT_VERSION: u32 = 1;

/// Serialize vertex values the way `graphh-node --out` writes them: magic,
/// u64 LE count, then each value's f64 bits LE — lossless, so two files are
/// byte-equal iff the runs were bit-identical.
pub fn encode_values(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + values.len() * 8);
    out.extend_from_slice(&VALUES_MAGIC);
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Parse a value file back into vertex values.
pub fn decode_values(bytes: &[u8]) -> Result<Vec<f64>, String> {
    if bytes.len() < 12 || bytes[0..4] != VALUES_MAGIC {
        return Err("not a GHHV value file".into());
    }
    let count = u64::from_le_bytes(bytes[4..12].try_into().unwrap()) as usize;
    // Checked arithmetic: the count is untrusted file bytes, and a corrupt
    // header must come back as Err, not overflow.
    let expected = count
        .checked_mul(8)
        .and_then(|payload| payload.checked_add(12));
    if expected != Some(bytes.len()) {
        return Err(format!(
            "value file length {} does not match its count {count}",
            bytes.len()
        ));
    }
    Ok(bytes[12..]
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
        .collect())
}

/// One server's resumable state at a superstep boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The server this snapshot belongs to.
    pub server: ServerId,
    /// The next superstep to execute (every superstep below it is applied).
    pub next_superstep: u32,
    /// The frontier `next_superstep` starts from (vertices updated by the
    /// last applied superstep).
    pub frontier: Vec<VertexId>,
    /// The full vertex-replica values after the last applied superstep.
    pub values: Vec<f64>,
}

impl Checkpoint {
    /// Encode to the `GHHC` byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.frontier.len() * 4 + self.values.len() * 8);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.server.to_le_bytes());
        out.extend_from_slice(&self.next_superstep.to_le_bytes());
        out.extend_from_slice(&(self.frontier.len() as u64).to_le_bytes());
        for v in &self.frontier {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&encode_values(&self.values));
        out
    }

    /// Decode a `GHHC` file. Any truncation, length mismatch, or bad magic is
    /// an error — a half-written checkpoint must never load.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, String> {
        if bytes.len() < 24 || bytes[0..4] != CHECKPOINT_MAGIC {
            return Err("not a GHHC checkpoint file".into());
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
            ));
        }
        let server = ServerId::from_le_bytes(bytes[8..12].try_into().unwrap());
        let next_superstep = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let frontier_count = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let frontier_end = frontier_count
            .checked_mul(4)
            .and_then(|n| n.checked_add(24))
            .ok_or("checkpoint frontier count overflows")?;
        if bytes.len() < frontier_end {
            return Err(format!(
                "checkpoint truncated inside its frontier ({} of {frontier_end} bytes)",
                bytes.len()
            ));
        }
        let frontier: Vec<VertexId> = bytes[24..frontier_end]
            .chunks_exact(4)
            .map(|c| VertexId::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let values = decode_values(&bytes[frontier_end..])
            .map_err(|e| format!("checkpoint value section: {e}"))?;
        Ok(Checkpoint {
            server,
            next_superstep,
            frontier,
            values,
        })
    }
}

/// Where (and how often) a worker writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointSink {
    dir: PathBuf,
    /// Write a checkpoint after every `every`-th applied superstep.
    every: u32,
}

impl CheckpointSink {
    /// A sink writing to `dir` every `every` supersteps (`every` is clamped
    /// to at least 1).
    pub fn new(dir: impl Into<PathBuf>, every: u32) -> Self {
        Self {
            dir: dir.into(),
            every: every.max(1),
        }
    }

    /// Should a checkpoint be written after applying `superstep`?
    pub fn due(&self, superstep: u32) -> bool {
        (superstep + 1).is_multiple_of(self.every)
    }

    /// The checkpoint file of `server` under this sink's directory.
    pub fn path_for(&self, server: ServerId) -> PathBuf {
        self.dir.join(format!("ckpt-s{server}.ghhc"))
    }

    /// Atomically write `checkpoint` (tmp + rename), returning its size.
    /// A crash mid-write leaves the previous checkpoint intact.
    pub fn write(&self, checkpoint: &Checkpoint) -> Result<u64, String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("create checkpoint dir {}: {e}", self.dir.display()))?;
        let bytes = checkpoint.encode();
        let tmp = self
            .dir
            .join(format!("ckpt-s{}.ghhc.tmp", checkpoint.server));
        let path = self.path_for(checkpoint.server);
        {
            let mut file = std::fs::File::create(&tmp)
                .map_err(|e| format!("create {}: {e}", tmp.display()))?;
            file.write_all(&bytes)
                .map_err(|e| format!("write {}: {e}", tmp.display()))?;
            file.sync_all()
                .map_err(|e| format!("sync {}: {e}", tmp.display()))?;
        }
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("rename {} into place: {e}", tmp.display()))?;
        global_counters()
            .counter("fabric.checkpoint_bytes")
            .add(bytes.len() as u64);
        Ok(bytes.len() as u64)
    }

    /// Load `server`'s checkpoint if one exists. A corrupt or truncated file
    /// is an error (the operator should know), a missing one is `Ok(None)`
    /// (fresh start).
    pub fn load(&self, server: ServerId) -> Result<Option<Checkpoint>, String> {
        Self::load_from(&self.path_for(server), server)
    }

    /// Load the checkpoint at `path`, checking it belongs to `server`.
    pub fn load_from(path: &Path, server: ServerId) -> Result<Option<Checkpoint>, String> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        let checkpoint = Checkpoint::decode(&bytes)
            .map_err(|e| format!("corrupt checkpoint {}: {e}", path.display()))?;
        if checkpoint.server != server {
            return Err(format!(
                "checkpoint {} belongs to server {}, not {server}",
                path.display(),
                checkpoint.server
            ));
        }
        Ok(Some(checkpoint))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            server: 2,
            next_superstep: 7,
            frontier: vec![0, 5, 17, 255],
            values: vec![
                0.0,
                -1.5,
                f64::MAX,
                1e-300,
                f64::from_bits(0x7ff8_0000_0000_0001),
            ],
        }
    }

    #[test]
    fn checkpoint_roundtrips_bit_exactly() {
        let ckpt = sample();
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded.server, ckpt.server);
        assert_eq!(decoded.next_superstep, ckpt.next_superstep);
        assert_eq!(decoded.frontier, ckpt.frontier);
        assert_eq!(decoded.values.len(), ckpt.values.len());
        for (a, b) in ckpt.values.iter().zip(&decoded.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_truncation_is_rejected_never_a_panic() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let outcome = std::panic::catch_unwind(|| Checkpoint::decode(&bytes[..cut]));
            match outcome {
                Ok(result) => assert!(result.is_err(), "a {cut}-byte prefix decoded"),
                Err(_) => panic!("checkpoint decode panicked at cut {cut}"),
            }
        }
        assert!(Checkpoint::decode(b"GHHCgarbage").is_err());
    }

    #[test]
    fn values_roundtrip_losslessly() {
        let values = sample().values;
        let decoded = decode_values(&encode_values(&values)).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_values(b"nope").is_err());
    }

    #[test]
    fn sink_writes_atomically_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("ghh-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = CheckpointSink::new(&dir, 2);
        assert!(!sink.due(0));
        assert!(sink.due(1));
        assert!(sink.due(3));

        let ckpt = sample();
        assert_eq!(sink.load(ckpt.server).unwrap(), None, "no checkpoint yet");
        let bytes = sink.write(&ckpt).unwrap();
        assert!(bytes > 0);
        let loaded = sink.load(ckpt.server).unwrap().expect("written checkpoint");
        assert_eq!(loaded.next_superstep, 7);
        // No tmp file left behind, and a wrong-server load is an error.
        assert!(!sink.dir.join("ckpt-s2.ghhc.tmp").exists());
        assert!(sink.load(0).unwrap().is_none());
        std::fs::write(sink.path_for(0), b"torn").unwrap();
        assert!(sink.load(0).is_err(), "corrupt checkpoint must not load");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
