//! The superstep barrier: BSP's `wait_other_servers` (paper Algorithm 5, l. 17).
//!
//! A condvar-based generation barrier rather than `std::sync::Barrier` because
//! the error path needs it to be **abortable**: when a worker fails it must be
//! able to release peers that already arrived at the barrier (its channel
//! `Abort` frame only reaches peers still draining their inbox). A poisoned
//! barrier wakes every waiter with [`BarrierError::Poisoned`].

use std::sync::{Condvar, Mutex};

/// Why a barrier wait did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierError {
    /// Another worker aborted the run while we were waiting.
    Poisoned,
}

impl std::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "superstep barrier poisoned by an aborting worker")
    }
}

impl std::error::Error for BarrierError {}

#[derive(Debug)]
struct BarrierState {
    arrived: u32,
    generation: u64,
    poisoned: bool,
}

/// A reusable, abortable barrier all worker threads cross once per superstep.
pub struct SuperstepBarrier {
    num_servers: u32,
    state: Mutex<BarrierState>,
    condvar: Condvar,
}

impl SuperstepBarrier {
    /// A barrier for `num_servers` workers.
    pub fn new(num_servers: u32) -> Self {
        assert!(num_servers > 0);
        Self {
            num_servers,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            condvar: Condvar::new(),
        }
    }

    /// Block until every worker has arrived (or the barrier is poisoned).
    /// Exactly one caller per generation is the leader.
    pub fn wait(&self) -> Result<BarrierCrossing, BarrierError> {
        let mut state = self.state.lock().unwrap();
        if state.poisoned {
            return Err(BarrierError::Poisoned);
        }
        state.arrived += 1;
        if state.arrived == self.num_servers {
            state.arrived = 0;
            state.generation += 1;
            self.condvar.notify_all();
            return Ok(BarrierCrossing { is_leader: true });
        }
        let generation = state.generation;
        loop {
            state = self.condvar.wait(state).unwrap();
            if state.poisoned {
                return Err(BarrierError::Poisoned);
            }
            if state.generation != generation {
                return Ok(BarrierCrossing { is_leader: false });
            }
        }
    }

    /// Poison the barrier: every current and future waiter returns
    /// [`BarrierError::Poisoned`]. Called by a worker on its error path so
    /// peers already parked here do not deadlock.
    pub fn poison(&self) {
        let mut state = self.state.lock().unwrap();
        state.poisoned = true;
        self.condvar.notify_all();
    }

    /// Number of fully completed generations (all workers arrived).
    pub fn generations(&self) -> u64 {
        self.state.lock().unwrap().generation
    }
}

/// Outcome of one barrier crossing.
#[derive(Debug, Clone, Copy)]
pub struct BarrierCrossing {
    is_leader: bool,
}

impl BarrierCrossing {
    /// Whether this caller was elected leader for the crossing.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn all_workers_cross_and_one_leads() {
        let barrier = Arc::new(SuperstepBarrier::new(4));
        let leaders: usize = thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let mut led = 0usize;
                        for _ in 0..10 {
                            if barrier.wait().unwrap().is_leader() {
                                led += 1;
                            }
                        }
                        led
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Exactly one leader per generation.
        assert_eq!(leaders, 10);
        assert_eq!(barrier.generations(), 10);
    }

    #[test]
    fn poison_releases_parked_waiters() {
        let barrier = Arc::new(SuperstepBarrier::new(3));
        let results: Vec<Result<bool, BarrierError>> = thread::scope(|scope| {
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || barrier.wait().map(|c| c.is_leader()))
                })
                .collect();
            // Give both waiters time to park, then poison instead of arriving.
            std::thread::sleep(std::time::Duration::from_millis(20));
            barrier.poison();
            waiters.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| r == &Err(BarrierError::Poisoned)));
        // Future waits fail immediately too.
        assert_eq!(barrier.wait().map(|_| ()), Err(BarrierError::Poisoned));
    }
}
