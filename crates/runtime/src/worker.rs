//! The per-server worker: one OS thread owning one simulated server's state.
//!
//! Each worker runs the identical superstep loop:
//!
//! 1. **compute** — [`ServerState::run_tile_phase`] over its own tiles, against
//!    its own vertex-replica array and edge cache (the exact code the
//!    sequential executor runs),
//! 2. **publish** — encode each tile's updates through the configured
//!    [`graphh_cluster::MessageCodec`] and push the wire bytes onto the
//!    broadcast plane,
//! 3. **exchange** — collect every peer's wire messages for the superstep and
//!    decode them (charging real decompression time),
//! 4. **apply** — merge own + received updates, sorted by vertex id
//!    ([`merge_updates`]), into the local replica — the sort makes the apply
//!    order independent of message arrival order, which is what keeps threaded
//!    results bit-identical to sequential ones,
//! 5. **barrier** — cross the superstep barrier; every replica now agrees, and
//!    every worker independently reaches the same termination decision.

use crate::barrier::SuperstepBarrier;
use crate::plane::{BroadcastPlane, PlaneError};
use graphh_cluster::ServerMetrics;
use graphh_compress::Codec;
use graphh_core::exec::{merge_updates, ExecutionPlan, ServerState};
use graphh_core::gab::GabProgram;
use graphh_core::{EngineError, GraphHConfig};
use graphh_graph::ids::{ServerId, VertexId};
use graphh_partition::PartitionedGraph;
use std::sync::mpsc::Sender;

/// One server's metrics for one superstep, streamed to the reducer.
#[derive(Debug)]
pub struct MetricsSlice {
    /// Superstep index.
    pub superstep: u32,
    /// Reporting server.
    pub server: ServerId,
    /// The metered work.
    pub metrics: ServerMetrics,
    /// Cluster-wide updated-vertex count this superstep (identical on every
    /// server — each applies the same merged update set).
    pub total_updates: u64,
}

/// What a worker thread hands back when the run finishes.
#[derive(Debug)]
pub struct WorkerOutput {
    /// The server this worker simulated.
    pub server: ServerId,
    /// Final vertex values of this server's replica.
    pub values: Vec<f64>,
    /// Codec its edge cache selected.
    pub cache_codec: Codec,
    /// Peak accounted memory in bytes.
    pub peak_memory: u64,
    /// Supersteps executed.
    pub supersteps_run: u32,
}

/// A worker failure, tagged with whether it is the *root cause* or a
/// secondary effect of another worker's abort (peers observing the poison /
/// abort signals). The executor reports a root-cause error when one exists.
#[derive(Debug)]
pub struct WorkerError {
    /// The underlying engine error.
    pub error: EngineError,
    /// True when this error only reports another worker's abort.
    pub secondary: bool,
}

fn plane_error(e: PlaneError) -> WorkerError {
    WorkerError {
        secondary: matches!(e, PlaneError::Aborted(_)),
        error: EngineError::BadInput(format!("broadcast plane failure: {e}")),
    }
}

/// Run server `sid` to completion on the calling thread.
///
/// On *any* exit that is not a clean finish — an `Err` return or a panic
/// (e.g. a user `GabProgram` indexing out of bounds) — the peers are
/// unblocked: the plane gets an abort frame (releases peers draining their
/// inbox) and the barrier is poisoned (releases peers already parked at the
/// superstep boundary). Skipping either would deadlock the other group.
#[allow(clippy::too_many_arguments)]
pub fn run_worker(
    config: &GraphHConfig,
    plan: &ExecutionPlan,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
    sid: ServerId,
    plane: &mut dyn BroadcastPlane,
    barrier: &SuperstepBarrier,
    metrics_tx: &Sender<MetricsSlice>,
) -> Result<WorkerOutput, WorkerError> {
    let num_servers = config.cluster.num_servers;
    let mut server = ServerState::build(config, plan, partitioned, sid);
    let mut previously_updated: Vec<VertexId> = plan.initial_frontier();
    let mut supersteps_run = 0u32;

    let body = std::panic::AssertUnwindSafe(|| -> Result<u32, WorkerError> {
        for superstep in 0..plan.max_supersteps {
            let phase = server
                .run_tile_phase(
                    program,
                    plan,
                    superstep,
                    &previously_updated,
                    config.use_bloom_filter,
                )
                .map_err(|error| WorkerError {
                    error,
                    secondary: false,
                })?;
            let mut metrics = phase.metrics;

            // Publish this superstep's messages through the real wire path.
            let mut all_updates: Vec<(VertexId, f64)> = Vec::new();
            for message in &phase.messages {
                let (wire, _encoding) = plan.message_codec.encode(message, &mut metrics);
                let fanout = u64::from(num_servers - 1);
                metrics.network_sent_bytes += wire.len() as u64 * fanout;
                metrics.network_messages += fanout;
                plane.broadcast(superstep, &wire).map_err(plane_error)?;
                // The sender applies its own updates without a decode round
                // trip (the wire format is lossless, and the sequential
                // executor charges no decompression to the sender either).
                all_updates.extend(message.updates.iter().copied());
            }
            plane.end_superstep(superstep).map_err(plane_error)?;

            // Exchange: decode everything the peers published.
            for wire in plane.collect(superstep).map_err(plane_error)? {
                metrics.network_received_bytes += wire.len() as u64;
                let decoded = plan
                    .message_codec
                    .decode(&wire, &mut metrics)
                    .map_err(|e| WorkerError {
                        error: EngineError::BadInput(format!("corrupt broadcast: {e}")),
                        secondary: false,
                    })?;
                // `decode` bounds every vertex id by the message's *own*
                // advertised range; that range is itself wire bytes, so bound
                // it by the graph before the ids can index the replica array
                // in `apply_updates`.
                if u64::from(decoded.range_end) > plan.num_vertices {
                    return Err(WorkerError {
                        error: EngineError::BadInput(format!(
                            "corrupt broadcast: range end {} exceeds vertex count {}",
                            decoded.range_end, plan.num_vertices
                        )),
                        secondary: false,
                    });
                }
                all_updates.extend(decoded.updates);
            }

            // Deterministic apply: sorted by vertex id, so the replica is
            // independent of message arrival order.
            let all_updates = merge_updates(all_updates);
            server.apply_updates(&all_updates);
            metrics.vertices_updated = all_updates.len() as u64;
            metrics.peak_memory_bytes = server.peak_memory();
            let _ = metrics_tx.send(MetricsSlice {
                superstep,
                server: sid,
                metrics,
                total_updates: all_updates.len() as u64,
            });

            previously_updated = all_updates.iter().map(|&(v, _)| v).collect();
            supersteps_run = superstep + 1;

            // BSP barrier; every worker sees the same update set, so all make
            // the same continue/stop decision and stay in lockstep.
            barrier.wait().map_err(|e| WorkerError {
                error: EngineError::BadInput(format!("superstep barrier: {e}")),
                secondary: true,
            })?;
            if previously_updated.is_empty() {
                break;
            }
        }
        Ok(supersteps_run)
    });

    // catch_unwind so a panicking worker (not just an erroring one) still
    // releases its peers; the panic is re-raised by the executor after join.
    // (AssertUnwindSafe implements FnOnce, so it is passed directly — wrapping
    // it in another closure would capture the inner closure field and lose
    // the unwind-safety assertion.)
    let result = std::panic::catch_unwind(body);

    match result {
        Ok(Ok(supersteps_run)) => Ok(WorkerOutput {
            server: sid,
            values: std::mem::take(&mut server.values),
            cache_codec: server.cache_codec(),
            peak_memory: server.peak_memory(),
            supersteps_run,
        }),
        Ok(Err(e)) => {
            plane.abort();
            barrier.poison();
            Err(e)
        }
        Err(payload) => {
            plane.abort();
            barrier.poison();
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::WireMessage;
    use graphh_cluster::{BroadcastEncoding, BroadcastMessage, ClusterConfig, CommunicationMode};
    use graphh_core::PageRank;
    use graphh_graph::generators::path_graph;
    use graphh_partition::{Spe, SpeConfig};
    use std::sync::mpsc::channel;

    /// A plane that hands the worker one attacker-controlled wire message.
    struct InjectingPlane {
        payload: Option<WireMessage>,
    }

    impl BroadcastPlane for InjectingPlane {
        fn num_servers(&self) -> u32 {
            2
        }
        fn server_id(&self) -> ServerId {
            0
        }
        fn broadcast(&mut self, _superstep: u32, _wire: &[u8]) -> Result<(), PlaneError> {
            Ok(())
        }
        fn end_superstep(&mut self, _superstep: u32) -> Result<(), PlaneError> {
            Ok(())
        }
        fn collect(&mut self, _superstep: u32) -> Result<Vec<WireMessage>, PlaneError> {
            Ok(self.payload.take().into_iter().collect())
        }
        fn abort(&mut self) {}
    }

    /// A sparse message can be internally consistent (ids inside its own
    /// advertised range, strictly increasing) while the range itself lies far
    /// past the graph — `decode` cannot know the vertex count, so the worker
    /// must bound the range before `apply_updates` indexes the replica.
    #[test]
    fn oversized_broadcast_range_is_an_error_not_a_panic() {
        let g = path_graph(10);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 2)).unwrap();
        let mut config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1));
        config.communication = CommunicationMode::Sparse;
        config.message_compressor = None;
        let program = PageRank::new(3);
        let plan = ExecutionPlan::prepare(&config, &p, &program).unwrap();

        let evil = BroadcastMessage {
            range_start: 0,
            range_end: 1 << 30,
            updates: vec![(123_456_789, 1.0)],
        };
        let mut plane = InjectingPlane {
            payload: Some(evil.encode(BroadcastEncoding::Sparse).into()),
        };
        let barrier = SuperstepBarrier::new(1);
        let (metrics_tx, _metrics_rx) = channel();
        let err = run_worker(
            &config,
            &plan,
            &p,
            &program,
            0,
            &mut plane,
            &barrier,
            &metrics_tx,
        )
        .expect_err("oversized range must abort cleanly");
        let rendered = err.error.to_string();
        assert!(rendered.contains("exceeds vertex count"), "{rendered}");
        assert!(!err.secondary);
    }
}
