//! The per-server worker: one OS thread owning one simulated server's state.
//!
//! Each worker runs the identical superstep loop:
//!
//! 1. **compute** — [`ServerState::run_tile_phase`] over its own tiles, against
//!    its own vertex-replica array and edge cache (the exact code the
//!    sequential executor runs),
//! 2. **publish** — encode each tile's updates through the configured
//!    [`graphh_cluster::MessageCodec`] and push the wire bytes onto the
//!    broadcast plane,
//! 3. **exchange** — collect every peer's wire messages for the superstep and
//!    decode them (charging real decompression time),
//! 4. **apply** — merge own + received updates, sorted by vertex id
//!    ([`graphh_core::exec::merge_updates_in_place`]), into the local replica — the sort makes the apply
//!    order independent of message arrival order, which is what keeps threaded
//!    results bit-identical to sequential ones,
//! 5. **barrier** — cross the superstep barrier; every replica now agrees, and
//!    every worker independently reaches the same termination decision.

use crate::barrier::SuperstepBarrier;
use crate::buffer::{BufferPool, PooledBuf};
use crate::checkpoint::{Checkpoint, CheckpointSink};
use crate::plane::{BroadcastPlane, PlaneError};
use graphh_cluster::ServerMetrics;
use graphh_compress::{Codec, CompressorScratch};
use graphh_core::exec::{merge_updates_in_place, ExecutionPlan, ServerState};
use graphh_core::gab::{Direction, GabProgram};
use graphh_core::{EngineError, GraphHConfig};
use graphh_graph::ids::{ServerId, VertexId};
use graphh_obs::{global_counters, Tracer};
use graphh_partition::PartitionedGraph;
use std::sync::mpsc::Sender;

/// One encode lane: the buffers and compressor state one message of the
/// publish phase encodes into. Each message index owns its own lane, so the
/// server pool's workers can encode+compress messages concurrently without
/// sharing buffers; the serial ship loop then walks the lanes in index order,
/// which keeps the wire byte stream — and the float summation of the metered
/// compression time — identical to the sequential reference.
struct EncodeLane {
    /// Pre-compression encode scratch ([`graphh_cluster::MessageCodec::encode_into_with`]).
    enc_scratch: PooledBuf,
    /// Wire bytes of this lane's message.
    wire: PooledBuf,
    /// Persistent LZSS compressor state, reused for the whole run.
    comp: CompressorScratch,
    /// Compression seconds this lane's message was charged (per-message value,
    /// summed in index order by the ship loop).
    compress_seconds: f64,
}

impl EncodeLane {
    fn checkout(pool: &BufferPool) -> Self {
        Self {
            enc_scratch: pool.checkout(),
            wire: pool.checkout(),
            comp: CompressorScratch::new(),
            compress_seconds: 0.0,
        }
    }
}

/// The buffers one worker's superstep loop reuses across supersteps.
///
/// Every superstep used to allocate these afresh — the merged update set, the
/// Bloom frontier, and the byte buffers for the codec path (per-lane encode
/// scratch + wire bytes, shared decompression scratch). They are now cleared
/// and refilled in place, and each lane carries a persistent
/// [`CompressorScratch`], so a steady-state superstep's publish/exchange path
/// performs no heap allocation on either the uncompressed *or* the compressed
/// codec path (asserted by `tests/alloc_count.rs`). The byte buffers come
/// from a [`BufferPool`] so they return to the pool when the run ends.
struct SuperstepBuffers {
    /// This superstep's merged `(vertex, value)` update set (own + received).
    all_updates: Vec<(VertexId, f64)>,
    /// Vertex ids updated in the previous superstep (drives Bloom skipping).
    previously_updated: Vec<VertexId>,
    /// One lane per concurrently encoded message, grown to the widest
    /// superstep seen (tile counts are fixed per run, so this settles after
    /// the first superstep). Mutexes are uncontended by construction — lane
    /// `i` is touched only by whichever pool thread claimed index `i` — they
    /// exist to keep the fan-out safe without `unsafe` shared mutation.
    lanes: Vec<std::sync::Mutex<EncodeLane>>,
    /// Decompression scratch for the receive path.
    dec_scratch: PooledBuf,
    /// Handle for growing `lanes`.
    buffer_pool: BufferPool,
}

impl SuperstepBuffers {
    fn checkout(pool: &BufferPool, initial_frontier: Vec<VertexId>) -> Self {
        Self {
            all_updates: Vec::new(),
            previously_updated: initial_frontier,
            lanes: Vec::new(),
            dec_scratch: pool.checkout(),
            buffer_pool: pool.clone(),
        }
    }

    /// Reset the per-superstep state, keeping every allocation.
    fn begin_superstep(&mut self) {
        self.all_updates.clear();
    }

    /// Make sure at least `n` encode lanes exist (allocates only when a
    /// superstep publishes more messages than any before it).
    fn ensure_lanes(&mut self, n: usize) {
        while self.lanes.len() < n {
            self.lanes.push(std::sync::Mutex::new(EncodeLane::checkout(
                &self.buffer_pool,
            )));
        }
    }

    /// Flush every lane's accumulated `compress.*` statistics into the global
    /// counter registry (run end only: the registry locks).
    fn publish_observability(&mut self) {
        for lane in &mut self.lanes {
            lane.get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .comp
                .publish_observability();
        }
    }

    /// Roll the merged update set into the next superstep's frontier, in
    /// place.
    fn advance_frontier(&mut self) {
        self.previously_updated.clear();
        self.previously_updated
            .extend(self.all_updates.iter().map(|&(v, _)| v));
    }
}

/// One server's metrics for one superstep, streamed to the reducer.
#[derive(Debug)]
pub struct MetricsSlice {
    /// Superstep index.
    pub superstep: u32,
    /// Reporting server.
    pub server: ServerId,
    /// The metered work.
    pub metrics: ServerMetrics,
    /// Cluster-wide updated-vertex count this superstep (identical on every
    /// server — each applies the same merged update set).
    pub total_updates: u64,
}

/// What a worker thread hands back when the run finishes.
#[derive(Debug)]
pub struct WorkerOutput {
    /// The server this worker simulated.
    pub server: ServerId,
    /// Final vertex values of this server's replica.
    pub values: Vec<f64>,
    /// Codec its edge cache selected.
    pub cache_codec: Codec,
    /// Peak accounted memory in bytes.
    pub peak_memory: u64,
    /// Supersteps executed.
    pub supersteps_run: u32,
}

/// A worker failure, tagged with whether it is the *root cause* or a
/// secondary effect of another worker's abort (peers observing the poison /
/// abort signals). The executor reports a root-cause error when one exists.
#[derive(Debug)]
pub struct WorkerError {
    /// The underlying engine error.
    pub error: EngineError,
    /// True when this error only reports another worker's abort.
    pub secondary: bool,
}

fn plane_error(e: PlaneError) -> WorkerError {
    WorkerError {
        secondary: matches!(e, PlaneError::Aborted(_)),
        error: EngineError::BadInput(format!("broadcast plane failure: {e}")),
    }
}

/// Optional behaviors of [`run_worker_with`] beyond the plain superstep loop.
/// [`Default`] is exactly the historical behavior — fresh start at superstep
/// 0, no checkpoints, no delay — and is what every existing entry point uses.
#[derive(Default)]
pub struct WorkerOptions {
    /// First superstep to execute. Non-zero when resuming from a checkpoint:
    /// the worker re-enters the loop at this cursor with the checkpointed
    /// values/frontier and relies on peers replaying the delta.
    pub start_superstep: u32,
    /// Replica values to start from (checkpoint restore). `None` = the
    /// initial values [`ServerState::build`] computes.
    pub initial_values: Option<Vec<f64>>,
    /// Frontier the first executed superstep starts from (checkpoint
    /// restore). `None` = [`ExecutionPlan::initial_frontier`].
    pub initial_frontier: Option<Vec<VertexId>>,
    /// Periodic checkpoint writer. When set, the worker snapshots replica
    /// values + superstep cursor after every due superstep and only
    /// acknowledges durability ([`BroadcastPlane::acknowledge`]) for
    /// checkpointed supersteps — so peers retain exactly the replay delta a
    /// restart would need. When unset, every superstep is acknowledged as it
    /// completes (in-memory state is durable enough for transient cuts).
    pub checkpoint: Option<CheckpointSink>,
    /// Artificial pause at the top of each superstep. A test aid that widens
    /// the window for killing a process mid-run; it never changes values.
    pub superstep_delay: Option<std::time::Duration>,
}

/// Run server `sid` to completion on the calling thread.
///
/// On *any* exit that is not a clean finish — an `Err` return or a panic
/// (e.g. a user `GabProgram` indexing out of bounds) — the peers are
/// unblocked: the plane gets an abort frame (releases peers draining their
/// inbox) and the barrier is poisoned (releases peers already parked at the
/// superstep boundary). Skipping either would deadlock the other group.
#[allow(clippy::too_many_arguments)]
pub fn run_worker(
    config: &GraphHConfig,
    plan: &ExecutionPlan,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
    sid: ServerId,
    plane: &mut dyn BroadcastPlane,
    barrier: &SuperstepBarrier,
    metrics_tx: &Sender<MetricsSlice>,
) -> Result<WorkerOutput, WorkerError> {
    run_worker_traced(
        config,
        plan,
        partitioned,
        program,
        sid,
        plane,
        barrier,
        metrics_tx,
        &Tracer::off(),
    )
}

/// [`run_worker`] recording phase spans into `tracer`.
///
/// The worker records on lane `1 + sid`; its server's pool jobs land on lanes
/// `100 * (1 + sid) + worker_index` (see `docs/OBSERVABILITY.md`). With the
/// tracer off ([`Tracer::off`]) every span call is a no-op that reads no clock
/// and allocates nothing — the contract `tests/alloc_count.rs` pins.
#[allow(clippy::too_many_arguments)]
pub fn run_worker_traced(
    config: &GraphHConfig,
    plan: &ExecutionPlan,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
    sid: ServerId,
    plane: &mut dyn BroadcastPlane,
    barrier: &SuperstepBarrier,
    metrics_tx: &Sender<MetricsSlice>,
    tracer: &Tracer,
) -> Result<WorkerOutput, WorkerError> {
    run_worker_with(
        config,
        plan,
        partitioned,
        program,
        sid,
        plane,
        barrier,
        metrics_tx,
        tracer,
        WorkerOptions::default(),
    )
}

/// [`run_worker_traced`] with explicit [`WorkerOptions`] — the entry point
/// for checkpoint-resumed runs ([`WorkerOptions::start_superstep`] plus the
/// restored values/frontier) and periodic checkpoint writing. With
/// `WorkerOptions::default()` it is exactly `run_worker_traced`.
#[allow(clippy::too_many_arguments)]
pub fn run_worker_with(
    config: &GraphHConfig,
    plan: &ExecutionPlan,
    partitioned: &PartitionedGraph,
    program: &dyn GabProgram,
    sid: ServerId,
    plane: &mut dyn BroadcastPlane,
    barrier: &SuperstepBarrier,
    metrics_tx: &Sender<MetricsSlice>,
    tracer: &Tracer,
    options: WorkerOptions,
) -> Result<WorkerOutput, WorkerError> {
    let num_servers = config.cluster.num_servers;
    let mut rec = tracer.thread(1 + sid);
    let load = rec.begin();
    let mut server = ServerState::build(config, plan, partitioned, sid);
    server.set_tracer(tracer.clone(), 100 * (1 + sid));
    rec.end(load, "server-build", "load");
    // Checkpoint restore: replace the freshly built replica with the
    // snapshotted one. Supersteps are deterministic, so re-entering the loop
    // at the snapshot cursor with these values/frontier recomputes the exact
    // run the original process would have continued.
    if let Some(values) = options.initial_values {
        server.values = values;
    }
    let start_superstep = options.start_superstep;
    let initial_frontier = options
        .initial_frontier
        .unwrap_or_else(|| plan.initial_frontier());
    // Cleared and refilled in place every superstep — the broadcast hot path
    // of a steady-state superstep allocates nothing on the uncompressed
    // codec path.
    let pool = BufferPool::new();
    let mut bufs = SuperstepBuffers::checkout(&pool, initial_frontier);
    let mut supersteps_run = start_superstep;
    // Direction decision counters, fetched once before the loop (the registry
    // lookup locks; the per-superstep adds are relaxed atomics). Only server 0
    // counts, so the totals match the sequential executor's.
    let counters = global_counters();
    let dir_pull = counters.counter("exec.direction.pull");
    let dir_push = counters.counter("exec.direction.push");

    let checkpoint_sink = options.checkpoint;
    let superstep_delay = options.superstep_delay;
    // A resumed run whose restored frontier is already empty terminated in
    // its previous life — running even one superstep would diverge from the
    // original run, so the loop is skipped entirely.
    let resumed_after_termination = start_superstep > 0 && bufs.previously_updated.is_empty();

    let rec = &mut rec;
    let body = std::panic::AssertUnwindSafe(|| -> Result<u32, WorkerError> {
        let loop_end = if resumed_after_termination {
            start_superstep
        } else {
            plan.max_supersteps
        };
        for superstep in start_superstep..loop_end {
            if let Some(delay) = superstep_delay {
                std::thread::sleep(delay);
            }
            // Every worker derives the same view from its replicated frontier,
            // so all workers run the same direction at the same superstep.
            let view = plan.frontier_view(program, &bufs.previously_updated);
            if sid == 0 {
                match view.direction {
                    Direction::Push => dir_push.add(1),
                    _ => dir_pull.add(1),
                }
            }
            let compute = rec.begin();
            let phase = server
                .run_tile_phase(program, plan, superstep, &view, config.use_bloom_filter)
                .map_err(|error| WorkerError {
                    error,
                    secondary: false,
                })?;
            rec.end_superstep_dir(
                compute,
                "tile-compute",
                "superstep",
                superstep,
                view.direction.as_str(),
            );
            let mut metrics = phase.metrics;

            // Publish this superstep's messages through the real wire path.
            // Encode+compress fans out over the server's persistent compute
            // pool (each message index encodes into its own lane), then the
            // serial ship loop walks the lanes in index order — so the byte
            // stream on the plane, and the index-ordered float summation of
            // the compression charge, are identical to a serial encode no
            // matter how the pool schedules the lanes.
            bufs.begin_superstep();
            let publish = rec.begin();
            bufs.ensure_lanes(phase.messages.len());
            let lanes = &bufs.lanes;
            let messages = &phase.messages;
            server
                .pool()
                .fork_join_ordered_named(messages.len(), "encode-compress", |i| {
                    let mut lane = lanes[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let lane = &mut *lane;
                    let mut charged = ServerMetrics::default();
                    plan.message_codec.encode_into_with(
                        &messages[i],
                        &mut charged,
                        &mut lane.enc_scratch,
                        &mut lane.wire,
                        &mut lane.comp,
                    );
                    lane.compress_seconds = charged.compress_seconds;
                });
            for (i, message) in phase.messages.iter().enumerate() {
                let lane = bufs.lanes[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                metrics.compress_seconds += lane.compress_seconds;
                let fanout = u64::from(num_servers - 1);
                metrics.network_sent_bytes += lane.wire.len() as u64 * fanout;
                metrics.network_messages += fanout;
                plane
                    .broadcast(superstep, &lane.wire)
                    .map_err(plane_error)?;
                // The sender applies its own updates without a decode round
                // trip (the wire format is lossless, and the sequential
                // executor charges no decompression to the sender either).
                bufs.all_updates.extend(message.updates.iter().copied());
            }
            rec.end_superstep(publish, "encode-publish", "superstep", superstep);
            let flush = rec.begin();
            plane.end_superstep(superstep).map_err(plane_error)?;
            rec.end_superstep(flush, "plane-flush", "superstep", superstep);

            // Exchange: decode everything the peers published, streaming the
            // updates straight into the shared buffer (no per-message vector).
            let exchange = rec.begin();
            for wire in plane.collect(superstep).map_err(plane_error)? {
                metrics.network_received_bytes += wire.len() as u64;
                let all_updates = &mut bufs.all_updates;
                let header = plan
                    .message_codec
                    .decode_each(&wire, &mut metrics, &mut bufs.dec_scratch, |v, val| {
                        all_updates.push((v, val));
                    })
                    .map_err(|e| WorkerError {
                        error: EngineError::BadInput(format!("corrupt broadcast: {e}")),
                        secondary: false,
                    })?;
                // `decode_each` bounds every vertex id by the message's *own*
                // advertised range; that range is itself wire bytes, so bound
                // it by the graph before the ids can index the replica array
                // in `apply_updates`. (On either error the partially filled
                // buffer is never applied: the worker aborts the run.)
                if u64::from(header.range_end) > plan.num_vertices {
                    return Err(WorkerError {
                        error: EngineError::BadInput(format!(
                            "corrupt broadcast: range end {} exceeds vertex count {}",
                            header.range_end, plan.num_vertices
                        )),
                        secondary: false,
                    });
                }
            }
            rec.end_superstep(exchange, "collect-decode", "superstep", superstep);

            // Deterministic apply: sorted by vertex id, so the replica is
            // independent of message arrival order.
            let apply = rec.begin();
            merge_updates_in_place(&mut bufs.all_updates);
            server.apply_updates(&bufs.all_updates);
            rec.end_superstep(apply, "apply", "superstep", superstep);
            metrics.vertices_updated = bufs.all_updates.len() as u64;
            metrics.peak_memory_bytes = server.peak_memory();
            let _ = metrics_tx.send(MetricsSlice {
                superstep,
                server: sid,
                metrics,
                total_updates: bufs.all_updates.len() as u64,
            });

            bufs.advance_frontier();
            supersteps_run = superstep + 1;

            // Durability + ack. With a checkpoint sink, a snapshot is written
            // on due supersteps and only then is the superstep acknowledged —
            // an ack is a promise that a restart will not need this
            // superstep's frames replayed. Without one, in-memory state is
            // durable enough for transient cuts, so every superstep acks.
            match &checkpoint_sink {
                Some(sink) if sink.due(superstep) => {
                    sink.write(&Checkpoint {
                        server: sid,
                        next_superstep: superstep + 1,
                        frontier: bufs.previously_updated.clone(),
                        values: server.values.clone(),
                    })
                    .map_err(|e| WorkerError {
                        error: EngineError::BadInput(format!("checkpoint write: {e}")),
                        secondary: false,
                    })?;
                    plane.acknowledge(superstep).map_err(plane_error)?;
                }
                Some(_) => {}
                None => plane.acknowledge(superstep).map_err(plane_error)?,
            }

            // BSP barrier; every worker sees the same update set, so all make
            // the same continue/stop decision and stay in lockstep.
            let wait = rec.begin();
            barrier.wait().map_err(|e| WorkerError {
                error: EngineError::BadInput(format!("superstep barrier: {e}")),
                secondary: true,
            })?;
            rec.end_superstep(wait, "barrier-wait", "superstep", superstep);
            if bufs.previously_updated.is_empty() {
                break;
            }
        }
        Ok(supersteps_run)
    });

    // catch_unwind so a panicking worker (not just an erroring one) still
    // releases its peers; the panic is re-raised by the executor after join.
    // (AssertUnwindSafe implements FnOnce, so it is passed directly — wrapping
    // it in another closure would capture the inner closure field and lose
    // the unwind-safety assertion.)
    let result = std::panic::catch_unwind(body);

    match result {
        Ok(Ok(supersteps_run)) => {
            server.publish_observability();
            bufs.publish_observability();
            Ok(WorkerOutput {
                server: sid,
                values: std::mem::take(&mut server.values),
                cache_codec: server.cache_codec(),
                peak_memory: server.peak_memory(),
                supersteps_run,
            })
        }
        Ok(Err(e)) => {
            plane.abort();
            barrier.poison();
            Err(e)
        }
        Err(payload) => {
            plane.abort();
            barrier.poison();
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::WireMessage;
    use graphh_cluster::{BroadcastEncoding, BroadcastMessage, ClusterConfig, CommunicationMode};
    use graphh_core::PageRank;
    use graphh_graph::generators::path_graph;
    use graphh_partition::{Spe, SpeConfig};
    use std::sync::mpsc::channel;

    /// A plane that hands the worker one attacker-controlled wire message.
    struct InjectingPlane {
        payload: Option<WireMessage>,
    }

    impl BroadcastPlane for InjectingPlane {
        fn num_servers(&self) -> u32 {
            2
        }
        fn server_id(&self) -> ServerId {
            0
        }
        fn broadcast(&mut self, _superstep: u32, _wire: &[u8]) -> Result<(), PlaneError> {
            Ok(())
        }
        fn end_superstep(&mut self, _superstep: u32) -> Result<(), PlaneError> {
            Ok(())
        }
        fn collect(&mut self, _superstep: u32) -> Result<Vec<WireMessage>, PlaneError> {
            Ok(self.payload.take().into_iter().collect())
        }
        fn abort(&mut self) {}
    }

    /// The superstep buffers must be *reused*, not reallocated: after a
    /// superstep rolls over, the same allocations hold the next superstep's
    /// data (this is the clear-and-reuse contract the allocation-counting
    /// test in `tests/alloc_count.rs` measures end to end).
    #[test]
    fn superstep_buffers_reuse_their_allocations_across_supersteps() {
        let pool = BufferPool::new();
        let mut bufs = SuperstepBuffers::checkout(&pool, vec![0, 1, 2, 3]);
        bufs.begin_superstep();
        bufs.all_updates.extend([(0, 1.0), (2, 2.0)]);
        bufs.ensure_lanes(2);
        assert_eq!(bufs.lanes.len(), 2);
        let wire_ptr = {
            let mut lane = bufs.lanes[0].lock().unwrap();
            lane.wire.extend_from_slice(&[0u8; 64]);
            lane.wire.as_ptr()
        };
        let updates_ptr = bufs.all_updates.as_ptr();
        let frontier_ptr = bufs.previously_updated.as_ptr();
        let frontier_cap = bufs.previously_updated.capacity();

        bufs.advance_frontier();
        assert_eq!(bufs.previously_updated, vec![0, 2]);
        assert_eq!(
            bufs.previously_updated.as_ptr(),
            frontier_ptr,
            "frontier must be refilled in place, not reallocated"
        );
        assert_eq!(bufs.previously_updated.capacity(), frontier_cap);

        bufs.begin_superstep();
        assert!(bufs.all_updates.is_empty());
        bufs.all_updates.push((1, 3.0));
        assert_eq!(
            bufs.all_updates.as_ptr(),
            updates_ptr,
            "update buffer must be cleared, not replaced"
        );
        // A later superstep with no more messages than before keeps the same
        // lanes (and their buffers) rather than growing or replacing them.
        bufs.ensure_lanes(2);
        assert_eq!(bufs.lanes.len(), 2);
        {
            let mut lane = bufs.lanes[0].lock().unwrap();
            lane.wire.clear();
            lane.wire.extend_from_slice(&[1u8; 32]);
            assert_eq!(lane.wire.as_ptr(), wire_ptr, "wire scratch must be reused");
        }

        // Dropping the buffers returns the byte scratch to the pool.
        drop(bufs);
        assert_eq!(pool.pooled(), 1, "only the written buffer is worth pooling");
    }

    /// A sparse message can be internally consistent (ids inside its own
    /// advertised range, strictly increasing) while the range itself lies far
    /// past the graph — `decode` cannot know the vertex count, so the worker
    /// must bound the range before `apply_updates` indexes the replica.
    #[test]
    fn oversized_broadcast_range_is_an_error_not_a_panic() {
        let g = path_graph(10);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 2)).unwrap();
        let mut config = GraphHConfig::paper_default(ClusterConfig::paper_testbed(1));
        config.communication = CommunicationMode::Sparse;
        config.message_compressor = None;
        let program = PageRank::new(3);
        let plan = ExecutionPlan::prepare(&config, &p, &program).unwrap();

        let evil = BroadcastMessage {
            range_start: 0,
            range_end: 1 << 30,
            updates: vec![(123_456_789, 1.0)],
        };
        let mut plane = InjectingPlane {
            payload: Some(evil.encode(BroadcastEncoding::Sparse).into()),
        };
        let barrier = SuperstepBarrier::new(1);
        let (metrics_tx, _metrics_rx) = channel();
        let err = run_worker(
            &config,
            &plan,
            &p,
            &program,
            0,
            &mut plane,
            &barrier,
            &metrics_tx,
        )
        .expect_err("oversized range must abort cleanly");
        let rendered = err.error.to_string();
        assert!(rendered.contains("exceeds vertex count"), "{rendered}");
        assert!(!err.secondary);
    }
}
