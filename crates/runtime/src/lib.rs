//! # graphh-runtime
//!
//! The real parallel worker runtime for the GraphH engine.
//!
//! The paper's MPE runs its supersteps on `p` servers concurrently; the
//! sequential reference executor in `graphh-core` iterates the simulated
//! servers on one thread, which keeps the *simulated* cost model honest but
//! makes wall-clock numbers `p×` off. This crate supplies the missing
//! execution substrate:
//!
//! * [`ThreadedExecutor`] — one OS thread per simulated server, each owning
//!   its tile set, vertex-replica array and edge cache (implements
//!   [`graphh_core::Executor`], so `GraphHEngine::with_executor` plugs it in);
//!   inside each server the tile phase additionally fans out to
//!   `threads_per_server` compute threads (the paper's `T`, via
//!   `graphh-pool`'s persistent per-server `WorkerPool`), so the executor
//!   runs `p × T` workers at peak,
//! * [`frame`] — the transport-agnostic framing protocol: [`Frame`], its
//!   length-prefixed wire codec, and the [`SuperstepCollector`] inbox
//!   discipline (superstep ordering, stashing, abort semantics), unit-tested
//!   without threads,
//! * [`BroadcastPlane`] — the all-to-all message fabric the workers broadcast
//!   wire-encoded updates over; every message really travels encoded
//!   (+ compressed) through [`graphh_cluster::MessageCodec`], so Figure 8
//!   traffic is metered per real message. Backends: [`ChannelPlane`]
//!   (in-process mpsc), [`SocketPlane`] (TCP, one blocking reader thread per
//!   peer) and [`PollPlane`] (TCP, **one event-loop thread** multiplexing all
//!   peers over non-blocking sockets) — the TCP planes let each simulated
//!   server be its own OS **process**; the `graphh-node` binary in
//!   `graphh-bench` does exactly that. The wire protocol the TCP backends
//!   speak is specified normatively in `docs/WIRE.md`,
//! * [`SuperstepBarrier`] — BSP's `wait_other_servers`,
//! * [`reduce_metrics`] — deterministic reduction of the per-server
//!   [`graphh_cluster::ServerMetrics`] streams into
//!   [`graphh_cluster::ClusterMetrics`].
//!
//! ## Determinism
//!
//! Thread scheduling must never change results. Three properties guarantee it:
//!
//! 1. each vertex is updated by exactly one tile, and each tile by exactly one
//!    server, so the merged update set of a superstep is schedule-independent,
//! 2. workers sort the merged updates by vertex id before applying
//!    ([`graphh_core::exec::merge_updates`]) — the same order the sequential
//!    executor uses,
//! 3. the superstep barrier + end-of-superstep channel markers keep replicas
//!    in lockstep, so every gather reads the same replica state.
//!
//! The differential tests in this crate and `tests/determinism.rs` enforce
//! bit-identical `values` between [`ThreadedExecutor`] and
//! [`graphh_core::SequentialExecutor`].

pub mod barrier;
pub mod buffer;
pub mod chaos;
pub mod checkpoint;
pub mod frame;
pub mod membership;
pub mod plane;
pub mod poll;
pub mod reduce;
pub mod resume;
pub mod socket;
pub mod threaded;
pub mod worker;

pub use barrier::SuperstepBarrier;
pub use buffer::{BufferPool, PooledBuf};
pub use chaos::{CutPlan, FaultPlane, SeverPeer};
pub use checkpoint::{
    decode_values, encode_values, Checkpoint, CheckpointSink, CHECKPOINT_MAGIC, VALUES_MAGIC,
};
pub use frame::{
    encode_message_into, Frame, FrameDecoder, FrameError, InboxEvent, PlaneError,
    SuperstepCollector, WireMessage,
};
pub use membership::{
    discover, AddressBook, BookEntry, MembershipHandle, MembershipKind, MembershipMsg,
    MembershipState, MembershipView, MergeOutcome, ReconnectBackoff, WireEntry, MEMBERSHIP_MAGIC,
};
pub use plane::{BroadcastPlane, ChannelPlane};
pub use poll::{
    BoundPollPlane, BoundTcpPlane, PollPlane, ReadinessPoller, SpinPoller, TcpPlaneKind,
};
pub use reduce::{reduce_metrics, ReducedMetrics};
pub use resume::{
    validate_peer_table, HandshakeFault, ReplayError, ReplayLog, ResilienceConfig, ResumeHello,
};
pub use socket::{BoundSocketPlane, ResilientSocketPlane, SocketPlane};
pub use threaded::ThreadedExecutor;
pub use worker::{
    run_worker, run_worker_traced, run_worker_with, MetricsSlice, WorkerError, WorkerOptions,
    WorkerOutput,
};
