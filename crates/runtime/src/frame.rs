//! The transport-agnostic framing protocol of the broadcast fabric.
//!
//! Everything a [`crate::plane::BroadcastPlane`] backend needs that is *not*
//! tied to a particular transport lives here, unit-testable without spawning a
//! single thread:
//!
//! * [`Frame`] — what travels between servers (a wire-encoded broadcast
//!   message, an end-of-superstep marker, or an abort),
//! * the **length-prefixed wire codec** ([`Frame::encode`] /
//!   [`Frame::decode`] / [`Frame::read_from`], plus the incremental
//!   [`FrameDecoder`] for non-blocking transports) used whenever frames cross
//!   a byte stream — the TCP [`crate::socket::SocketPlane`] and
//!   [`crate::poll::PollPlane`]; in-process backends ship the `Frame` values
//!   directly,
//! * [`SuperstepCollector`] — the BSP inbox discipline shared by every
//!   backend: frames for a future superstep are stashed, frames from a past
//!   superstep are protocol violations, aborts surface as errors, and a
//!   superstep is complete once every peer's end-of-superstep marker arrived.
//!
//! ## Wire format
//!
//! ```text
//! u32 LE body length | u8 tag | u32 LE sender | tag-specific fields
//!   tag 1 Message        : u32 LE superstep, payload bytes (rest of body)
//!   tag 2 EndOfSuperstep : u32 LE superstep
//!   tag 3 Abort          : (nothing)
//!   tag 4 Ack            : u32 LE superstep   (resilient mode only)
//!   tag 5 Goodbye        : (nothing)          (resilient mode only)
//!   tag 6 Membership     : GHHM message bytes (resilient mode only)
//! ```
//!
//! The length prefix covers the body only. Decoders reject unknown tags,
//! bodies of the wrong size for their tag, and bodies larger than
//! [`MAX_FRAME_BODY`] (a corrupt or hostile length must not trigger a
//! gigantic allocation before the first payload byte is read).
//!
//! The byte-level layout, handshake and inbox discipline are specified
//! normatively in `docs/WIRE.md`; this module is the reference
//! implementation.

use graphh_graph::ids::ServerId;
use std::io::Read;
use std::sync::Arc;

/// A wire-encoded broadcast message as produced by
/// [`graphh_cluster::MessageCodec::encode`]. Reference-counted so one
/// broadcast allocates the payload once no matter how many peers receive it.
pub type WireMessage = Arc<[u8]>;

/// Upper bound on an encoded frame body. Generous (a broadcast message for
/// 2^28 dense f64 updates), but finite: the length prefix is attacker-
/// controlled bytes on a socket transport.
pub const MAX_FRAME_BODY: usize = 256 * 1024 * 1024;

/// Largest message payload one frame can carry: the body cap minus the
/// tag/sender/superstep header. Senders must enforce this —
/// [`encode_message_into`] does — because an oversized body would be
/// rejected by every receiver and a length wrapping past `u32::MAX` would
/// desynchronize the peer's whole stream.
pub const MAX_MESSAGE_PAYLOAD: usize = MAX_FRAME_BODY - 9;

const TAG_MESSAGE: u8 = 1;
const TAG_END_OF_SUPERSTEP: u8 = 2;
const TAG_ABORT: u8 = 3;
const TAG_ACK: u8 = 4;
const TAG_GOODBYE: u8 = 5;
const TAG_MEMBERSHIP: u8 = 6;

/// What travels between servers on the broadcast fabric.
#[derive(Debug, Clone)]
pub enum Frame {
    /// One encoded broadcast message.
    Message {
        /// Sending server.
        sender: ServerId,
        /// Superstep the message belongs to.
        superstep: u32,
        /// Encoded (and possibly compressed) payload.
        wire: WireMessage,
    },
    /// `sender` has published everything for `superstep`.
    EndOfSuperstep {
        /// Sending server.
        sender: ServerId,
        /// The finished superstep.
        superstep: u32,
    },
    /// `sender` hit a fatal error; receivers should abort the run.
    Abort {
        /// Sending server.
        sender: ServerId,
    },
    /// `sender` durably holds its state through `superstep` — peers may
    /// discard retained frames up to and including it. Only the resilient
    /// transports emit (and intercept) acks; an ack must never reach a
    /// [`SuperstepCollector`].
    Ack {
        /// Acknowledging server.
        sender: ServerId,
        /// Last superstep the sender durably applied.
        superstep: u32,
    },
    /// `sender` finished the run and is closing its connections *on
    /// purpose*: the EOF that follows is a clean exit, not a cut. Receivers
    /// must not arm recovery for (or linger on behalf of) a peer that said
    /// goodbye — it needs nothing ever again. Only the resilient transports
    /// emit (and intercept) goodbyes; one must never reach a
    /// [`SuperstepCollector`].
    Goodbye {
        /// Departing server.
        sender: ServerId,
    },
    /// An address-book gossip delta (an encoded `GHHM` message, opaque at
    /// this layer — [`crate::membership::MembershipMsg`] is the codec).
    /// Only the resilient transports emit (and intercept) membership
    /// frames; one must never reach a [`SuperstepCollector`].
    Membership {
        /// Gossiping server.
        sender: ServerId,
        /// The encoded membership message.
        payload: WireMessage,
    },
}

impl Frame {
    /// The server that produced this frame.
    pub fn sender(&self) -> ServerId {
        match *self {
            Frame::Message { sender, .. }
            | Frame::EndOfSuperstep { sender, .. }
            | Frame::Abort { sender }
            | Frame::Ack { sender, .. }
            | Frame::Goodbye { sender }
            | Frame::Membership { sender, .. } => sender,
        }
    }

    /// The superstep a frame belongs to, for the variants that have one.
    pub fn frame_superstep(&self) -> Option<u32> {
        match *self {
            Frame::Message { superstep, .. }
            | Frame::EndOfSuperstep { superstep, .. }
            | Frame::Ack { superstep, .. } => Some(superstep),
            Frame::Abort { .. } | Frame::Goodbye { .. } | Frame::Membership { .. } => None,
        }
    }

    /// Append the length-prefixed encoding of this frame to `out`.
    ///
    /// Message payloads must fit [`MAX_MESSAGE_PAYLOAD`] (transports encoding
    /// caller-supplied payloads use the checked [`encode_message_into`]).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let body_len_at = out.len();
        out.extend_from_slice(&[0u8; 4]);
        match self {
            Frame::Message {
                sender,
                superstep,
                wire,
            } => {
                debug_assert!(wire.len() <= MAX_MESSAGE_PAYLOAD);
                out.push(TAG_MESSAGE);
                out.extend_from_slice(&sender.to_le_bytes());
                out.extend_from_slice(&superstep.to_le_bytes());
                out.extend_from_slice(wire);
            }
            Frame::EndOfSuperstep { sender, superstep } => {
                out.push(TAG_END_OF_SUPERSTEP);
                out.extend_from_slice(&sender.to_le_bytes());
                out.extend_from_slice(&superstep.to_le_bytes());
            }
            Frame::Abort { sender } => {
                out.push(TAG_ABORT);
                out.extend_from_slice(&sender.to_le_bytes());
            }
            Frame::Ack { sender, superstep } => {
                out.push(TAG_ACK);
                out.extend_from_slice(&sender.to_le_bytes());
                out.extend_from_slice(&superstep.to_le_bytes());
            }
            Frame::Goodbye { sender } => {
                out.push(TAG_GOODBYE);
                out.extend_from_slice(&sender.to_le_bytes());
            }
            Frame::Membership { sender, payload } => {
                debug_assert!(payload.len() <= MAX_MESSAGE_PAYLOAD);
                out.push(TAG_MEMBERSHIP);
                out.extend_from_slice(&sender.to_le_bytes());
                out.extend_from_slice(payload);
            }
        }
        let body_len = (out.len() - body_len_at - 4) as u32;
        out[body_len_at..body_len_at + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(Some((frame, consumed)))` on success, `Ok(None)` when `buf`
    /// holds only a prefix of a frame (more bytes needed), and an error when
    /// the bytes can never become a valid frame.
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if body_len > MAX_FRAME_BODY {
            return Err(FrameError::Corrupt(format!(
                "frame body of {body_len} bytes exceeds the {MAX_FRAME_BODY}-byte cap"
            )));
        }
        if body_len < 5 {
            return Err(FrameError::Corrupt(format!(
                "frame body of {body_len} bytes cannot hold a tag and a sender"
            )));
        }
        if buf.len() < 4 + body_len {
            return Ok(None);
        }
        let body = &buf[4..4 + body_len];
        let frame = Self::decode_body(body)?;
        Ok(Some((frame, 4 + body_len)))
    }

    fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let tag = body[0];
        let sender = ServerId::from_le_bytes([body[1], body[2], body[3], body[4]]);
        let rest = &body[5..];
        match tag {
            TAG_MESSAGE => {
                if rest.len() < 4 {
                    return Err(FrameError::Corrupt(
                        "message frame truncated before its superstep".into(),
                    ));
                }
                let superstep = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
                Ok(Frame::Message {
                    sender,
                    superstep,
                    wire: rest[4..].into(),
                })
            }
            TAG_END_OF_SUPERSTEP => {
                if rest.len() != 4 {
                    return Err(FrameError::Corrupt(format!(
                        "end-of-superstep frame must have a 9-byte body, got {}",
                        body.len()
                    )));
                }
                let superstep = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
                Ok(Frame::EndOfSuperstep { sender, superstep })
            }
            TAG_ABORT => {
                if !rest.is_empty() {
                    return Err(FrameError::Corrupt(format!(
                        "abort frame must have a 5-byte body, got {}",
                        body.len()
                    )));
                }
                Ok(Frame::Abort { sender })
            }
            TAG_ACK => {
                if rest.len() != 4 {
                    return Err(FrameError::Corrupt(format!(
                        "ack frame must have a 9-byte body, got {}",
                        body.len()
                    )));
                }
                let superstep = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
                Ok(Frame::Ack { sender, superstep })
            }
            TAG_GOODBYE => {
                if !rest.is_empty() {
                    return Err(FrameError::Corrupt(format!(
                        "goodbye frame must have a 5-byte body, got {}",
                        body.len()
                    )));
                }
                Ok(Frame::Goodbye { sender })
            }
            TAG_MEMBERSHIP => {
                if rest.is_empty() {
                    return Err(FrameError::Corrupt(
                        "membership frame with an empty payload".into(),
                    ));
                }
                Ok(Frame::Membership {
                    sender,
                    payload: rest.into(),
                })
            }
            other => Err(FrameError::Corrupt(format!("unknown frame tag {other}"))),
        }
    }

    /// Read one frame from a byte stream.
    ///
    /// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
    /// boundary); EOF in the middle of a frame is reported as corruption, any
    /// other I/O failure as [`FrameError::Io`].
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Option<Frame>, FrameError> {
        let mut prefix = [0u8; 4];
        let mut filled = 0usize;
        while filled < 4 {
            match reader.read(&mut prefix[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(FrameError::Corrupt(
                        "stream ended inside a frame length prefix".into(),
                    ))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e.to_string())),
            }
        }
        let body_len = u32::from_le_bytes(prefix) as usize;
        if body_len > MAX_FRAME_BODY {
            return Err(FrameError::Corrupt(format!(
                "frame body of {body_len} bytes exceeds the {MAX_FRAME_BODY}-byte cap"
            )));
        }
        if body_len < 5 {
            return Err(FrameError::Corrupt(format!(
                "frame body of {body_len} bytes cannot hold a tag and a sender"
            )));
        }
        let mut body = vec![0u8; body_len];
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                FrameError::Corrupt("stream ended inside a frame body".into())
            } else {
                FrameError::Io(e.to_string())
            }
        })?;
        Self::decode_body(&body).map(Some)
    }
}

/// Incremental decoder for transports that receive bytes in arbitrary pieces.
///
/// The blocking [`Frame::read_from`] owns its stream and can simply block
/// until a whole frame arrived. A non-blocking transport (the event-driven
/// [`crate::poll::PollPlane`]) cannot: a readiness loop hands it whatever the
/// socket had — half a length prefix, three frames and a torn fourth — and
/// must carry the remainder across loop iterations. `FrameDecoder` is that
/// carry: [`push`](Self::push) appends received bytes, and
/// [`next_frame`](Self::next_frame) yields complete frames until only a
/// partial one (or nothing) is left.
///
/// The decoder enforces the same validity rules as [`Frame::decode`] (it is
/// built on it): corrupt bytes surface as [`FrameError::Corrupt`] and a
/// hostile length prefix is rejected before any allocation.
///
/// ```
/// use graphh_runtime::frame::{Frame, FrameDecoder};
///
/// let mut bytes = Vec::new();
/// Frame::EndOfSuperstep { sender: 1, superstep: 0 }.encode(&mut bytes);
///
/// // Feed the encoding one byte at a time: no frame until the last byte.
/// let mut decoder = FrameDecoder::new();
/// for &b in &bytes[..bytes.len() - 1] {
///     decoder.push(&[b]);
///     assert!(decoder.next_frame().unwrap().is_none());
/// }
/// decoder.push(&bytes[bytes.len() - 1..]);
/// assert!(matches!(
///     decoder.next_frame().unwrap(),
///     Some(Frame::EndOfSuperstep { sender: 1, superstep: 0 })
/// ));
/// assert!(decoder.is_clean());
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Received-but-undecoded bytes; everything before `start` was consumed.
    buf: Vec<u8>,
    start: usize,
}

/// Consumed prefix length past which [`FrameDecoder::push`] compacts its
/// buffer instead of letting it grow unboundedly.
const DECODER_COMPACT_THRESHOLD: usize = 64 * 1024;

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= DECODER_COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame from the buffered bytes.
    ///
    /// Returns `Ok(None)` when the buffer holds no frame or only a torn one
    /// (push more bytes and try again); an `Err` means the stream can never
    /// recover (a length-prefix desync has no resynchronization point).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match Frame::decode(&self.buf[self.start..])? {
            Some((frame, consumed)) => {
                self.start += consumed;
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// True when no partially received frame is buffered — i.e. the stream
    /// could end here cleanly. A peer's EOF while `!is_clean()` means the
    /// stream died mid-frame (corruption, not a clean close).
    pub fn is_clean(&self) -> bool {
        self.start == self.buf.len()
    }

    /// Bytes currently buffered but not yet decoded into frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// Append a length-prefixed `Message` frame to `out`, built directly from
/// the payload slice — byte-identical to encoding the equivalent
/// [`Frame::Message`], without allocating the intermediate [`WireMessage`]
/// (the TCP broadcast hot path only needs the bytes, not the frame value).
/// Fails when the payload exceeds [`MAX_MESSAGE_PAYLOAD`]: the sender must
/// error loudly rather than emit a frame every receiver rejects (or, past
/// `u32::MAX`, a wrapped length prefix that desynchronizes the stream).
pub fn encode_message_into(
    sender: ServerId,
    superstep: u32,
    payload: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), FrameError> {
    if payload.len() > MAX_MESSAGE_PAYLOAD {
        return Err(FrameError::Corrupt(format!(
            "broadcast payload of {} bytes exceeds the {MAX_MESSAGE_PAYLOAD}-byte frame cap",
            payload.len()
        )));
    }
    out.extend_from_slice(&((payload.len() + 9) as u32).to_le_bytes());
    out.push(TAG_MESSAGE);
    out.extend_from_slice(&sender.to_le_bytes());
    out.extend_from_slice(&superstep.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Why frame bytes could not be turned into a [`Frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The bytes violate the wire format and can never become a valid frame.
    Corrupt(String),
    /// The underlying stream failed.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
            FrameError::Io(m) => write!(f, "frame stream I/O failure: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Errors surfaced by a broadcast plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaneError {
    /// A peer disconnected without ending the superstep (thread/process died).
    Disconnected,
    /// A peer aborted the run.
    Aborted(ServerId),
    /// Frames arrived out of superstep order, or the byte stream was corrupt.
    Protocol(String),
}

impl std::fmt::Display for PlaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaneError::Disconnected => write!(f, "peer disconnected mid-superstep"),
            PlaneError::Aborted(s) => write!(f, "server {s} aborted the run"),
            PlaneError::Protocol(m) => write!(f, "broadcast protocol violation: {m}"),
        }
    }
}

impl std::error::Error for PlaneError {}

/// One delivery from a backend's inbox: a frame, or the news that one peer's
/// stream ended (its transport will never produce another frame).
///
/// Peer-attributed loss matters: a worker that finishes the run closes its
/// connections while slower peers may still be mid-superstep. Its final
/// frames are already in their inboxes (streams are FIFO), so losing the
/// stream is only fatal to a collect that still *needs* that peer — the
/// collector makes exactly that distinction. Backends without per-peer
/// streams (the channel plane, where a dropped sender is silent and the
/// inbox errors only when every sender is gone) never emit `PeerLost`.
#[derive(Debug)]
pub enum InboxEvent {
    /// A frame arrived.
    Frame(Frame),
    /// `ServerId`'s stream ended with this terminal error.
    PeerLost(ServerId, PlaneError),
    /// `ServerId`'s stream was cut and has been re-established (resilient
    /// transports only). The transport must enqueue this *after* the last
    /// frame of the old stream and *before* the first frame of the new one —
    /// the collector uses the boundary to discard the old stream's torn tail
    /// and to recognize replayed duplicates.
    PeerResumed(ServerId),
}

/// The BSP inbox discipline every broadcast-plane backend shares.
///
/// `collect` pulls events from a backend-supplied source (an mpsc inbox fed
/// by channel senders or socket reader threads) until every peer has ended
/// the requested superstep, enforcing the superstep ordering and abort
/// semantics of the [`crate::plane::BroadcastPlane`] contract:
///
/// * frames tagged with the collected superstep are returned (messages) or
///   checked off (end-of-superstep markers),
/// * frames from a **future** superstep are stashed for the next collect —
///   peers' streams are FIFO individually but interleave in the shared inbox,
///   so a client that pipelines supersteps without an external barrier can see
///   a fast peer's `s + 1` frames before a slow peer's `s`,
/// * frames from a **past** superstep are protocol violations,
/// * an abort frame fails the collect with [`PlaneError::Aborted`],
/// * a [`InboxEvent::PeerLost`] fails the collect only if that peer has not
///   yet ended the superstep being collected (and poisons every later collect
///   the peer's stashed frames cannot satisfy).
///
/// ## Resume discipline (resilient transports)
///
/// A resilient transport reports a recovered connection as
/// [`InboxEvent::PeerResumed`] instead of `PeerLost`. Per-stream FIFO makes
/// recovery well-defined: from one peer, the received supersteps always form
/// a completed prefix plus at most one torn tail. On `PeerResumed(p)` the
/// collector
///
/// * discards the torn tail — stashed frames (and frames already accumulated
///   for the in-progress collect) from `p` whose superstep was never
///   completed by an end-of-superstep marker; the peer re-sends them in full
///   over the new stream,
/// * starts silently dropping frames from `p` below its completed-prefix
///   cursor — a restarted peer re-executing from an older checkpoint re-sends
///   supersteps this server already applied, and those deterministic
///   duplicates must not be double-applied.
///
/// Both rules are inert on a fault-free run: without a `PeerResumed` event no
/// frame is ever purged or dropped, and the strict past-superstep rejection
/// above is unchanged.
#[derive(Debug, Default)]
pub struct SuperstepCollector {
    /// Frames for future supersteps that arrived while collecting an earlier
    /// one.
    stash: Vec<Frame>,
    /// Peers whose streams ended, with the terminal error each one reported.
    dead: Vec<(ServerId, PlaneError)>,
    /// Per-peer count of completed supersteps (last end-of-superstep marker's
    /// superstep + 1), maintained at intake time so it reflects everything
    /// *received*, including markers still stashed for a future collect.
    eos_through: Vec<(ServerId, u32)>,
    /// Per-peer floor below which arriving frames are silently dropped as
    /// post-resume replay duplicates. Empty until a `PeerResumed` arrives.
    drop_until: Vec<(ServerId, u32)>,
}

impl SuperstepCollector {
    /// A collector with an empty stash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain frames from the stash, then `next`, until every peer in `peers`
    /// has ended `superstep`; returns the wire messages of that superstep in
    /// arrival order. An `Err` from `next` is immediately fatal (backends use
    /// it for inbox loss that cannot be attributed to one peer).
    pub fn collect(
        &mut self,
        superstep: u32,
        peers: &[ServerId],
        mut next: impl FnMut() -> Result<InboxEvent, PlaneError>,
    ) -> Result<Vec<WireMessage>, PlaneError> {
        // A dead peer can only contribute what it already stashed: if its
        // end-of-superstep marker for this superstep is not there, waiting
        // would block forever — surface its terminal error instead.
        for (peer, error) in &self.dead {
            let satisfiable = !peers.contains(peer)
                || self.stash.iter().any(|f| {
                    matches!(f, Frame::EndOfSuperstep { sender, superstep: s }
                             if sender == peer && *s == superstep)
                });
            if !satisfiable {
                return Err(error.clone());
            }
        }

        let mut wires: Vec<(ServerId, WireMessage)> = Vec::new();
        let mut pending: Vec<ServerId> = peers.to_vec();
        // Frames stashed by an earlier collect come first. They were already
        // admitted (and cursor-counted) at their original intake, so they are
        // never re-checked against `drop_until`.
        let stashed = std::mem::take(&mut self.stash);
        let mut queue = stashed.into_iter();
        while !pending.is_empty() {
            let frame = match queue.next() {
                Some(frame) => frame,
                // Intake: pull events until one yields an admissible frame.
                None => loop {
                    match next()? {
                        InboxEvent::Frame(frame) => {
                            match &frame {
                                Frame::Message {
                                    sender,
                                    superstep: s,
                                    ..
                                } => {
                                    if *s < Self::cursor(&self.drop_until, *sender) {
                                        continue; // post-resume replay duplicate
                                    }
                                }
                                Frame::EndOfSuperstep {
                                    sender,
                                    superstep: s,
                                } => {
                                    if *s < Self::cursor(&self.drop_until, *sender) {
                                        continue; // post-resume replay duplicate
                                    }
                                    Self::raise_cursor(&mut self.eos_through, *sender, *s + 1);
                                }
                                Frame::Abort { .. } => {}
                                Frame::Ack { sender, .. }
                                | Frame::Goodbye { sender }
                                | Frame::Membership { sender, .. } => {
                                    return Err(PlaneError::Protocol(format!(
                                        "transport-level frame from server {sender} reached \
                                         the collector (acks, goodbyes and membership gossip \
                                         must be intercepted)"
                                    )));
                                }
                            }
                            break frame;
                        }
                        InboxEvent::PeerLost(peer, error) => {
                            self.dead.push((peer, error.clone()));
                            if pending.contains(&peer) {
                                // Streams are FIFO: everything this peer ever
                                // sent was delivered before the loss event, so
                                // it can never end this superstep.
                                return Err(error);
                            }
                            continue;
                        }
                        InboxEvent::PeerResumed(peer) => {
                            let cursor = Self::cursor(&self.eos_through, peer);
                            // Discard the old stream's torn tail: frames of
                            // supersteps the peer never completed. The peer
                            // re-sends those supersteps in full.
                            self.stash.retain(|f| {
                                f.sender() != peer || f.frame_superstep().is_none_or(|s| s < cursor)
                            });
                            if superstep >= cursor {
                                wires.retain(|&(p, _)| p != peer);
                            }
                            Self::raise_cursor(&mut self.drop_until, peer, cursor);
                            continue;
                        }
                    }
                },
            };
            match frame {
                Frame::Message {
                    sender,
                    superstep: s,
                    wire,
                } if s == superstep => wires.push((sender, wire)),
                Frame::EndOfSuperstep {
                    sender,
                    superstep: s,
                } if s == superstep => match pending.iter().position(|&p| p == sender) {
                    Some(slot) => {
                        pending.swap_remove(slot);
                    }
                    None => {
                        return Err(PlaneError::Protocol(format!(
                            "server {sender} ended superstep {superstep} twice"
                        )));
                    }
                },
                Frame::Message { superstep: s, .. }
                | Frame::EndOfSuperstep { superstep: s, .. }
                    if s > superstep =>
                {
                    self.stash.push(frame);
                }
                Frame::Abort { sender } => return Err(PlaneError::Aborted(sender)),
                Frame::Ack { sender, .. }
                | Frame::Goodbye { sender }
                | Frame::Membership { sender, .. } => {
                    // Unreachable (rejected at intake, never stashed), but the
                    // discipline is stated in one place either way.
                    return Err(PlaneError::Protocol(format!(
                        "transport-level frame from server {sender} reached the collector"
                    )));
                }
                Frame::Message { superstep: s, .. }
                | Frame::EndOfSuperstep { superstep: s, .. } => {
                    return Err(PlaneError::Protocol(format!(
                        "frame from past superstep {s} while collecting {superstep}"
                    )));
                }
            }
        }
        // Anything left over in the drained stash belongs to a later superstep.
        self.stash.extend(queue);
        Ok(wires.into_iter().map(|(_, wire)| wire).collect())
    }

    fn cursor(table: &[(ServerId, u32)], peer: ServerId) -> u32 {
        table
            .iter()
            .find(|&&(p, _)| p == peer)
            .map_or(0, |&(_, c)| c)
    }

    fn raise_cursor(table: &mut Vec<(ServerId, u32)>, peer: ServerId, value: u32) {
        match table.iter_mut().find(|(p, _)| *p == peer) {
            Some((_, c)) => *c = (*c).max(value),
            None => table.push((peer, value)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut bytes = Vec::new();
        frame.encode(&mut bytes);
        let (decoded, consumed) = Frame::decode(&bytes).unwrap().expect("complete frame");
        assert_eq!(consumed, bytes.len());
        decoded
    }

    #[test]
    fn message_frame_roundtrips() {
        let payload: Vec<u8> = (0..=255).collect();
        let frame = Frame::Message {
            sender: 7,
            superstep: 42,
            wire: payload.clone().into(),
        };
        match roundtrip(&frame) {
            Frame::Message {
                sender,
                superstep,
                wire,
            } => {
                assert_eq!(sender, 7);
                assert_eq!(superstep, 42);
                assert_eq!(&wire[..], &payload[..]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn empty_payload_and_marker_frames_roundtrip() {
        match roundtrip(&Frame::Message {
            sender: 0,
            superstep: 0,
            wire: Vec::new().into(),
        }) {
            Frame::Message { wire, .. } => assert!(wire.is_empty()),
            other => panic!("wrong variant: {other:?}"),
        }
        match roundtrip(&Frame::EndOfSuperstep {
            sender: 3,
            superstep: u32::MAX,
        }) {
            Frame::EndOfSuperstep { sender, superstep } => {
                assert_eq!((sender, superstep), (3, u32::MAX));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match roundtrip(&Frame::Abort { sender: 9 }) {
            Frame::Abort { sender } => assert_eq!(sender, 9),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn membership_frame_roundtrips_and_rejects_an_empty_payload() {
        let payload: Vec<u8> = b"GHHM-opaque-gossip-bytes".to_vec();
        match roundtrip(&Frame::Membership {
            sender: 6,
            payload: payload.clone().into(),
        }) {
            Frame::Membership { sender, payload: p } => {
                assert_eq!(sender, 6);
                assert_eq!(&p[..], &payload[..]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // A membership frame with no payload bytes is corrupt.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.push(TAG_MEMBERSHIP);
        bytes.extend_from_slice(&6u32.to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn checked_message_encoder_matches_frame_encode_and_rejects_oversize() {
        let payload: Vec<u8> = (0..100).collect();
        let mut via_frame = Vec::new();
        Frame::Message {
            sender: 4,
            superstep: 12,
            wire: payload.clone().into(),
        }
        .encode(&mut via_frame);
        let mut direct = Vec::new();
        encode_message_into(4, 12, &payload, &mut direct).unwrap();
        assert_eq!(
            via_frame, direct,
            "the two encoders must agree byte-for-byte"
        );

        let oversized = vec![0u8; MAX_MESSAGE_PAYLOAD + 1];
        let mut out = Vec::new();
        assert!(matches!(
            encode_message_into(0, 0, &oversized, &mut out),
            Err(FrameError::Corrupt(_))
        ));
        assert!(out.is_empty(), "a rejected payload must write nothing");
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let mut bytes = Vec::new();
        Frame::Message {
            sender: 1,
            superstep: 5,
            wire: vec![1, 2, 3].into(),
        }
        .encode(&mut bytes);
        Frame::EndOfSuperstep {
            sender: 1,
            superstep: 5,
        }
        .encode(&mut bytes);

        let (first, used) = Frame::decode(&bytes).unwrap().unwrap();
        assert!(matches!(first, Frame::Message { .. }));
        let (second, used2) = Frame::decode(&bytes[used..]).unwrap().unwrap();
        assert!(matches!(second, Frame::EndOfSuperstep { .. }));
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn every_truncation_is_incomplete_or_an_error_never_a_panic() {
        let mut bytes = Vec::new();
        Frame::Message {
            sender: 2,
            superstep: 9,
            wire: (0..32u8).collect::<Vec<_>>().into(),
        }
        .encode(&mut bytes);
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Ok(None) | Err(_) => {}
                Ok(Some(_)) => panic!("decoded a frame from a {cut}-byte truncation"),
            }
            // The streaming reader must reject the same truncations (except
            // the empty stream, which is a clean EOF).
            let mut cursor = std::io::Cursor::new(&bytes[..cut]);
            match Frame::read_from(&mut cursor) {
                Ok(None) => assert_eq!(cut, 0, "mid-frame EOF must not look clean"),
                Err(FrameError::Corrupt(_)) => {}
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    /// Mirror of the corrupt-wire fuzz in `tests/determinism.rs`: random byte
    /// flips (and truncations) over valid encodings must decode to `Ok` or
    /// `Err` — never panic, never allocate absurd buffers.
    #[test]
    fn corrupt_byte_fuzz_never_panics() {
        let mut state = 0x2017_2017_2017_2017u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let frames = [
            Frame::Message {
                sender: 0,
                superstep: 3,
                wire: (0..200u8).collect::<Vec<_>>().into(),
            },
            Frame::EndOfSuperstep {
                sender: 5,
                superstep: 17,
            },
            Frame::Abort { sender: 2 },
        ];
        for frame in &frames {
            let mut bytes = Vec::new();
            frame.encode(&mut bytes);
            for _ in 0..500 {
                let mut corrupt = bytes.clone();
                for _ in 0..(1 + next() as usize % 3) {
                    let i = next() as usize % corrupt.len();
                    corrupt[i] ^= (1 + next() % 255) as u8;
                }
                if next() % 4 == 0 {
                    corrupt.truncate(next() as usize % (corrupt.len() + 1));
                }
                let outcome = std::panic::catch_unwind(|| {
                    let _ = Frame::decode(&corrupt);
                    let mut cursor = std::io::Cursor::new(&corrupt);
                    let _ = Frame::read_from(&mut cursor);
                });
                assert!(outcome.is_ok(), "frame decode panicked on corrupt bytes");
            }
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.push(TAG_ABORT);
        assert!(matches!(Frame::decode(&bytes), Err(FrameError::Corrupt(_))));
        let mut cursor = std::io::Cursor::new(&bytes);
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(FrameError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_tag_and_wrong_body_sizes_are_corrupt() {
        // Unknown tag.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.push(99);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(FrameError::Corrupt(_))));
        // Abort with trailing garbage.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&6u32.to_le_bytes());
        bytes.push(TAG_ABORT);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0xff);
        assert!(matches!(Frame::decode(&bytes), Err(FrameError::Corrupt(_))));
        // End-of-superstep one byte short.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.push(TAG_END_OF_SUPERSTEP);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(Frame::decode(&bytes), Err(FrameError::Corrupt(_))));
    }

    // -- incremental decoder -------------------------------------------------

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Message {
                sender: 0,
                superstep: 1,
                wire: (0..64u8).collect::<Vec<_>>().into(),
            },
            Frame::EndOfSuperstep {
                sender: 0,
                superstep: 1,
            },
            Frame::Message {
                sender: 0,
                superstep: 2,
                wire: Vec::new().into(),
            },
            Frame::Abort { sender: 0 },
        ]
    }

    fn encode_all(frames: &[Frame]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for f in frames {
            f.encode(&mut bytes);
        }
        bytes
    }

    fn assert_same_frame(a: &Frame, b: &Frame) {
        match (a, b) {
            (
                Frame::Message {
                    sender: s1,
                    superstep: p1,
                    wire: w1,
                },
                Frame::Message {
                    sender: s2,
                    superstep: p2,
                    wire: w2,
                },
            ) => assert_eq!((s1, p1, &w1[..]), (s2, p2, &w2[..])),
            (
                Frame::EndOfSuperstep {
                    sender: s1,
                    superstep: p1,
                },
                Frame::EndOfSuperstep {
                    sender: s2,
                    superstep: p2,
                },
            ) => assert_eq!((s1, p1), (s2, p2)),
            (Frame::Abort { sender: s1 }, Frame::Abort { sender: s2 }) => assert_eq!(s1, s2),
            (a, b) => panic!("frame variant mismatch: {a:?} vs {b:?}"),
        }
    }

    /// Feeding a frame stream to the decoder in every chunk size from one
    /// byte upward must yield exactly the encoded frames, in order, with the
    /// decoder clean at the end.
    #[test]
    fn decoder_handles_any_chunking_including_one_byte_at_a_time() {
        let frames = sample_frames();
        let bytes = encode_all(&frames);
        for chunk in [1usize, 2, 3, 5, 7, 16, bytes.len()] {
            let mut decoder = FrameDecoder::new();
            let mut decoded = Vec::new();
            for piece in bytes.chunks(chunk) {
                decoder.push(piece);
                while let Some(frame) = decoder.next_frame().unwrap() {
                    decoded.push(frame);
                }
            }
            assert_eq!(decoded.len(), frames.len(), "chunk size {chunk}");
            for (a, b) in decoded.iter().zip(&frames) {
                assert_same_frame(a, b);
            }
            assert!(decoder.is_clean(), "chunk size {chunk}");
            assert_eq!(decoder.pending_bytes(), 0);
        }
    }

    /// A torn frame (every proper prefix) must leave the decoder waiting —
    /// `Ok(None)` and not clean — and complete once the rest arrives.
    #[test]
    fn decoder_reports_torn_frames_as_incomplete_not_errors() {
        let frames = sample_frames();
        let bytes = encode_all(&frames[..1]);
        for cut in 1..bytes.len() {
            let mut decoder = FrameDecoder::new();
            decoder.push(&bytes[..cut]);
            assert!(
                decoder.next_frame().unwrap().is_none(),
                "prefix of {cut} bytes decoded a frame"
            );
            assert!(!decoder.is_clean(), "prefix of {cut} bytes looked clean");
            decoder.push(&bytes[cut..]);
            assert_same_frame(&decoder.next_frame().unwrap().unwrap(), &frames[0]);
            assert!(decoder.is_clean());
        }
    }

    /// A corrupt or hostile length prefix must poison the decoder stream the
    /// same way `Frame::decode` rejects it — before any giant allocation.
    #[test]
    fn decoder_rejects_corrupt_streams() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&u32::MAX.to_le_bytes());
        decoder.push(&[TAG_ABORT]);
        assert!(matches!(decoder.next_frame(), Err(FrameError::Corrupt(_))));

        // Valid frame followed by garbage: the frame decodes, the tail errors.
        let mut decoder = FrameDecoder::new();
        let mut bytes = Vec::new();
        Frame::Abort { sender: 3 }.encode(&mut bytes);
        bytes.extend_from_slice(&2u32.to_le_bytes()); // body too short for a tag+sender
        bytes.extend_from_slice(&[0, 0]);
        decoder.push(&bytes);
        assert!(matches!(
            decoder.next_frame().unwrap(),
            Some(Frame::Abort { sender: 3 })
        ));
        assert!(matches!(decoder.next_frame(), Err(FrameError::Corrupt(_))));
    }

    /// Long-running streams must not accumulate consumed bytes: after many
    /// pushed-and-decoded frames the buffer stays bounded by the compaction
    /// threshold plus one frame.
    #[test]
    fn decoder_compacts_consumed_prefix() {
        let mut decoder = FrameDecoder::new();
        let mut bytes = Vec::new();
        Frame::Message {
            sender: 1,
            superstep: 0,
            wire: vec![0u8; 1024].into(),
        }
        .encode(&mut bytes);
        for _ in 0..1000 {
            decoder.push(&bytes);
            assert!(decoder.next_frame().unwrap().is_some());
            assert!(
                decoder.buf.len() <= DECODER_COMPACT_THRESHOLD + 2 * bytes.len(),
                "decoder buffer grew unboundedly: {} bytes",
                decoder.buf.len()
            );
        }
        assert!(decoder.is_clean());
    }

    // -- collector (no threads involved) ------------------------------------

    fn feed(events: Vec<InboxEvent>) -> impl FnMut() -> Result<InboxEvent, PlaneError> {
        let mut queue = events.into_iter();
        move || queue.next().ok_or(PlaneError::Disconnected)
    }

    fn msg(sender: ServerId, superstep: u32, byte: u8) -> InboxEvent {
        InboxEvent::Frame(Frame::Message {
            sender,
            superstep,
            wire: vec![byte].into(),
        })
    }

    fn eos(sender: ServerId, superstep: u32) -> InboxEvent {
        InboxEvent::Frame(Frame::EndOfSuperstep { sender, superstep })
    }

    fn lost(sender: ServerId) -> InboxEvent {
        InboxEvent::PeerLost(sender, PlaneError::Disconnected)
    }

    #[test]
    fn collector_returns_messages_until_all_peers_end() {
        let mut c = SuperstepCollector::new();
        let wires = c
            .collect(
                0,
                &[1, 2],
                feed(vec![msg(1, 0, 10), eos(1, 0), msg(2, 0, 20), eos(2, 0)]),
            )
            .unwrap();
        assert_eq!(wires.len(), 2);
        assert_eq!(wires[0][0], 10);
        assert_eq!(wires[1][0], 20);
    }

    #[test]
    fn collector_stashes_future_supersteps_for_the_next_collect() {
        let mut c = SuperstepCollector::new();
        // Peer 1 races ahead into superstep 1 before peer 2 finishes 0.
        let events = vec![
            msg(1, 0, 10),
            eos(1, 0),
            msg(1, 1, 11),
            eos(1, 1),
            msg(2, 0, 20),
            eos(2, 0),
        ];
        let s0 = c.collect(0, &[1, 2], feed(events)).unwrap();
        assert_eq!(s0.len(), 2);
        // Superstep 1 completes from the stash plus peer 2's late frames.
        let s1 = c
            .collect(1, &[1, 2], feed(vec![msg(2, 1, 21), eos(2, 1)]))
            .unwrap();
        assert_eq!(s1.len(), 2);
        assert_eq!(s1[0][0], 11, "stashed frame must come first");
    }

    #[test]
    fn collector_rejects_past_supersteps_and_surfaces_aborts() {
        let mut c = SuperstepCollector::new();
        let err = c.collect(5, &[1], feed(vec![msg(1, 2, 0)])).unwrap_err();
        assert!(matches!(err, PlaneError::Protocol(_)));

        let mut c = SuperstepCollector::new();
        let err = c
            .collect(
                0,
                &[1, 2],
                feed(vec![
                    msg(1, 0, 1),
                    InboxEvent::Frame(Frame::Abort { sender: 2 }),
                ]),
            )
            .unwrap_err();
        assert_eq!(err, PlaneError::Aborted(2));
    }

    #[test]
    fn collector_rejects_double_end_of_superstep() {
        let mut c = SuperstepCollector::new();
        let err = c
            .collect(0, &[1, 2], feed(vec![eos(1, 0), eos(1, 0)]))
            .unwrap_err();
        assert!(matches!(err, PlaneError::Protocol(_)));
    }

    #[test]
    fn collector_source_failure_propagates() {
        let mut c = SuperstepCollector::new();
        assert_eq!(
            c.collect(0, &[1], feed(vec![])).unwrap_err(),
            PlaneError::Disconnected
        );
    }

    /// A peer that delivered everything for the collected superstep and then
    /// closed its stream (it finished the run first) must not fail the
    /// collect: slower peers' frames are still owed, the dead peer's are not.
    #[test]
    fn peer_lost_after_ending_the_superstep_is_benign() {
        let mut c = SuperstepCollector::new();
        let wires = c
            .collect(
                0,
                &[1, 2],
                feed(vec![
                    msg(1, 0, 10),
                    eos(1, 0),
                    lost(1), // peer 1 finished the run and closed
                    msg(2, 0, 20),
                    eos(2, 0),
                ]),
            )
            .unwrap();
        assert_eq!(wires.len(), 2);
    }

    #[test]
    fn peer_lost_mid_superstep_fails_the_collect() {
        let mut c = SuperstepCollector::new();
        let err = c
            .collect(0, &[1, 2], feed(vec![msg(1, 0, 10), lost(1)]))
            .unwrap_err();
        assert_eq!(err, PlaneError::Disconnected);
    }

    /// A dead peer poisons a later collect its stash cannot satisfy — the
    /// collector must error up front rather than block forever on a stream
    /// that will never produce the missing end-of-superstep marker.
    #[test]
    fn dead_peer_poisons_unsatisfiable_later_collects() {
        let mut c = SuperstepCollector::new();
        // Peer 1 ends superstep 0, stashes its superstep-1 traffic, then dies.
        let s0 = c
            .collect(
                0,
                &[1, 2],
                feed(vec![
                    eos(1, 0),
                    msg(1, 1, 11),
                    eos(1, 1),
                    lost(1),
                    eos(2, 0),
                ]),
            )
            .unwrap();
        assert!(s0.is_empty());
        // Superstep 1 is satisfiable from the stash.
        let s1 = c.collect(1, &[1, 2], feed(vec![eos(2, 1)])).unwrap();
        assert_eq!(s1.len(), 1);
        // Superstep 2 is not: peer 1 can never end it.
        let err = c.collect(2, &[1, 2], feed(vec![eos(2, 2)])).unwrap_err();
        assert_eq!(err, PlaneError::Disconnected);
    }

    // -- resilient-mode frames and resume discipline -------------------------

    #[test]
    fn ack_frame_roundtrips_and_rejects_wrong_body_size() {
        match roundtrip(&Frame::Ack {
            sender: 6,
            superstep: 31,
        }) {
            Frame::Ack { sender, superstep } => assert_eq!((sender, superstep), (6, 31)),
            other => panic!("wrong variant: {other:?}"),
        }
        // Ack one byte short of its superstep.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.push(TAG_ACK);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(Frame::decode(&bytes), Err(FrameError::Corrupt(_))));
        // Ack with trailing garbage.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&10u32.to_le_bytes());
        bytes.push(TAG_ACK);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0, 0, 0xff]);
        assert!(matches!(Frame::decode(&bytes), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn ack_reaching_the_collector_is_a_protocol_error() {
        let mut c = SuperstepCollector::new();
        let err = c
            .collect(
                0,
                &[1],
                feed(vec![InboxEvent::Frame(Frame::Ack {
                    sender: 1,
                    superstep: 0,
                })]),
            )
            .unwrap_err();
        assert!(matches!(err, PlaneError::Protocol(_)), "{err:?}");
    }

    fn resumed(peer: ServerId) -> InboxEvent {
        InboxEvent::PeerResumed(peer)
    }

    /// A resume purges the stashed torn tail: frames of a superstep the peer
    /// never completed are discarded, and the peer's full re-send of that
    /// superstep is what counts — exactly once.
    #[test]
    fn resume_purges_stashed_torn_tail_and_accepts_the_resend() {
        let mut c = SuperstepCollector::new();
        // A torn superstep-1 message (no EOS) stashes while 0 completes.
        let s0 = c
            .collect(0, &[1], feed(vec![msg(1, 0, 10), msg(1, 1, 99), eos(1, 0)]))
            .unwrap();
        assert_eq!(s0.len(), 1);
        // The peer reconnects and re-sends superstep 1 in full.
        let s1 = c
            .collect(1, &[1], feed(vec![resumed(1), msg(1, 1, 42), eos(1, 1)]))
            .unwrap();
        assert_eq!(
            s1.len(),
            1,
            "torn frame must not survive alongside its re-send"
        );
        assert_eq!(s1[0][0], 42);
    }

    /// A resume mid-collect purges what the torn stream already contributed to
    /// the in-progress superstep, so the peer's full re-send is not doubled.
    #[test]
    fn resume_purges_current_collect_accumulation() {
        let mut c = SuperstepCollector::new();
        let wires = c
            .collect(
                0,
                &[1, 2],
                feed(vec![
                    msg(1, 0, 9), // delivered, then the stream tears
                    resumed(1),
                    msg(1, 0, 9), // full re-send of superstep 0
                    eos(1, 0),
                    msg(2, 0, 20),
                    eos(2, 0),
                ]),
            )
            .unwrap();
        assert_eq!(
            wires.len(),
            2,
            "the torn contribution must be replaced, not kept"
        );
    }

    /// A restarted peer re-executing from an old checkpoint re-sends
    /// supersteps this server already completed; those deterministic
    /// duplicates (including the end-of-superstep markers) are dropped
    /// silently — no double-apply, no double-EOS protocol error.
    #[test]
    fn resume_drops_replayed_supersteps_below_the_completed_prefix() {
        let mut c = SuperstepCollector::new();
        let s0 = c
            .collect(0, &[1], feed(vec![msg(1, 0, 7), eos(1, 0)]))
            .unwrap();
        assert_eq!(s0.len(), 1);
        // Peer restarts from superstep 0 and re-sends everything.
        let s1 = c
            .collect(
                1,
                &[1],
                feed(vec![
                    resumed(1),
                    msg(1, 0, 7), // duplicate of an applied superstep: dropped
                    eos(1, 0),    // duplicate marker: dropped, not double-EOS
                    msg(1, 1, 8),
                    eos(1, 1),
                ]),
            )
            .unwrap();
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0][0], 8);
    }

    /// A peer that completed the in-progress superstep before the cut keeps
    /// its contribution: only the incomplete tail is discarded.
    #[test]
    fn resume_keeps_completed_contributions_of_the_current_superstep() {
        let mut c = SuperstepCollector::new();
        let wires = c
            .collect(
                0,
                &[1, 2],
                feed(vec![
                    msg(1, 0, 5),
                    eos(1, 0), // peer 1 completed superstep 0, then the cut
                    resumed(1),
                    msg(1, 0, 5), // replayed duplicate: dropped
                    eos(1, 0),    // replayed duplicate: dropped
                    msg(2, 0, 6),
                    eos(2, 0),
                ]),
            )
            .unwrap();
        assert_eq!(wires.len(), 2);
    }

    /// Without a resume event the strict discipline is untouched: past-
    /// superstep frames are still protocol violations.
    #[test]
    fn past_superstep_strictness_survives_unrelated_resumes() {
        let mut c = SuperstepCollector::new();
        let s0 = c
            .collect(0, &[1, 2], feed(vec![eos(1, 0), eos(2, 0)]))
            .unwrap();
        assert!(s0.is_empty());
        // Peer 2 resumes; peer 1 then misbehaves with a past-superstep frame.
        let err = c
            .collect(1, &[1, 2], feed(vec![resumed(2), msg(1, 0, 1)]))
            .unwrap_err();
        assert!(matches!(err, PlaneError::Protocol(_)), "{err:?}");
    }
}
