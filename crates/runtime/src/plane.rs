//! The broadcast plane: how worker threads exchange encoded broadcast messages.
//!
//! A [`BroadcastPlane`] is one server's endpoint on an all-to-all message
//! fabric. The contract mirrors the paper's superstep broadcast (§IV-C): a
//! server publishes any number of wire-encoded messages during a superstep,
//! marks the superstep finished, and [`BroadcastPlane::collect`] blocks until
//! *every* peer has finished that superstep, returning everything they sent.
//! The end-of-superstep markers are what make the plane BSP: no frame from
//! superstep `s + 1` can be observed before every frame of `s`.
//!
//! [`ChannelPlane`] is the in-process implementation over `std::sync::mpsc`
//! (one MPSC inbox per server, a sender handle per peer). The trait exists so
//! future backends (async sockets, multi-process shared memory — see ROADMAP)
//! can slot in without touching the executor.

use graphh_graph::ids::ServerId;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// A wire-encoded broadcast message as produced by
/// [`graphh_cluster::MessageCodec::encode`]. Reference-counted so one
/// broadcast allocates the payload once no matter how many peers receive it.
pub type WireMessage = Arc<[u8]>;

/// What travels between worker threads.
#[derive(Debug)]
pub enum Frame {
    /// One encoded broadcast message.
    Message {
        /// Sending server.
        sender: ServerId,
        /// Superstep the message belongs to.
        superstep: u32,
        /// Encoded (and possibly compressed) payload.
        wire: WireMessage,
    },
    /// `sender` has published everything for `superstep`.
    EndOfSuperstep {
        /// Sending server.
        sender: ServerId,
        /// The finished superstep.
        superstep: u32,
    },
    /// `sender` hit a fatal error; receivers should abort the run.
    Abort {
        /// Sending server.
        sender: ServerId,
    },
}

/// Errors surfaced by a broadcast plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaneError {
    /// A peer disconnected without ending the superstep (thread died).
    Disconnected,
    /// A peer aborted the run.
    Aborted(ServerId),
    /// Frames arrived out of superstep order (protocol bug).
    Protocol(String),
}

impl std::fmt::Display for PlaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaneError::Disconnected => write!(f, "peer disconnected mid-superstep"),
            PlaneError::Aborted(s) => write!(f, "server {s} aborted the run"),
            PlaneError::Protocol(m) => write!(f, "broadcast protocol violation: {m}"),
        }
    }
}

impl std::error::Error for PlaneError {}

/// One server's endpoint on the all-to-all broadcast fabric.
pub trait BroadcastPlane: Send {
    /// Total servers on the plane.
    fn num_servers(&self) -> u32;

    /// This endpoint's server id.
    fn server_id(&self) -> ServerId;

    /// Publish one wire message to every other server.
    fn broadcast(&mut self, superstep: u32, wire: &[u8]) -> Result<(), PlaneError>;

    /// Mark `superstep` finished on this server.
    fn end_superstep(&mut self, superstep: u32) -> Result<(), PlaneError>;

    /// Block until every peer has ended `superstep`; returns their wire
    /// messages in arrival order. (Arrival order is nondeterministic across
    /// peers — consumers must not depend on it; the engine sorts updates
    /// before applying them.)
    fn collect(&mut self, superstep: u32) -> Result<Vec<WireMessage>, PlaneError>;

    /// Tell every peer this server is aborting (best effort, never blocks).
    fn abort(&mut self);
}

/// In-process broadcast plane over `std::sync::mpsc` channels.
pub struct ChannelPlane {
    id: ServerId,
    num_servers: u32,
    /// Sender handle into every *other* server's inbox, ordered by server id.
    peers: Vec<(ServerId, Sender<Frame>)>,
    /// This server's inbox.
    inbox: Receiver<Frame>,
    /// Frames for future supersteps that arrived while collecting an earlier
    /// one. Peers' streams are FIFO individually but interleave in the shared
    /// inbox, so a client that pipelines supersteps without an external
    /// barrier can see a fast peer's `s + 1` frames before a slow peer's `s`.
    /// The current worker loop crosses a barrier between supersteps and never
    /// hits this, but the `BroadcastPlane` contract does not require a
    /// barrier, and the no-barrier unit test below exercises it.
    stash: Vec<Frame>,
}

impl ChannelPlane {
    /// Build a fully-connected plane for `num_servers` servers, returning one
    /// endpoint per server (ordered by server id).
    pub fn connect(num_servers: u32) -> Vec<ChannelPlane> {
        assert!(num_servers > 0);
        let (senders, inboxes): (Vec<Sender<Frame>>, Vec<Receiver<Frame>>) =
            (0..num_servers).map(|_| channel()).unzip();
        inboxes
            .into_iter()
            .enumerate()
            .map(|(sid, inbox)| ChannelPlane {
                id: sid as ServerId,
                num_servers,
                peers: senders
                    .iter()
                    .enumerate()
                    .filter(|&(peer, _)| peer != sid)
                    .map(|(peer, tx)| (peer as ServerId, tx.clone()))
                    .collect(),
                inbox,
                stash: Vec::new(),
            })
            .collect()
    }
}

impl BroadcastPlane for ChannelPlane {
    fn num_servers(&self) -> u32 {
        self.num_servers
    }

    fn server_id(&self) -> ServerId {
        self.id
    }

    fn broadcast(&mut self, superstep: u32, wire: &[u8]) -> Result<(), PlaneError> {
        // One shared allocation for all peers instead of a copy per peer.
        let wire: WireMessage = wire.into();
        for (_, tx) in &self.peers {
            tx.send(Frame::Message {
                sender: self.id,
                superstep,
                wire: Arc::clone(&wire),
            })
            .map_err(|_| PlaneError::Disconnected)?;
        }
        Ok(())
    }

    fn end_superstep(&mut self, superstep: u32) -> Result<(), PlaneError> {
        for (_, tx) in &self.peers {
            tx.send(Frame::EndOfSuperstep {
                sender: self.id,
                superstep,
            })
            .map_err(|_| PlaneError::Disconnected)?;
        }
        Ok(())
    }

    fn collect(&mut self, superstep: u32) -> Result<Vec<WireMessage>, PlaneError> {
        let mut wires = Vec::new();
        let mut pending = self.num_servers - 1;
        // Frames stashed by an earlier collect come first.
        let stashed = std::mem::take(&mut self.stash);
        let mut queue = stashed.into_iter();
        while pending > 0 {
            let frame = match queue.next() {
                Some(frame) => frame,
                None => self.inbox.recv().map_err(|_| PlaneError::Disconnected)?,
            };
            match frame {
                Frame::Message {
                    superstep: s, wire, ..
                } if s == superstep => wires.push(wire),
                Frame::EndOfSuperstep { superstep: s, .. } if s == superstep => pending -= 1,
                Frame::Message { superstep: s, .. }
                | Frame::EndOfSuperstep { superstep: s, .. }
                    if s > superstep =>
                {
                    self.stash.push(frame);
                }
                Frame::Abort { sender } => return Err(PlaneError::Aborted(sender)),
                Frame::Message { superstep: s, .. }
                | Frame::EndOfSuperstep { superstep: s, .. } => {
                    return Err(PlaneError::Protocol(format!(
                        "frame from past superstep {s} while collecting {superstep}"
                    )));
                }
            }
        }
        // Anything left over in the drained stash belongs to a later superstep.
        self.stash.extend(queue);
        Ok(wires)
    }

    fn abort(&mut self) {
        for (_, tx) in &self.peers {
            let _ = tx.send(Frame::Abort { sender: self.id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_server_collects_nothing() {
        let mut planes = ChannelPlane::connect(1);
        let mut p = planes.pop().unwrap();
        p.end_superstep(0).unwrap();
        assert_eq!(p.collect(0).unwrap(), Vec::<WireMessage>::new());
    }

    #[test]
    fn all_to_all_delivery_respects_superstep_framing() {
        let planes = ChannelPlane::connect(3);
        let results: Vec<Vec<usize>> = thread::scope(|scope| {
            let handles: Vec<_> = planes
                .into_iter()
                .map(|mut p| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for s in 0..4u32 {
                            // Each server sends s+1 messages tagged with its id.
                            for _ in 0..=s {
                                p.broadcast(s, &[p.server_id() as u8]).unwrap();
                            }
                            p.end_superstep(s).unwrap();
                            let got = p.collect(s).unwrap();
                            seen.push(got.len());
                            // Every peer sent s+1 one-byte messages.
                            assert!(got.iter().all(|w| w.len() == 1));
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for seen in results {
            assert_eq!(seen, vec![2, 4, 6, 8]);
        }
    }

    #[test]
    fn abort_is_observed_by_peers() {
        let mut planes = ChannelPlane::connect(2);
        let mut b = planes.pop().unwrap();
        let mut a = planes.pop().unwrap();
        b.abort();
        a.end_superstep(0).unwrap();
        assert_eq!(a.collect(0), Err(PlaneError::Aborted(1)));
    }

    #[test]
    fn dropped_peer_surfaces_as_disconnect() {
        let mut planes = ChannelPlane::connect(2);
        let b = planes.pop().unwrap();
        let mut a = planes.pop().unwrap();
        drop(b);
        assert_eq!(a.collect(0), Err(PlaneError::Disconnected));
    }
}
