//! The broadcast plane: how worker threads exchange encoded broadcast messages.
//!
//! A [`BroadcastPlane`] is one server's endpoint on an all-to-all message
//! fabric. The contract mirrors the paper's superstep broadcast (§IV-C): a
//! server publishes any number of wire-encoded messages during a superstep,
//! marks the superstep finished, and [`BroadcastPlane::collect`] blocks until
//! *every* peer has finished that superstep, returning everything they sent.
//! The end-of-superstep markers are what make the plane BSP: no frame from
//! superstep `s + 1` can be observed before every frame of `s`.
//!
//! The framing protocol itself — [`Frame`], its length-prefixed wire codec and
//! the [`SuperstepCollector`] inbox discipline — is transport-agnostic and
//! lives in [`crate::frame`] (normative spec: `docs/WIRE.md`). Three backends
//! implement the trait on top of it:
//!
//! * [`ChannelPlane`] — in-process, over `std::sync::mpsc` (one MPSC inbox per
//!   server, a sender handle per peer); frames travel as values, no bytes are
//!   copied,
//! * [`crate::socket::SocketPlane`] — multi-process, over TCP: frames travel
//!   length-prefix-encoded, one blocking reader thread per peer feeds the
//!   same inbox discipline,
//! * [`crate::poll::PollPlane`] — multi-process, over TCP, event-driven: a
//!   single readiness-loop thread multiplexes all peer sockets (non-blocking
//!   I/O, incremental decoding, backpressured write queues).

pub use crate::frame::{Frame, PlaneError, WireMessage};
use crate::frame::{InboxEvent, SuperstepCollector};
use graphh_graph::ids::ServerId;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// One server's endpoint on the all-to-all broadcast fabric.
///
/// The BSP shape in miniature — publish, mark the superstep done, collect
/// everything the peers published:
///
/// ```
/// use graphh_runtime::{BroadcastPlane, ChannelPlane};
///
/// let mut planes = ChannelPlane::connect(2);
/// let mut b = planes.pop().unwrap();
/// let mut a = planes.pop().unwrap();
///
/// a.broadcast(0, b"hello").unwrap();
/// a.end_superstep(0).unwrap();
/// b.end_superstep(0).unwrap();
///
/// // `b` sees `a`'s message; `a` sees nothing — `b` published nothing.
/// let received = b.collect(0).unwrap();
/// assert_eq!(&received[0][..], b"hello");
/// assert!(a.collect(0).unwrap().is_empty());
/// ```
///
/// The TCP backends ([`crate::socket::SocketPlane`],
/// [`crate::poll::PollPlane`]) have the same shape after their two-phase
/// bind/establish; `docs/WIRE.md` §5 spells out the full conformance
/// contract a new backend must satisfy.
pub trait BroadcastPlane: Send {
    /// Total servers on the plane.
    fn num_servers(&self) -> u32;

    /// This endpoint's server id.
    fn server_id(&self) -> ServerId;

    /// Publish one wire message to every other server.
    fn broadcast(&mut self, superstep: u32, wire: &[u8]) -> Result<(), PlaneError>;

    /// Mark `superstep` finished on this server.
    fn end_superstep(&mut self, superstep: u32) -> Result<(), PlaneError>;

    /// Block until every peer has ended `superstep`; returns their wire
    /// messages in arrival order. (Arrival order is nondeterministic across
    /// peers — consumers must not depend on it; the engine sorts updates
    /// before applying them.)
    fn collect(&mut self, superstep: u32) -> Result<Vec<WireMessage>, PlaneError>;

    /// Declare that this server durably holds all state through `superstep`
    /// (applied in memory, or checkpointed when the worker persists state) —
    /// so peers may discard their retained replay frames for it. Resilient
    /// transports forward this as an `Ack` frame and trim their own replay
    /// logs on the acks they receive; for everything else durability is moot
    /// and the default is a no-op, keeping the fault-free wire byte stream
    /// and allocation profile unchanged.
    fn acknowledge(&mut self, _superstep: u32) -> Result<(), PlaneError> {
        Ok(())
    }

    /// Tell every peer this server is aborting (best effort, never blocks).
    fn abort(&mut self);
}

/// In-process broadcast plane over `std::sync::mpsc` channels.
pub struct ChannelPlane {
    id: ServerId,
    num_servers: u32,
    /// Peer ids, sorted — the collector's completeness set, computed once.
    peer_ids: Vec<ServerId>,
    /// Sender handle into every *other* server's inbox, ordered by server id.
    peers: Vec<(ServerId, Sender<Frame>)>,
    /// This server's inbox.
    inbox: Receiver<Frame>,
    /// The shared BSP inbox discipline (stash + superstep ordering).
    collector: SuperstepCollector,
}

impl ChannelPlane {
    /// Build a fully-connected plane for `num_servers` servers, returning one
    /// endpoint per server (ordered by server id).
    pub fn connect(num_servers: u32) -> Vec<ChannelPlane> {
        assert!(num_servers > 0);
        let (senders, inboxes): (Vec<Sender<Frame>>, Vec<Receiver<Frame>>) =
            (0..num_servers).map(|_| channel()).unzip();
        inboxes
            .into_iter()
            .enumerate()
            .map(|(sid, inbox)| {
                let peers: Vec<(ServerId, Sender<Frame>)> = senders
                    .iter()
                    .enumerate()
                    .filter(|&(peer, _)| peer != sid)
                    .map(|(peer, tx)| (peer as ServerId, tx.clone()))
                    .collect();
                ChannelPlane {
                    id: sid as ServerId,
                    num_servers,
                    peer_ids: peers.iter().map(|&(p, _)| p).collect(),
                    peers,
                    inbox,
                    collector: SuperstepCollector::new(),
                }
            })
            .collect()
    }
}

impl BroadcastPlane for ChannelPlane {
    fn num_servers(&self) -> u32 {
        self.num_servers
    }

    fn server_id(&self) -> ServerId {
        self.id
    }

    fn broadcast(&mut self, superstep: u32, wire: &[u8]) -> Result<(), PlaneError> {
        // One shared allocation for all peers instead of a copy per peer.
        let wire: WireMessage = wire.into();
        for (_, tx) in &self.peers {
            tx.send(Frame::Message {
                sender: self.id,
                superstep,
                wire: Arc::clone(&wire),
            })
            .map_err(|_| PlaneError::Disconnected)?;
        }
        Ok(())
    }

    fn end_superstep(&mut self, superstep: u32) -> Result<(), PlaneError> {
        for (_, tx) in &self.peers {
            tx.send(Frame::EndOfSuperstep {
                sender: self.id,
                superstep,
            })
            .map_err(|_| PlaneError::Disconnected)?;
        }
        Ok(())
    }

    fn collect(&mut self, superstep: u32) -> Result<Vec<WireMessage>, PlaneError> {
        let inbox = &self.inbox;
        self.collector.collect(superstep, &self.peer_ids, || {
            // A recv failure means *every* sender is gone (a single dead peer
            // keeps the channel open through the other clones), so it is
            // fatal rather than peer-attributed.
            inbox
                .recv()
                .map(InboxEvent::Frame)
                .map_err(|_| PlaneError::Disconnected)
        })
    }

    fn abort(&mut self) {
        for (_, tx) in &self.peers {
            let _ = tx.send(Frame::Abort { sender: self.id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_server_collects_nothing() {
        let mut planes = ChannelPlane::connect(1);
        let mut p = planes.pop().unwrap();
        p.end_superstep(0).unwrap();
        assert_eq!(p.collect(0).unwrap(), Vec::<WireMessage>::new());
    }

    #[test]
    fn all_to_all_delivery_respects_superstep_framing() {
        let planes = ChannelPlane::connect(3);
        let results: Vec<Vec<usize>> = thread::scope(|scope| {
            let handles: Vec<_> = planes
                .into_iter()
                .map(|mut p| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for s in 0..4u32 {
                            // Each server sends s+1 messages tagged with its id.
                            for _ in 0..=s {
                                p.broadcast(s, &[p.server_id() as u8]).unwrap();
                            }
                            p.end_superstep(s).unwrap();
                            let got = p.collect(s).unwrap();
                            seen.push(got.len());
                            // Every peer sent s+1 one-byte messages.
                            assert!(got.iter().all(|w| w.len() == 1));
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for seen in results {
            assert_eq!(seen, vec![2, 4, 6, 8]);
        }
    }

    #[test]
    fn abort_is_observed_by_peers() {
        let mut planes = ChannelPlane::connect(2);
        let mut b = planes.pop().unwrap();
        let mut a = planes.pop().unwrap();
        b.abort();
        a.end_superstep(0).unwrap();
        assert_eq!(a.collect(0), Err(PlaneError::Aborted(1)));
    }

    #[test]
    fn dropped_peer_surfaces_as_disconnect() {
        let mut planes = ChannelPlane::connect(2);
        let b = planes.pop().unwrap();
        let mut a = planes.pop().unwrap();
        drop(b);
        assert_eq!(a.collect(0), Err(PlaneError::Disconnected));
    }
}
