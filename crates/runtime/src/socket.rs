//! TCP backend of the broadcast plane: real multi-process transport.
//!
//! [`SocketPlane`] puts one simulated server in its own OS **process** (the
//! `graphh-node` binary in `graphh-bench` does exactly that): every pair of
//! servers shares one full-duplex TCP connection, frames travel in the
//! length-prefixed wire encoding of [`crate::frame`], and one reader thread
//! per peer feeds the same [`SuperstepCollector`] inbox discipline the
//! in-process [`crate::plane::ChannelPlane`] uses — so the executor-facing
//! behaviour (superstep ordering, stashing, abort semantics) is identical and
//! the differential tests pin TCP runs bit-identical to the sequential
//! reference.
//!
//! ## Topology and handshake
//!
//! Establishment is deterministic and cycle-free: server `i` **connects** to
//! every peer with a smaller id and **accepts** from every peer with a larger
//! one. The connector opens the connection with a 12-byte handshake —
//! `b"GHH1" | u32 LE cluster size | u32 LE sender id` — which the acceptor
//! validates (magic, matching cluster size, expected and not-yet-seen id)
//! before the stream joins the fabric. Connects retry while the peer's
//! listener is still coming up; both sides give up after the establish
//! timeout instead of hanging on a misconfigured cluster.

use crate::frame::{Frame, FrameError, InboxEvent, PlaneError, SuperstepCollector, WireMessage};
use crate::plane::BroadcastPlane;
use graphh_graph::ids::ServerId;
use graphh_obs::{global_counters, Counter};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// First bytes of every connection: protocol magic + version.
const HANDSHAKE_MAGIC: [u8; 4] = *b"GHH1";

/// How long [`BoundSocketPlane::establish`] keeps retrying connects and
/// polling accepts before giving up on an absent peer.
pub const DEFAULT_ESTABLISH_TIMEOUT: Duration = Duration::from_secs(10);

/// A socket plane that has bound its listener but not yet connected to its
/// peers. Two-phase establishment exists so callers (tests, the `graphh-node`
/// launcher) can bind every listener first — `local_addr` then reports the
/// OS-assigned port — before any endpoint starts dialing.
pub struct BoundSocketPlane {
    id: ServerId,
    num_servers: u32,
    listener: TcpListener,
}

impl BoundSocketPlane {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Seed-node bootstrap: learn the full `id → address` book from `seeds`
    /// via `GHHM` exchanges on this plane's listener (see
    /// [`crate::membership::discover`]). Follow with
    /// [`Self::establish_discovered`] or [`Self::establish_resilient_discovered`].
    pub fn discover(
        &self,
        seeds: &[SocketAddr],
        timeout: Duration,
    ) -> std::io::Result<crate::membership::MembershipView> {
        crate::membership::discover(
            self.id,
            self.num_servers as usize,
            &self.listener,
            seeds,
            timeout,
        )
    }

    /// Connect to every peer and return the ready plane.
    ///
    /// `peer_addrs` holds one address per server, indexed by server id (this
    /// server's own entry is ignored). Blocks until all `num_servers - 1`
    /// connections are up, retrying for [`DEFAULT_ESTABLISH_TIMEOUT`].
    pub fn establish(self, peer_addrs: &[SocketAddr]) -> std::io::Result<SocketPlane> {
        self.establish_with_timeout(peer_addrs, DEFAULT_ESTABLISH_TIMEOUT)
    }

    /// [`Self::establish`] with an explicit timeout.
    pub fn establish_with_timeout(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
    ) -> std::io::Result<SocketPlane> {
        self.establish_inner(peer_addrs, timeout, Vec::new(), None)
    }

    /// Establish against the address book learned by seed discovery
    /// ([`crate::membership::discover`]) instead of a static table. The
    /// view's early-stashed connections (peers that dialed `GHH1` while this
    /// node was still bootstrapping) feed the normal accept handling, and
    /// the listener keeps answering `GHHM` exchanges for peers still
    /// bootstrapping their own books.
    pub fn establish_discovered(
        self,
        view: crate::membership::MembershipView,
        timeout: Duration,
    ) -> std::io::Result<SocketPlane> {
        let crate::membership::MembershipView {
            handle,
            peer_addrs,
            early,
            ..
        } = view;
        self.establish_inner(&peer_addrs, timeout, early, Some(&handle))
    }

    fn establish_inner(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
        early: Vec<TcpStream>,
        membership: Option<&crate::membership::MembershipState>,
    ) -> std::io::Result<SocketPlane> {
        let BoundSocketPlane {
            id,
            num_servers,
            listener,
        } = self;
        let streams = establish_streams(
            id,
            num_servers,
            listener,
            peer_addrs,
            timeout,
            early,
            membership,
        )?;

        // One reader thread per peer feeds the shared inbox; the write halves
        // stay with the plane. Per-peer counters register here — once, at
        // establish time — so the reader loops only touch atomics.
        let registry = global_counters();
        let (tx, inbox) = channel::<InboxEvent>();
        let peer_ids: Vec<ServerId> = streams.iter().map(|&(peer, _)| peer).collect();
        let mut writers = Vec::with_capacity(streams.len());
        let mut readers = Vec::with_capacity(streams.len());
        for (peer, stream) in streams {
            let read_half = stream.try_clone()?;
            let tx = tx.clone();
            let frames_in = registry.counter(&format!("socket.s{id}.from{peer}.frames_in"));
            let bytes_in = registry.counter(&format!("socket.s{id}.from{peer}.bytes_in"));
            readers.push(
                std::thread::Builder::new()
                    .name(format!("graphh-sock-rx-{id}-from-{peer}"))
                    .spawn(move || reader_loop(read_half, peer, &tx, frames_in, bytes_in))
                    .map_err(|e| std::io::Error::other(format!("spawn reader thread: {e}")))?,
            );
            writers.push((peer, BufWriter::new(stream)));
        }
        Ok(SocketPlane {
            id,
            num_servers,
            peer_ids,
            writers,
            inbox,
            collector: SuperstepCollector::new(),
            readers,
            scratch: Vec::new(),
            bytes_written: registry.counter("socket.bytes_written"),
        })
    }
}

/// TCP implementation of [`BroadcastPlane`]: one full-duplex connection per
/// peer, frames in the length-prefixed wire encoding, reader threads feeding
/// the shared [`SuperstepCollector`] discipline.
pub struct SocketPlane {
    id: ServerId,
    num_servers: u32,
    /// Peer ids, sorted — the collector's completeness set, computed once.
    peer_ids: Vec<ServerId>,
    /// Write halves, ordered by peer id.
    writers: Vec<(ServerId, BufWriter<TcpStream>)>,
    /// Frames (and peer-loss events) from every reader thread.
    inbox: Receiver<InboxEvent>,
    collector: SuperstepCollector,
    readers: Vec<JoinHandle<()>>,
    /// Reused frame-encoding buffer.
    scratch: Vec<u8>,
    /// Total wire bytes handed to the write halves (all peers combined).
    bytes_written: Counter,
}

impl SocketPlane {
    /// Bind the listener for server `id` of a `num_servers` cluster on
    /// `listen_addr` (port 0 picks a free port; see
    /// [`BoundSocketPlane::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(
        id: ServerId,
        num_servers: u32,
        listen_addr: A,
    ) -> std::io::Result<BoundSocketPlane> {
        let listener = bind_listener(id, num_servers, listen_addr)?;
        Ok(BoundSocketPlane {
            id,
            num_servers,
            listener,
        })
    }

    /// Encode `frame` once and write it to every peer.
    fn send_to_all(&mut self, frame: &Frame) -> Result<(), PlaneError> {
        self.scratch.clear();
        frame.encode(&mut self.scratch);
        for (_, writer) in &mut self.writers {
            writer
                .write_all(&self.scratch)
                .map_err(|_| PlaneError::Disconnected)?;
            self.bytes_written.add(self.scratch.len() as u64);
        }
        Ok(())
    }
}

impl BroadcastPlane for SocketPlane {
    fn num_servers(&self) -> u32 {
        self.num_servers
    }

    fn server_id(&self) -> ServerId {
        self.id
    }

    fn broadcast(&mut self, superstep: u32, wire: &[u8]) -> Result<(), PlaneError> {
        // Encode straight from the payload slice (no intermediate Arc copy on
        // the hot path); the size check makes an oversized broadcast a clear
        // sender-side error instead of a stream every receiver rejects.
        self.scratch.clear();
        crate::frame::encode_message_into(self.id, superstep, wire, &mut self.scratch)
            .map_err(|e| PlaneError::Protocol(e.to_string()))?;
        for (_, writer) in &mut self.writers {
            writer
                .write_all(&self.scratch)
                .map_err(|_| PlaneError::Disconnected)?;
            self.bytes_written.add(self.scratch.len() as u64);
        }
        Ok(())
    }

    fn end_superstep(&mut self, superstep: u32) -> Result<(), PlaneError> {
        let frame = Frame::EndOfSuperstep {
            sender: self.id,
            superstep,
        };
        self.send_to_all(&frame)?;
        // The superstep's frames must actually hit the wire: peers block in
        // `collect` until they see this marker.
        for (_, writer) in &mut self.writers {
            writer.flush().map_err(|_| PlaneError::Disconnected)?;
        }
        Ok(())
    }

    fn collect(&mut self, superstep: u32) -> Result<Vec<WireMessage>, PlaneError> {
        let inbox = &self.inbox;
        self.collector.collect(superstep, &self.peer_ids, || {
            inbox.recv().map_err(|_| PlaneError::Disconnected)
        })
    }

    fn abort(&mut self) {
        let frame = Frame::Abort { sender: self.id };
        self.scratch.clear();
        frame.encode(&mut self.scratch);
        for (_, writer) in &mut self.writers {
            // Best effort: a peer that is already gone cannot be told.
            let _ = writer.write_all(&self.scratch);
            let _ = writer.flush();
        }
    }
}

impl Drop for SocketPlane {
    fn drop(&mut self) {
        for (_, writer) in &mut self.writers {
            let _ = writer.flush();
            // Shutting down the socket unblocks this plane's reader thread
            // (same fd) and delivers EOF to the peer's.
            let _ = writer.get_ref().shutdown(Shutdown::Both);
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for SocketPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketPlane")
            .field("id", &self.id)
            .field("num_servers", &self.num_servers)
            .finish()
    }
}

/// Establish the fully-connected fabric: the deterministic dial-lower /
/// accept-higher topology plus the GHH1 handshake, shared by every TCP
/// backend ([`SocketPlane`] and [`crate::poll::PollPlane`] differ only in how
/// they *drive* the established streams). Returns one blocking, NODELAY
/// stream per peer, sorted by peer id. See `docs/WIRE.md` §2 for the
/// normative handshake spec.
pub(crate) fn establish_streams(
    id: ServerId,
    num_servers: u32,
    listener: TcpListener,
    peer_addrs: &[SocketAddr],
    timeout: Duration,
    early: Vec<TcpStream>,
    membership: Option<&crate::membership::MembershipState>,
) -> std::io::Result<Vec<(ServerId, TcpStream)>> {
    if peer_addrs.len() != num_servers as usize {
        return Err(invalid_input(format!(
            "need one address per server: got {} for a {num_servers}-server cluster",
            peer_addrs.len()
        )));
    }
    let deadline = Instant::now() + timeout;

    // Dial every lower id (their listeners are up or coming up), then
    // accept every higher id. The direction is fixed by the ids, so the
    // establishment graph is acyclic and cannot deadlock; the listener
    // backlog holds early connects from higher ids until we accept them.
    let mut streams: Vec<(ServerId, TcpStream)> =
        Vec::with_capacity(num_servers.saturating_sub(1) as usize);
    for peer in 0..id {
        let stream = connect_with_retry(peer_addrs[peer as usize], deadline)?;
        stream.set_nodelay(true)?;
        let mut hello = Vec::with_capacity(12);
        hello.extend_from_slice(&HANDSHAKE_MAGIC);
        hello.extend_from_slice(&num_servers.to_le_bytes());
        hello.extend_from_slice(&id.to_le_bytes());
        let mut stream_ref = &stream;
        stream_ref.write_all(&hello)?;
        stream_ref.flush()?;
        streams.push((peer, stream));
    }
    let mut expected: Vec<ServerId> = ((id + 1)..num_servers).collect();
    // Connections stashed by a seed-discovery bootstrap before establish
    // began: ordinary GHH1 dials from higher ids that arrived while this node
    // was still gossiping its address book. They go through the same
    // handshake validation as freshly accepted streams.
    let mut pending: Vec<TcpStream> = early;
    listener.set_nonblocking(true)?;
    while !expected.is_empty() {
        // Checked every iteration — including after a dropped stray — so a
        // periodic prober on the listen port cannot starve the timeout by
        // keeping accept() busy.
        if Instant::now() >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!(
                    "server {id}: peers {expected:?} did not connect before the establish \
                     timeout"
                ),
            ));
        }
        let stream = if let Some(stream) = pending.pop() {
            stream
        } else {
            match listener.accept() {
                Ok((stream, from)) => {
                    stream.set_nonblocking(false)?;
                    // Seed-mode listeners keep answering `GHHM` exchanges:
                    // peers still bootstrapping their own address books dial
                    // us after our own discovery already converged.
                    if let Some(state) = membership {
                        match crate::membership::peek_magic(&stream) {
                            Ok(magic) if magic == crate::membership::MEMBERSHIP_MAGIC => {
                                let mut stream = stream;
                                let _ = state.serve_stream(&mut stream);
                                continue;
                            }
                            Ok(_) => {}
                            Err(why) => {
                                eprintln!(
                                    "graphh establish (server {id}): ignoring connection \
                                     from {from}: {why}"
                                );
                                continue;
                            }
                        }
                    }
                    stream
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(e),
            }
        };
        let from = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());
        let peer = match read_handshake(&stream, num_servers, deadline) {
            Ok(peer) => peer,
            Err(HandshakeIssue::Stray(why)) => {
                // Not a GraphH peer (port scanner, health checker, a
                // silent or garbage connection): drop it and keep
                // accepting — a stranger must not kill a healthy
                // cluster's establishment.
                eprintln!(
                    "graphh establish (server {id}): ignoring connection from \
                     {from}: {why}"
                );
                continue;
            }
            Err(HandshakeIssue::Fatal(e)) => return Err(e),
        };
        if let Some(slot) = expected.iter().position(|&e| e == peer) {
            expected.swap_remove(slot);
            stream.set_nodelay(true)?;
            streams.push((peer, stream));
        } else {
            return Err(invalid_data(format!(
                "unexpected or duplicate handshake from server {peer}"
            )));
        }
    }
    streams.sort_by_key(|&(peer, _)| peer);
    Ok(streams)
}

/// Validate a (server id, cluster size) pair and bind its listener — the
/// shared first phase of every TCP backend's two-phase establishment.
pub(crate) fn bind_listener<A: ToSocketAddrs>(
    id: ServerId,
    num_servers: u32,
    listen_addr: A,
) -> std::io::Result<TcpListener> {
    if num_servers == 0 {
        return Err(invalid_input(
            "cluster must have at least one server (num_servers = 0)".to_string(),
        ));
    }
    if id >= num_servers {
        return Err(invalid_input(format!(
            "server id {id} out of range for a {num_servers}-server cluster"
        )));
    }
    TcpListener::bind(listen_addr)
}

/// Decode frames off one peer's stream into the shared inbox until the stream
/// ends. Any ending — clean EOF included — enqueues a terminal
/// [`InboxEvent::PeerLost`]: because the stream is FIFO, every frame the peer
/// ever sent is already in the inbox ahead of the loss event, so the
/// collector can tell a peer that finished the run and closed (benign) from
/// one that died mid-superstep (fatal).
fn reader_loop(
    stream: TcpStream,
    peer: ServerId,
    tx: &Sender<InboxEvent>,
    frames_in: Counter,
    bytes_in: Counter,
) {
    // Counting below the BufReader charges bytes as they come off the socket
    // (readahead included) — that is the "bytes over the wire" number we want.
    let mut reader = BufReader::new(CountingRead {
        inner: stream,
        bytes: bytes_in,
    });
    loop {
        match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => {
                frames_in.incr();
                if frame.sender() != peer {
                    let _ = tx.send(InboxEvent::PeerLost(
                        peer,
                        PlaneError::Protocol(format!(
                            "stream from server {peer} carried a frame claiming sender {}",
                            frame.sender()
                        )),
                    ));
                    return;
                }
                if tx.send(InboxEvent::Frame(frame)).is_err() {
                    return; // plane dropped; stop reading
                }
            }
            Ok(None) => {
                let _ = tx.send(InboxEvent::PeerLost(peer, PlaneError::Disconnected));
                return;
            }
            Err(FrameError::Corrupt(m)) => {
                let _ = tx.send(InboxEvent::PeerLost(
                    peer,
                    PlaneError::Protocol(format!("corrupt frame from server {peer}: {m}")),
                ));
                return;
            }
            Err(FrameError::Io(_)) => {
                let _ = tx.send(InboxEvent::PeerLost(peer, PlaneError::Disconnected));
                return;
            }
        }
    }
}

/// A `Read` adapter that charges every byte read to a [`Counter`].
struct CountingRead<R> {
    inner: R,
    bytes: Counter,
}

impl<R: Read> Read for CountingRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes.add(n as u64);
        Ok(n)
    }
}

fn connect_with_retry(addr: SocketAddr, deadline: Instant) -> std::io::Result<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("could not reach peer at {addr} before the establish timeout: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// How an accepted connection failed the handshake: a stray connection is
/// dropped and establishment continues; a fatal issue (a real GHH1 speaker
/// with a conflicting cluster config) aborts establishment loudly.
enum HandshakeIssue {
    Stray(String),
    Fatal(std::io::Error),
}

/// Longest one accepted connection may take to produce its 12 handshake
/// bytes. Real dialers send them immediately after connect; a silent stray
/// must not eat the whole establish deadline.
const HANDSHAKE_READ_CAP: Duration = Duration::from_secs(2);

fn read_handshake(
    stream: &TcpStream,
    num_servers: u32,
    deadline: Instant,
) -> Result<ServerId, HandshakeIssue> {
    // A rogue or half-dead connection must not park establishment forever —
    // nor monopolize the remaining deadline while real peers queue behind it.
    let budget = deadline
        .checked_duration_since(Instant::now())
        .unwrap_or(Duration::from_millis(1))
        .min(HANDSHAKE_READ_CAP);
    let io = |e: std::io::Error| HandshakeIssue::Fatal(e);
    stream.set_read_timeout(Some(budget)).map_err(io)?;
    let mut hello = [0u8; 12];
    if let Err(e) = (&mut &*stream).read_exact(&mut hello) {
        // EOF, timeout, reset: whatever it was, it was not a GraphH peer's
        // handshake (those are a single immediate 12-byte write).
        return Err(HandshakeIssue::Stray(format!(
            "no GHH1 handshake within {budget:?}: {e}"
        )));
    }
    stream.set_read_timeout(None).map_err(io)?;
    if hello[0..4] != HANDSHAKE_MAGIC {
        return Err(HandshakeIssue::Stray(
            "connection did not open with the GHH1 handshake magic".to_string(),
        ));
    }
    let claimed_servers = u32::from_le_bytes([hello[4], hello[5], hello[6], hello[7]]);
    if claimed_servers != num_servers {
        // A genuine GraphH peer that disagrees about the cluster shape is a
        // misconfiguration worth failing loudly on, not a stray to ignore.
        return Err(HandshakeIssue::Fatal(invalid_data(format!(
            "peer believes the cluster has {claimed_servers} servers, this node {num_servers}"
        ))));
    }
    Ok(ServerId::from_le_bytes([
        hello[8], hello[9], hello[10], hello[11],
    ]))
}

fn invalid_input(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, message)
}

fn invalid_data(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Bind `n` planes on loopback and return them with the address table.
    fn bind_cluster(n: u32) -> (Vec<BoundSocketPlane>, Vec<SocketAddr>) {
        let bound: Vec<BoundSocketPlane> = (0..n)
            .map(|sid| SocketPlane::bind(sid, n, "127.0.0.1:0").unwrap())
            .collect();
        let addrs = bound.iter().map(|b| b.local_addr().unwrap()).collect();
        (bound, addrs)
    }

    fn establish_all(bound: Vec<BoundSocketPlane>, addrs: &[SocketAddr]) -> Vec<SocketPlane> {
        thread::scope(|scope| {
            let handles: Vec<_> = bound
                .into_iter()
                .map(|b| scope.spawn(move || b.establish(addrs).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn config_errors_are_rejected_at_bind() {
        assert!(SocketPlane::bind(0, 0, "127.0.0.1:0").is_err());
        assert!(SocketPlane::bind(3, 3, "127.0.0.1:0").is_err());
        assert!(SocketPlane::bind(0, 1, "127.0.0.1:0").is_ok());
    }

    #[test]
    fn establish_rejects_wrong_address_table() {
        let (mut bound, mut addrs) = bind_cluster(2);
        let b = bound.remove(0);
        addrs.pop();
        assert!(b.establish(&addrs).is_err());
        // Unblock the remaining bound plane by dropping it unestablished.
        drop(bound);
    }

    #[test]
    fn single_server_socket_plane_collects_nothing() {
        let (bound, addrs) = bind_cluster(1);
        let mut plane = bound.into_iter().next().unwrap().establish(&addrs).unwrap();
        plane.end_superstep(0).unwrap();
        assert_eq!(plane.collect(0).unwrap(), Vec::<WireMessage>::new());
    }

    #[test]
    fn all_to_all_delivery_over_loopback_tcp() {
        let (bound, addrs) = bind_cluster(3);
        let planes = establish_all(bound, &addrs);
        let results: Vec<Vec<usize>> = thread::scope(|scope| {
            let handles: Vec<_> = planes
                .into_iter()
                .map(|mut p| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for s in 0..4u32 {
                            for _ in 0..=s {
                                p.broadcast(s, &[p.server_id() as u8, s as u8]).unwrap();
                            }
                            p.end_superstep(s).unwrap();
                            let got = p.collect(s).unwrap();
                            assert!(got.iter().all(|w| w.len() == 2 && w[1] == s as u8));
                            seen.push(got.len());
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for seen in results {
            assert_eq!(seen, vec![2, 4, 6, 8]);
        }
    }

    #[test]
    fn abort_crosses_the_wire() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_all(bound, &addrs).into_iter();
        let mut a = planes.next().unwrap();
        let mut b = planes.next().unwrap();
        b.abort();
        a.end_superstep(0).unwrap();
        assert_eq!(a.collect(0), Err(PlaneError::Aborted(1)));
    }

    #[test]
    fn dropped_peer_process_surfaces_as_disconnect() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_all(bound, &addrs).into_iter();
        let mut a = planes.next().unwrap();
        let b = planes.next().unwrap();
        drop(b); // peer "process" dies without ending the superstep
        assert_eq!(a.collect(0), Err(PlaneError::Disconnected));
    }

    /// A stranger connecting to a node's listener mid-establishment (port
    /// scanner, health checker, a silent or garbage connection) must be
    /// dropped — not abort the whole cluster's establishment.
    #[test]
    fn stray_connections_do_not_kill_establishment() {
        let (bound, addrs) = bind_cluster(2);
        let mut iter = bound.into_iter();
        let b0 = iter.next().unwrap();
        let b1 = iter.next().unwrap();
        let target = addrs[0];

        let mut planes: Vec<SocketPlane> = thread::scope(|scope| {
            let addrs = &addrs;
            let h0 = scope.spawn(move || b0.establish(addrs).unwrap());
            // Two strays into server 0's accept queue ahead of the real
            // peer: one sends garbage, one connects and says nothing.
            let garbage = TcpStream::connect(target).unwrap();
            (&garbage).write_all(b"NOPE").unwrap();
            drop(garbage);
            drop(TcpStream::connect(target).unwrap());
            let h1 = scope.spawn(move || b1.establish(addrs).unwrap());
            vec![h0.join().unwrap(), h1.join().unwrap()]
        });

        // The fabric works despite the strays.
        for p in &mut planes {
            p.broadcast(0, &[p.server_id() as u8]).unwrap();
            p.end_superstep(0).unwrap();
        }
        for p in &mut planes {
            assert_eq!(p.collect(0).unwrap().len(), 1);
        }
    }

    /// A prober that reconnects in a loop keeps `accept()` returning `Ok`;
    /// the deadline must still fire — stray handling may not starve the
    /// establish timeout.
    #[test]
    fn accept_side_timeout_survives_persistent_strays() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let bound = SocketPlane::bind(0, 2, "127.0.0.1:0").unwrap();
        let addr = bound.local_addr().unwrap();
        let own_addr = addr; // placeholder entry for this server's slot
        let done = AtomicBool::new(false);
        thread::scope(|scope| {
            scope.spawn(|| {
                // Connect-and-close probers: each accept yields a clean-EOF
                // stray.
                while !done.load(Ordering::Relaxed) {
                    drop(TcpStream::connect(addr));
                    thread::sleep(Duration::from_millis(10));
                }
            });
            let err = bound
                .establish_with_timeout(&[own_addr, addr], Duration::from_millis(300))
                .unwrap_err();
            done.store(true, Ordering::Relaxed);
            assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        });
    }

    #[test]
    fn missing_peer_times_out_instead_of_hanging() {
        let bound = SocketPlane::bind(1, 2, "127.0.0.1:0").unwrap();
        // Peer 0's address points at a bound-then-dropped port: nothing will
        // ever accept there.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let addrs = vec![dead_addr, bound.local_addr().unwrap()];
        let err = bound
            .establish_with_timeout(&addrs, Duration::from_millis(300))
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    }
}

// ---------------------------------------------------------------------------
// Resilient mode: reconnect-and-resume over the same wire protocol
// ---------------------------------------------------------------------------

use crate::chaos::SeverPeer;
use crate::membership::{MembershipMsg, MEMBERSHIP_MAGIC};
use crate::resume::{
    HandshakeFault, ReplayError, ReplayLog, ResilienceConfig, ResumeHello, RESUME_HELLO_LEN,
};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One peer link's lifecycle state.
enum LinkState {
    /// Connected; the write half lives here.
    Up(BufWriter<TcpStream>),
    /// Cut (or not yet established); recovery may be running.
    Down,
    /// Recovery gave up; the terminal `PeerLost` was delivered. Final.
    Gone,
}

/// One peer link: its state plus a generation counter. Every state-owning
/// transition bumps the generation, so a reader (or deadline watcher) created
/// for generation `g` abandons its claim when the slot has moved past `g` —
/// the disambiguation that stops a stale EOF from tearing down the stream
/// that replaced it.
struct LinkSlot {
    state: LinkState,
    gen: u64,
    /// False until the first stream to this peer is installed; the first
    /// connection of a process's run must not report a `PeerResumed`.
    ever_connected: bool,
    /// Highest ack superstep successfully written on this link (`NO_ACK`
    /// when none). Acks travel unretained, so this is what tells a finished
    /// endpoint whether a down peer might still be waiting on our floor.
    ack_delivered: u32,
    /// True once the peer sent a `Goodbye`: its next EOF is a deliberate
    /// clean exit, so the cut must not arm recovery and the linger must not
    /// hold the door for it.
    peer_done: bool,
}

/// The shared hub of a [`ResilientSocketPlane`]: everything the worker
/// thread, the reader threads, the accept thread, and the recovery paths
/// touch together.
///
/// Sentinel for "no superstep acknowledged yet" (a real ack superstep never
/// reaches `u32::MAX`).
const NO_ACK: u32 = u32::MAX;

/// Lock order (held-while-acquiring): `replay` → `links[i]` → `tx` /
/// `reader_handles`. The broadcast path holds `replay` across [append +
/// every live-link write] and recovery holds it across [snapshot + replay
/// write + mark-Up], which is what makes replay gap-free: no frame can be
/// appended to the log yet miss both the snapshot and the live stream.
struct Fabric {
    id: ServerId,
    num_servers: u32,
    links: Vec<Mutex<LinkSlot>>,
    replay: Mutex<ReplayLog>,
    /// Inbox sender; cloned per reader thread, locked for recovery events.
    tx: Mutex<Sender<InboxEvent>>,
    /// Per-peer count of completed supersteps received (EOS superstep + 1),
    /// maintained by the reader threads: the `resume_from` this endpoint
    /// requests when a link to that peer is re-established.
    recv_cursor: Vec<AtomicU32>,
    stop: AtomicBool,
    /// Highest superstep this endpoint acknowledged ([`NO_ACK`] before the
    /// first ack). Acks travel unretained, so a re-established link repeats
    /// the latest one — without it a recovered peer could linger a full
    /// deadline at drop waiting for acks that died with the old stream.
    last_ack: AtomicU32,
    /// Set by [`BroadcastPlane::abort`]: an aborted run never lingers at
    /// drop (there is nothing left worth delivering).
    aborted: AtomicBool,
    config: ResilienceConfig,
    /// Remaining sabotaged dial attempts (chaos handshake faults).
    fault_budget: AtomicU32,
    peer_addrs: Vec<SocketAddr>,
    reader_handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    reconnects: Counter,
    replayed_frames: Counter,
    bytes_written: Counter,
    /// Book version this endpoint last pushed as a tag-6 gossip frame. The
    /// steady-state cadence check (in `acknowledge` and the linger loop) is
    /// one relaxed load against the membership version mirror — zero
    /// allocation and no lock unless the book actually moved.
    last_gossip_version: AtomicU64,
}

/// Why an attempt to install a new stream failed.
enum InstallError {
    /// Transient: back off and dial again.
    Retry,
    /// Unrecoverable (peer declared gone): stop recovering this link.
    Fatal,
}

impl Fabric {
    /// Append `bytes` (`frames` whole frames) to the replay log and write
    /// them to every live link. Per-link write failures demote the link to
    /// Down (its reader then drives recovery) — they never fail the caller;
    /// the replay log guarantees delivery once the link is back.
    fn send_retained(&self, superstep: u32, bytes: &[u8], frames: u64) {
        let mut replay = lock(&self.replay);
        replay.append(superstep, bytes, frames);
        for peer in 0..self.num_servers {
            if peer == self.id {
                continue;
            }
            let mut slot = lock(&self.links[peer as usize]);
            if let LinkState::Up(writer) = &mut slot.state {
                if writer.write_all(bytes).is_err() {
                    let _ = writer.get_ref().shutdown(Shutdown::Both);
                    slot.state = LinkState::Down;
                    slot.ack_delivered = NO_ACK;
                } else {
                    self.bytes_written.add(bytes.len() as u64);
                }
            }
        }
    }

    /// Flush every live link; failures demote to Down like write failures.
    fn flush_all(&self) {
        for peer in 0..self.num_servers {
            if peer == self.id {
                continue;
            }
            let mut slot = lock(&self.links[peer as usize]);
            if let LinkState::Up(writer) = &mut slot.state {
                if writer.flush().is_err() {
                    let _ = writer.get_ref().shutdown(Shutdown::Both);
                    slot.state = LinkState::Down;
                    slot.ack_delivered = NO_ACK;
                }
            }
        }
    }

    /// Write-and-flush `bytes` to every live link without retaining them
    /// (acks and aborts: losing one to a cut is always safe).
    fn send_unretained(&self, bytes: &[u8]) {
        for peer in 0..self.num_servers {
            if peer == self.id {
                continue;
            }
            let mut slot = lock(&self.links[peer as usize]);
            if let LinkState::Up(writer) = &mut slot.state {
                if writer
                    .write_all(bytes)
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    let _ = writer.get_ref().shutdown(Shutdown::Both);
                    slot.state = LinkState::Down;
                    slot.ack_delivered = NO_ACK;
                } else {
                    self.bytes_written.add(bytes.len() as u64);
                }
            }
        }
    }

    /// Write-and-flush the ack for `superstep` to every Up link that has not
    /// carried it yet, recording per-link delivery. Idempotent: re-calling
    /// with the same superstep writes nothing to links already covered, so
    /// the linger loop can use it to heal links that raced an install.
    fn send_ack(&self, superstep: u32) {
        let mut bytes = Vec::new();
        Frame::Ack {
            sender: self.id,
            superstep,
        }
        .encode(&mut bytes);
        for peer in 0..self.num_servers {
            if peer == self.id {
                continue;
            }
            let mut slot = lock(&self.links[peer as usize]);
            if slot.ack_delivered != NO_ACK && slot.ack_delivered >= superstep {
                continue;
            }
            if let LinkState::Up(writer) = &mut slot.state {
                if writer
                    .write_all(&bytes)
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    let _ = writer.get_ref().shutdown(Shutdown::Both);
                    slot.state = LinkState::Down;
                    slot.ack_delivered = NO_ACK;
                } else {
                    slot.ack_delivered = superstep;
                    self.bytes_written.add(bytes.len() as u64);
                }
            }
        }
    }

    fn send_event(&self, event: InboxEvent) {
        let _ = lock(&self.tx).send(event);
    }

    /// Anti-entropy push: if the address book moved past what this endpoint
    /// last gossiped, flood the delta to every Up link as a tag-6 frame.
    /// Idempotent and race-tolerant — two threads observing the same bump may
    /// both push, and receivers whose merge changes nothing do not re-gossip,
    /// so the flood converges. Fault-free runs never get here past the first
    /// version check: the book only moves when an address changes.
    fn gossip_if_changed(&self) {
        let Some(membership) = &self.config.membership else {
            return;
        };
        let version = membership.version();
        if self
            .last_gossip_version
            .fetch_max(version, Ordering::AcqRel)
            >= version
        {
            return;
        }
        let payload = membership.delta_payload();
        let mut bytes = Vec::new();
        Frame::Membership {
            sender: self.id,
            payload: payload.into(),
        }
        .encode(&mut bytes);
        self.send_unretained(&bytes);
    }

    /// Spawn the reader thread for a freshly installed stream.
    fn spawn_reader(self: &Arc<Self>, peer: ServerId, stream: TcpStream, gen: u64) {
        let fabric = Arc::clone(self);
        let tx = lock(&self.tx).clone();
        let handle = std::thread::Builder::new()
            .name(format!("graphh-rsock-rx-{}-from-{peer}", self.id))
            .spawn(move || fabric.reader_loop(stream, peer, gen, tx))
            .ok();
        lock(&self.reader_handles)[peer as usize] = handle;
    }

    /// Decode frames off one stream until it ends, then drive that link's
    /// recovery. Acks are intercepted here (transport-level, never forwarded);
    /// end-of-superstep markers raise the peer's receive cursor. *Any* stream
    /// end — EOF, I/O error, corrupt bytes, sender mismatch — is treated as a
    /// cut, never as terminal loss; the reconnect deadline is what bounds it.
    fn reader_loop(
        self: Arc<Self>,
        stream: TcpStream,
        peer: ServerId,
        gen: u64,
        tx: Sender<InboxEvent>,
    ) {
        let registry = global_counters();
        let frames_in = registry.counter(&format!("socket.s{}.from{peer}.frames_in", self.id));
        let bytes_in = registry.counter(&format!("socket.s{}.from{peer}.bytes_in", self.id));
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                self.handle_cut(peer, gen);
                return;
            }
        };
        let mut reader = BufReader::new(CountingRead {
            inner: read_half,
            bytes: bytes_in,
        });
        // Until EOF, a torn frame, corrupt bytes or an I/O error — a cut
        // either way — replay will re-deliver whatever the tear ate.
        while let Ok(Some(frame)) = Frame::read_from(&mut reader) {
            frames_in.incr();
            if frame.sender() != peer {
                break; // poisoned stream: cut it and recover
            }
            match frame {
                Frame::Ack { sender, superstep } => {
                    lock(&self.replay).ack(sender, superstep);
                    continue;
                }
                Frame::Goodbye { .. } => {
                    // Deliberate clean exit: the EOF that follows is
                    // not a cut. Transport-level, never forwarded.
                    lock(&self.links[peer as usize]).peer_done = true;
                    continue;
                }
                Frame::Membership { ref payload, .. } => {
                    // Address-book gossip: merge and, if our book learned
                    // something, push the news onward. Never forwarded to
                    // the collector. A malformed payload is dropped — the
                    // anti-entropy cadence re-converges the books.
                    if let Some(membership) = &self.config.membership {
                        if let Ok(msg) = MembershipMsg::decode(payload) {
                            if membership
                                .merge_msg(&msg)
                                .map(|o| o.changed)
                                .unwrap_or(false)
                            {
                                self.gossip_if_changed();
                            }
                        }
                    }
                    continue;
                }
                Frame::EndOfSuperstep { superstep, .. } => {
                    self.recv_cursor[peer as usize]
                        .fetch_max(superstep.saturating_add(1), Ordering::AcqRel);
                }
                _ => {}
            }
            if tx.send(InboxEvent::Frame(frame)).is_err() {
                return; // plane dropped; stop reading, no recovery
            }
        }
        drop(reader);
        let _ = stream.shutdown(Shutdown::Both);
        self.handle_cut(peer, gen);
    }

    /// A stream of generation `gen` ended. If this thread still owns the
    /// link (the slot has not moved past `gen`), park it Down and run
    /// recovery inline: redial peers this server dials, await the redial of
    /// peers that dial this server — each bounded by the reconnect deadline.
    fn handle_cut(self: &Arc<Self>, peer: ServerId, gen: u64) {
        let new_gen;
        {
            let mut slot = lock(&self.links[peer as usize]);
            if slot.gen != gen || matches!(slot.state, LinkState::Gone) {
                return; // a newer stream (or terminal loss) owns this link
            }
            // Dropping the writer completes the close (FIN both ways).
            slot.state = LinkState::Down;
            slot.ack_delivered = NO_ACK;
            slot.gen += 1;
            new_gen = slot.gen;
            if slot.peer_done {
                drop(slot);
                // Announced clean exit, not a cut: no recovery — but the
                // collector must still learn the stream is over, with the
                // same benign-after-end-of-superstep semantics as a plain
                // plane's EOF.
                self.send_event(InboxEvent::PeerLost(peer, PlaneError::Disconnected));
                return;
            }
        }
        if self.stop.load(Ordering::Acquire) {
            return;
        }
        if peer < self.id {
            self.redial_loop(peer, new_gen);
        } else {
            self.await_reconnect(peer, new_gen);
        }
    }

    /// Dial-side recovery: reconnect until the deadline, pacing attempts
    /// with deterministic seeded exponential backoff. Every attempt
    /// re-consults the gossiped address book first — a replacement process
    /// may have adopted the peer's id at a fresh address since the last try.
    fn redial_loop(self: &Arc<Self>, peer: ServerId, gen: u64) {
        let deadline = Instant::now() + self.config.reconnect_deadline;
        let mut backoff = self.config.backoff_for(self.id, peer);
        loop {
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                self.give_up(peer, gen);
                return;
            }
            let addr = self.config.peer_addr(peer, &self.peer_addrs);
            if let Ok(stream) = TcpStream::connect(addr) {
                match self.dial_link(peer, stream, false) {
                    Ok(()) | Err(InstallError::Fatal) => return,
                    Err(InstallError::Retry) => {}
                }
            }
            let nap = backoff
                .next_delay()
                .min(deadline.saturating_duration_since(Instant::now()));
            std::thread::sleep(nap);
        }
    }

    /// Accept-side recovery: the peer dials us; wait for the accept thread
    /// to install its new stream (which bumps the generation) or give up at
    /// the deadline.
    fn await_reconnect(self: &Arc<Self>, peer: ServerId, gen: u64) {
        let deadline = Instant::now() + self.config.reconnect_deadline;
        let poll = self.config.retry_backoff.min(Duration::from_millis(25));
        loop {
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            if lock(&self.links[peer as usize]).gen != gen {
                return; // reconnected (or superseded)
            }
            if Instant::now() >= deadline {
                self.give_up(peer, gen);
                return;
            }
            std::thread::sleep(poll);
        }
    }

    /// The deadline passed with the link still down at `gen`: terminal loss.
    fn give_up(&self, peer: ServerId, gen: u64) {
        {
            let mut slot = lock(&self.links[peer as usize]);
            if slot.gen != gen {
                return;
            }
            slot.state = LinkState::Gone;
            slot.gen += 1;
        }
        lock(&self.replay).forget(peer);
        self.send_event(InboxEvent::PeerLost(peer, PlaneError::Disconnected));
    }

    /// Unconditionally mark a link terminally lost (replay-floor violation).
    fn declare_gone(&self, peer: ServerId, error: PlaneError) {
        {
            let mut slot = lock(&self.links[peer as usize]);
            if matches!(slot.state, LinkState::Gone) {
                return;
            }
            slot.state = LinkState::Gone;
            slot.gen += 1;
        }
        lock(&self.replay).forget(peer);
        self.send_event(InboxEvent::PeerLost(peer, error));
    }

    /// Graceful-termination linger: a finished endpoint keeps its listener,
    /// readers and replay service alive while a *down* peer might still need
    /// something only we can give it — either frames we retain (it has not
    /// acked everything) or our latest ack (acks travel unretained, so one
    /// lost to the cut leaves the peer unable to trim its own log and finish
    /// its own linger). Without this, the first server to terminate slams
    /// its door on a peer cut near the end of the run; the peer's redials
    /// bounce off a closed listener until its deadline declares us lost.
    /// Up links owe nothing (their queued bytes are kernel-delivered after
    /// close, and the loop re-pushes any ack that raced an install); Gone
    /// peers can never come back. Bounded by the reconnect deadline (a peer
    /// down that long is given up by its recovery watcher, which `forget`s
    /// it and unblocks us) and skipped entirely after an abort.
    fn linger_for_stragglers(&self) {
        if self.aborted.load(Ordering::Acquire) {
            return;
        }
        // Push out our final acks first: peers linger on the same condition,
        // and an unflushed ack would turn this into a mutual deadline wait.
        self.flush_all();
        let deadline = Instant::now() + self.config.reconnect_deadline;
        loop {
            let last_ack = self.last_ack.load(Ordering::Acquire);
            if last_ack != NO_ACK {
                // Heal any Up link whose latest ack raced a reinstall
                // (idempotent: writes only where delivery lags).
                self.send_ack(last_ack);
            }
            // Same piggyback cadence as `acknowledge`: a book update learned
            // during the linger still reaches peers waiting on a replacement.
            self.gossip_if_changed();
            let replay_needed = lock(&self.replay).retained_supersteps() > 0;
            let owes_a_down_peer = (0..self.num_servers).filter(|&p| p != self.id).any(|p| {
                let slot = lock(&self.links[p as usize]);
                matches!(slot.state, LinkState::Down)
                    && !slot.peer_done
                    && (replay_needed || (last_ack != NO_ACK && slot.ack_delivered != last_ack))
            });
            if !owes_a_down_peer || Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Fabric {
    /// Dial-side half of the resume handshake: send our hello (or a
    /// chaos-sabotaged one), read the peer's reply, then install the stream.
    /// `initial` marks first-establishment dials, which must not emit
    /// `PeerResumed`.
    fn dial_link(
        self: &Arc<Self>,
        peer: ServerId,
        stream: TcpStream,
        initial: bool,
    ) -> Result<(), InstallError> {
        let _ = stream.set_nodelay(true);
        let hello = ResumeHello {
            cluster_size: self.num_servers,
            sender: self.id,
            resume_from: self.recv_cursor[peer as usize].load(Ordering::Acquire),
        };
        let encoded = hello.encode();
        // Chaos handshake faults: sabotage this dial attempt if the budget
        // allows, then report it transient — the *next* attempt is honest
        // once the budget runs out, so faulted clusters still converge.
        if let Some(fault) = self.config.handshake_fault {
            let sabotaged = self
                .fault_budget
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
                .is_ok();
            if sabotaged {
                let mut s = stream;
                match fault {
                    HandshakeFault::Torn { bytes } => {
                        let cut = bytes.min(RESUME_HELLO_LEN);
                        let _ = s.write_all(&encoded[..cut]).and_then(|_| s.flush());
                    }
                    HandshakeFault::Duplicate => {
                        let _ = s
                            .write_all(&encoded)
                            .and_then(|_| s.write_all(&encoded))
                            .and_then(|_| s.flush());
                    }
                    HandshakeFault::Drop => {}
                }
                // Dropping `s` closes the sabotaged stream.
                return Err(InstallError::Retry);
            }
        }
        let mut s = stream;
        if s.write_all(&encoded).and_then(|_| s.flush()).is_err() {
            return Err(InstallError::Retry);
        }
        let _ = s.set_read_timeout(Some(HANDSHAKE_READ_CAP));
        let mut reply = [0u8; RESUME_HELLO_LEN];
        if s.read_exact(&mut reply).is_err() {
            return Err(InstallError::Retry);
        }
        let _ = s.set_read_timeout(None);
        let reply = match ResumeHello::decode(&reply) {
            Ok(h) => h,
            Err(_) => return Err(InstallError::Retry),
        };
        if reply.check(self.num_servers, self.id, Some(peer)).is_err() {
            return Err(InstallError::Retry);
        }
        self.install_link(peer, s, reply.resume_from, initial)
    }

    /// Install a freshly handshaken stream as the live link to `peer`:
    /// replay everything the peer still needs, mark the slot Up, announce
    /// the resume, and spawn the reader — all under the replay lock, so no
    /// concurrent broadcast can slip a frame between the replay snapshot and
    /// the live stream (gap-free).
    fn install_link(
        self: &Arc<Self>,
        peer: ServerId,
        stream: TcpStream,
        peer_resume_from: u32,
        initial: bool,
    ) -> Result<(), InstallError> {
        let read_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return Err(InstallError::Retry),
        };
        let replay = lock(&self.replay);
        let (blob, frames) = match replay.replay_from(peer_resume_from) {
            Ok(snapshot) => snapshot,
            Err(e @ ReplayError::BelowFloor { .. }) => {
                drop(replay);
                // The peer needs frames we have already trimmed: permanently
                // unrecoverable, not a transient failure.
                self.declare_gone(peer, PlaneError::Protocol(e.to_string()));
                return Err(InstallError::Fatal);
            }
        };
        let mut writer = BufWriter::new(stream);
        if writer.write_all(&blob).is_err() {
            return Err(InstallError::Retry);
        }
        // Repeat our latest ack on the new stream: acks are unretained, so
        // any the peer missed while down died with the old stream — and it
        // needs the current floor to trim its own log and finish its linger.
        let last_ack = self.last_ack.load(Ordering::Acquire);
        if last_ack != NO_ACK {
            let mut ack = Vec::new();
            Frame::Ack {
                sender: self.id,
                superstep: last_ack,
            }
            .encode(&mut ack);
            if writer.write_all(&ack).is_err() {
                return Err(InstallError::Retry);
            }
        }
        if writer.flush().is_err() {
            return Err(InstallError::Retry);
        }
        if frames > 0 {
            self.replayed_frames.add(frames);
            self.bytes_written.add(blob.len() as u64);
        }
        let gen;
        {
            let mut slot = lock(&self.links[peer as usize]);
            if matches!(slot.state, LinkState::Gone) {
                return Err(InstallError::Fatal);
            }
            if !initial {
                // The resume event must reach the collector *before* any
                // frame the new reader forwards; we hold the replay lock, so
                // the reader is not running yet and nothing can race it.
                self.send_event(InboxEvent::PeerResumed(peer));
                self.reconnects.incr();
            }
            slot.gen += 1;
            gen = slot.gen;
            slot.state = LinkState::Up(writer);
            slot.ever_connected = true;
            // The resent ack above is on the wire; a later one that raced
            // this install is healed by the linger loop's `send_ack`.
            slot.ack_delivered = last_ack;
            // A rejoining (restarted) peer is a live participant again.
            slot.peer_done = false;
        }
        drop(replay);
        self.spawn_reader(peer, read_stream, gen);
        Ok(())
    }

    /// The persistent accept thread: the listener stays open for the whole
    /// run so a cut peer (or a restarted process) can always dial back in.
    fn accept_loop(self: Arc<Self>, listener: TcpListener) {
        let _ = listener.set_nonblocking(true);
        while !self.stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, from)) => self.handle_accepted(stream, from),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Validate one accepted connection's resume hello and, if it is a
    /// legitimate (re)connection from a higher-id peer, supersede any old
    /// stream and install the new one.
    fn handle_accepted(self: &Arc<Self>, stream: TcpStream, from: SocketAddr) {
        if stream.set_nonblocking(false).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        // Membership dispatch first: a restarted process runs seed discovery
        // before it can resume, and its `GHHM` exchanges land on this same
        // listener. Serving one may teach us a replacement's fresh address —
        // flood that to the survivors so their redial loops find it.
        if let Some(membership) = &self.config.membership {
            match crate::membership::peek_magic(&stream) {
                Ok(magic) if magic == MEMBERSHIP_MAGIC => {
                    let mut s = stream;
                    if let Ok(outcome) = membership.serve_stream(&mut s) {
                        if outcome.changed {
                            self.gossip_if_changed();
                        }
                    }
                    return;
                }
                Ok(_) => {}
                Err(e) => {
                    eprintln!(
                        "server {}: dropping stray connection from {from}: {e}",
                        self.id
                    );
                    return;
                }
            }
        }
        let _ = stream.set_read_timeout(Some(HANDSHAKE_READ_CAP));
        let mut buf = [0u8; RESUME_HELLO_LEN];
        let mut s = stream;
        if s.read_exact(&mut buf).is_err() {
            eprintln!(
                "server {}: dropping stray connection from {from} (short resume hello)",
                self.id
            );
            return;
        }
        let hello = match ResumeHello::decode(&buf) {
            Ok(h) => h,
            Err(e) => {
                eprintln!(
                    "server {}: dropping stray connection from {from}: {e}",
                    self.id
                );
                return;
            }
        };
        if let Err(e) = hello.check(self.num_servers, self.id, None) {
            eprintln!("server {}: rejecting hello from {from}: {e}", self.id);
            return;
        }
        // Dial direction is fixed: only higher-id peers dial us.
        if hello.sender <= self.id {
            eprintln!(
                "server {}: rejecting hello from {from}: server {} must accept our dial, not dial us",
                self.id, hello.sender
            );
            return;
        }
        let _ = s.set_read_timeout(None);
        let peer = hello.sender;
        let initial;
        {
            let mut slot = lock(&self.links[peer as usize]);
            match &mut slot.state {
                LinkState::Gone => return, // terminally lost; stays dead
                LinkState::Up(writer) => {
                    // A reconnect superseding a link we still think is up:
                    // kill the old stream and bump the generation so the old
                    // reader abandons its recovery claim when it notices.
                    let _ = writer.get_ref().shutdown(Shutdown::Both);
                    slot.state = LinkState::Down;
                    slot.ack_delivered = NO_ACK;
                    slot.gen += 1;
                }
                LinkState::Down => {
                    // Supersede any pending redial/await watcher.
                    slot.gen += 1;
                }
            }
            initial = !slot.ever_connected;
        }
        // Join the superseded reader (bounded: its stream is closed both
        // ends) so every frame it forwarded is in the inbox before the
        // `PeerResumed` that install_link will enqueue.
        if let Some(handle) = lock(&self.reader_handles)[peer as usize].take() {
            let _ = handle.join();
        }
        let reply = ResumeHello {
            cluster_size: self.num_servers,
            sender: self.id,
            resume_from: self.recv_cursor[peer as usize].load(Ordering::Acquire),
        };
        if s.write_all(&reply.encode())
            .and_then(|_| s.flush())
            .is_err()
        {
            return; // dialer will retry
        }
        let _ = self.install_link(peer, s, hello.resume_from, initial);
    }
}

impl BoundSocketPlane {
    /// Connect to every peer and return a fault-tolerant plane: same wire
    /// protocol as [`Self::establish`] except the handshake is the 16-byte
    /// `GHHR` resume hello (both directions), frames are retained for replay
    /// until acked, and a mid-run connection loss triggers
    /// reconnect-and-resume instead of aborting (terminal
    /// [`PlaneError::Disconnected`] only after `config.reconnect_deadline`).
    pub fn establish_resilient(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
        config: ResilienceConfig,
    ) -> std::io::Result<ResilientSocketPlane> {
        self.establish_resilient_inner(peer_addrs, timeout, config)
    }

    /// [`Self::establish_resilient`] against a seed-discovered address book:
    /// installs the membership handle into the config (redials re-consult the
    /// gossiped book; the accept loop answers `GHHM` exchanges from late
    /// bootstrappers and replacement processes) and uses the learned peer
    /// table. The view's early-stashed connections are dropped — they carry
    /// `GHHR` dials whose owners retry against the accept loop this method
    /// spawns immediately.
    pub fn establish_resilient_discovered(
        self,
        view: crate::membership::MembershipView,
        timeout: Duration,
        mut config: ResilienceConfig,
    ) -> std::io::Result<ResilientSocketPlane> {
        let crate::membership::MembershipView {
            handle, peer_addrs, ..
        } = view;
        config.membership = Some(handle);
        self.establish_resilient_inner(&peer_addrs, timeout, config)
    }

    fn establish_resilient_inner(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
        config: ResilienceConfig,
    ) -> std::io::Result<ResilientSocketPlane> {
        let BoundSocketPlane {
            id,
            num_servers,
            listener,
        } = self;
        if peer_addrs.len() != num_servers as usize {
            return Err(invalid_input(format!(
                "peer table has {} entries for a {num_servers}-server cluster",
                peer_addrs.len()
            )));
        }
        let registry = global_counters();
        let (tx, inbox) = channel();
        let fault_budget = if config.handshake_fault.is_some() {
            config.handshake_fault_budget
        } else {
            0
        };
        let resume_from = config.resume_from;
        // Seed the gossip cursor at the current book version: the establish
        // itself proves every peer holds a complete book, so there is
        // nothing to push until the book moves again.
        let initial_book_version = config.membership.as_ref().map_or(0, |m| m.version());
        let fabric = Arc::new(Fabric {
            id,
            num_servers,
            links: (0..num_servers)
                .map(|_| {
                    Mutex::new(LinkSlot {
                        state: LinkState::Down,
                        gen: 0,
                        ever_connected: false,
                        ack_delivered: NO_ACK,
                        peer_done: false,
                    })
                })
                .collect(),
            replay: Mutex::new(ReplayLog::resuming_from(num_servers, id, resume_from)),
            tx: Mutex::new(tx),
            recv_cursor: (0..num_servers)
                .map(|_| AtomicU32::new(resume_from))
                .collect(),
            stop: AtomicBool::new(false),
            last_ack: AtomicU32::new(NO_ACK),
            aborted: AtomicBool::new(false),
            config,
            fault_budget: AtomicU32::new(fault_budget),
            peer_addrs: peer_addrs.to_vec(),
            reader_handles: Mutex::new((0..num_servers).map(|_| None).collect()),
            reconnects: registry.counter("fabric.reconnects"),
            replayed_frames: registry.counter("fabric.replayed_frames"),
            bytes_written: registry.counter("socket.bytes_written"),
            last_gossip_version: AtomicU64::new(initial_book_version),
        });

        // The accept thread owns the listener for the plane's whole life, so
        // peers can redial at any point — including a restarted process
        // re-joining mid-run.
        let accept_fabric = Arc::clone(&fabric);
        let accept_handle = std::thread::Builder::new()
            .name(format!("graphh-rsock-accept-{id}"))
            .spawn(move || accept_fabric.accept_loop(listener))
            .ok();

        let deadline = Instant::now() + timeout;
        // Dial every lower-id peer (same topology as the non-resilient plane).
        for peer in 0..id {
            loop {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("server {id}: timed out dialing server {peer}"),
                    ));
                }
                if let Ok(stream) = TcpStream::connect(peer_addrs[peer as usize]) {
                    match fabric.dial_link(peer, stream, true) {
                        Ok(()) => break,
                        Err(InstallError::Fatal) => {
                            return Err(invalid_data(format!(
                                "server {id}: server {peer} rejected the resume handshake"
                            )))
                        }
                        Err(InstallError::Retry) => {}
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        // Wait for every higher-id peer to dial in.
        loop {
            let all_up = ((id + 1)..num_servers)
                .all(|peer| matches!(lock(&fabric.links[peer as usize]).state, LinkState::Up(_)));
            if all_up {
                break;
            }
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("server {id}: timed out waiting for higher-id peers to dial in"),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        let peer_ids = (0..num_servers).filter(|&p| p != id).collect();
        Ok(ResilientSocketPlane {
            fabric,
            peer_ids,
            inbox,
            collector: SuperstepCollector::new(),
            scratch: Vec::new(),
            accept_handle,
        })
    }
}

/// The fault-tolerant TCP broadcast plane: [`SocketPlane`]'s wire protocol
/// plus frame retention ([`ReplayLog`]), the `GHHR` resume handshake, and
/// reconnect-and-resume recovery. A transient peer failure parks the link and
/// replays the missing frames once the peer is back; only a failure that
/// outlives `ResilienceConfig::reconnect_deadline` (or a resume request below
/// the replay floor) surfaces as terminal peer loss.
pub struct ResilientSocketPlane {
    fabric: Arc<Fabric>,
    peer_ids: Vec<ServerId>,
    inbox: Receiver<InboxEvent>,
    collector: SuperstepCollector,
    scratch: Vec<u8>,
    accept_handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ResilientSocketPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientSocketPlane")
            .field("id", &self.fabric.id)
            .field("num_servers", &self.fabric.num_servers)
            .finish()
    }
}

impl ResilientSocketPlane {
    /// Tear this endpoint down as a *crash* — the in-process analog of
    /// `kill -9` for chaos tests. No goodbye is sent and no linger is
    /// served, and every link is marked terminally gone *before* the
    /// streams close, so this plane's own recovery machinery cannot
    /// resurrect a connection in the gap between the cut and the teardown
    /// (a resurrected link would turn the ensuing drop into a clean
    /// goodbye exit, and peers would stop holding the door open for a
    /// replacement). Peers observe exactly what a killed process leaves
    /// behind: a FIN mid-run, then a dead listener.
    pub fn crash(self) {
        self.fabric.stop.store(true, Ordering::Release);
        for peer in &self.peer_ids {
            let mut slot = lock(&self.fabric.links[*peer as usize]);
            if let LinkState::Up(writer) = &mut slot.state {
                let _ = writer.flush();
                let _ = writer.get_ref().shutdown(Shutdown::Both);
            }
            slot.state = LinkState::Gone;
            slot.gen += 1; // supersede any in-flight recovery watcher
        }
        // The normal drop runs next with nothing left to say: every link
        // is Gone, so it sends no goodbye and lingers for no straggler.
    }
}

impl BroadcastPlane for ResilientSocketPlane {
    fn num_servers(&self) -> u32 {
        self.fabric.num_servers
    }

    fn server_id(&self) -> ServerId {
        self.fabric.id
    }

    fn broadcast(&mut self, superstep: u32, wire: &[u8]) -> Result<(), PlaneError> {
        self.scratch.clear();
        crate::frame::encode_message_into(self.fabric.id, superstep, wire, &mut self.scratch)
            .map_err(|e| PlaneError::Protocol(e.to_string()))?;
        // Per-link write failures never bubble up: the frame is in the
        // replay log, and recovery re-delivers it when the link returns.
        self.fabric.send_retained(superstep, &self.scratch, 1);
        Ok(())
    }

    fn end_superstep(&mut self, superstep: u32) -> Result<(), PlaneError> {
        self.scratch.clear();
        Frame::EndOfSuperstep {
            sender: self.fabric.id,
            superstep,
        }
        .encode(&mut self.scratch);
        self.fabric.send_retained(superstep, &self.scratch, 1);
        self.fabric.flush_all();
        Ok(())
    }

    fn collect(&mut self, superstep: u32) -> Result<Vec<WireMessage>, PlaneError> {
        let inbox = &self.inbox;
        self.collector.collect(superstep, &self.peer_ids, || {
            inbox.recv().map_err(|_| PlaneError::Disconnected)
        })
    }

    fn acknowledge(&mut self, superstep: u32) -> Result<(), PlaneError> {
        // Not retained, but remembered: a reconnect repeats the latest ack,
        // and `send_ack` records per-link delivery for the linger check.
        self.fabric.last_ack.store(superstep, Ordering::Release);
        self.fabric.send_ack(superstep);
        // Anti-entropy piggyback on the ack cadence: one relaxed version
        // load in the fault-free steady state, a delta flood only when the
        // address book actually moved.
        self.fabric.gossip_if_changed();
        Ok(())
    }

    fn abort(&mut self) {
        self.scratch.clear();
        Frame::Abort {
            sender: self.fabric.id,
        }
        .encode(&mut self.scratch);
        self.fabric.aborted.store(true, Ordering::Release);
        self.fabric.send_unretained(&self.scratch);
    }
}

impl SeverPeer for ResilientSocketPlane {
    fn sever_peer(&mut self, peer: ServerId) {
        if peer == self.fabric.id || peer >= self.fabric.num_servers {
            return;
        }
        let mut slot = lock(&self.fabric.links[peer as usize]);
        if let LinkState::Up(writer) = &mut slot.state {
            // Flush then close only the write half: the peer receives every
            // queued frame followed by a clean FIN — a deterministic cut at
            // the exact point in the stream where the sever happened. Writes
            // after SHUT_WR fail immediately, demoting the link to Down, and
            // our reader sees the peer's answering FIN and starts recovery.
            let _ = writer.flush();
            let _ = writer.get_ref().shutdown(Shutdown::Write);
        }
    }
}

impl Drop for ResilientSocketPlane {
    fn drop(&mut self) {
        // Serve stragglers before tearing anything down: a peer cut near the
        // end of the run may still need our listener and replay log.
        self.fabric.linger_for_stragglers();
        // Announce the clean exit so peers treat the coming EOFs as a
        // deliberate close, not a cut to recover from.
        let mut goodbye = Vec::new();
        Frame::Goodbye {
            sender: self.fabric.id,
        }
        .encode(&mut goodbye);
        self.fabric.send_unretained(&goodbye);
        self.fabric.stop.store(true, Ordering::Release);
        for peer in &self.peer_ids {
            let mut slot = lock(&self.fabric.links[*peer as usize]);
            if let LinkState::Up(writer) = &mut slot.state {
                let _ = writer.flush();
                let _ = writer.get_ref().shutdown(Shutdown::Both);
                slot.state = LinkState::Down;
                slot.ack_delivered = NO_ACK;
            }
            slot.gen += 1; // supersede any in-flight recovery watcher
        }
        let handles: Vec<_> = lock(&self.fabric.reader_handles)
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod resilient_tests {
    use super::*;
    use crate::chaos::{CutPlan, FaultPlane};
    use std::thread;

    fn bind_cluster(n: u32) -> (Vec<BoundSocketPlane>, Vec<SocketAddr>) {
        let bound: Vec<BoundSocketPlane> = (0..n)
            .map(|sid| SocketPlane::bind(sid, n, "127.0.0.1:0").unwrap())
            .collect();
        let addrs = bound.iter().map(|b| b.local_addr().unwrap()).collect();
        (bound, addrs)
    }

    fn establish_resilient_all(
        bound: Vec<BoundSocketPlane>,
        addrs: &[SocketAddr],
        config: &ResilienceConfig,
    ) -> Vec<ResilientSocketPlane> {
        thread::scope(|scope| {
            let handles: Vec<_> = bound
                .into_iter()
                .map(|b| {
                    let config = config.clone();
                    scope.spawn(move || {
                        b.establish_resilient(addrs, Duration::from_secs(10), config)
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    /// Fault-free resilient runs behave exactly like the plain socket plane.
    #[test]
    fn resilient_all_to_all_parity_without_faults() {
        let (bound, addrs) = bind_cluster(3);
        let planes = establish_resilient_all(bound, &addrs, &ResilienceConfig::default());
        let results: Vec<Vec<usize>> = thread::scope(|scope| {
            let handles: Vec<_> = planes
                .into_iter()
                .map(|mut p| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for s in 0..4u32 {
                            for _ in 0..=s {
                                p.broadcast(s, &[p.server_id() as u8, s as u8]).unwrap();
                            }
                            p.end_superstep(s).unwrap();
                            let got = p.collect(s).unwrap();
                            assert!(got.iter().all(|w| w.len() == 2 && w[1] == s as u8));
                            p.acknowledge(s).unwrap();
                            seen.push(got.len());
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for seen in results {
            assert_eq!(seen, vec![2, 4, 6, 8]);
        }
    }

    /// A connection cut at a superstep boundary recovers via redial + replay,
    /// and every superstep still collects exactly once per peer per message.
    #[test]
    fn boundary_cut_recovers_with_exactly_once_delivery() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_resilient_all(bound, &addrs, &ResilienceConfig::default());
        let p1 = planes.pop().unwrap();
        let p0 = planes.pop().unwrap();
        // Server 0 severs its link to server 1 right after superstep 1 ends:
        // server 1 sees a full superstep then a FIN, redials, and resumes.
        let mut p0 = FaultPlane::new(p0, CutPlan::explicit(vec![(1, 1)]));

        let run = |p: &mut dyn BroadcastPlane| {
            let id = p.server_id();
            let peer = 1 - id;
            for s in 0..5u32 {
                p.broadcast(s, &[id as u8, s as u8]).unwrap();
                p.end_superstep(s).unwrap();
                let got = p.collect(s).unwrap();
                assert_eq!(
                    got.len(),
                    1,
                    "server {id} superstep {s}: exactly one message expected"
                );
                assert_eq!(&got[0][..], &[peer as u8, s as u8]);
                p.acknowledge(s).unwrap();
            }
        };
        thread::scope(|scope| {
            let h0 = scope.spawn(move || {
                run(&mut p0);
                p0
            });
            let mut p1 = p1;
            let h1 = scope.spawn(move || run(&mut p1));
            h0.join().unwrap();
            h1.join().unwrap();
        });
    }

    /// Both directions cut at once (a reconnect storm, here at different
    /// supersteps each) still converges to exactly-once delivery.
    #[test]
    fn mutual_cuts_still_converge() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_resilient_all(bound, &addrs, &ResilienceConfig::default());
        let p1 = planes.pop().unwrap();
        let p0 = planes.pop().unwrap();
        let mut p0 = FaultPlane::new(p0, CutPlan::explicit(vec![(1, 1), (2, 1)]));
        let mut p1 = FaultPlane::new(p1, CutPlan::explicit(vec![(1, 0)]));

        let run = |p: &mut dyn BroadcastPlane| {
            let id = p.server_id();
            let peer = 1 - id;
            for s in 0..5u32 {
                p.broadcast(s, &[id as u8, s as u8]).unwrap();
                p.end_superstep(s).unwrap();
                let got = p.collect(s).unwrap();
                assert_eq!(got.len(), 1, "server {id} superstep {s}");
                assert_eq!(&got[0][..], &[peer as u8, s as u8]);
                p.acknowledge(s).unwrap();
            }
        };
        thread::scope(|scope| {
            let h0 = scope.spawn(move || run(&mut p0));
            let h1 = scope.spawn(move || run(&mut p1));
            h0.join().unwrap();
            h1.join().unwrap();
        });
    }

    /// A peer that never comes back is terminal — but only after the
    /// reconnect deadline, not on the first EOF.
    #[test]
    fn dead_peer_is_terminal_only_after_the_deadline() {
        let (bound, addrs) = bind_cluster(2);
        let config = ResilienceConfig {
            reconnect_deadline: Duration::from_millis(200),
            retry_backoff: Duration::from_millis(20),
            ..ResilienceConfig::default()
        };
        let mut planes = establish_resilient_all(bound, &addrs, &config);
        let p1 = planes.pop().unwrap();
        let mut p0 = planes.pop().unwrap();
        let start = Instant::now();
        // Simulate a crash, not a graceful exit: no goodbye ever reaches p0
        // (a killed process sends none) and no self-recovery runs.
        p1.crash();
        p0.end_superstep(0).unwrap();
        assert_eq!(p0.collect(0), Err(PlaneError::Disconnected));
        assert!(
            start.elapsed() >= Duration::from_millis(150),
            "terminal loss must wait out the reconnect deadline"
        );
    }

    /// Sabotaged resume handshakes (torn hello, then dropped hello) are
    /// retried until the fault budget runs out; establishment still succeeds.
    #[test]
    fn torn_and_dropped_handshakes_are_survived() {
        for fault in [HandshakeFault::Torn { bytes: 7 }, HandshakeFault::Drop] {
            let (bound, addrs) = bind_cluster(2);
            let mut iter = bound.into_iter();
            let b0 = iter.next().unwrap();
            let b1 = iter.next().unwrap();
            let faulty = ResilienceConfig {
                handshake_fault: Some(fault),
                handshake_fault_budget: 2,
                ..ResilienceConfig::default()
            };
            let (mut p0, mut p1) = thread::scope(|scope| {
                let addrs0 = &addrs;
                let h0 = scope.spawn(move || {
                    b0.establish_resilient(
                        addrs0,
                        Duration::from_secs(10),
                        ResilienceConfig::default(),
                    )
                    .unwrap()
                });
                let addrs1 = &addrs;
                let h1 = scope.spawn(move || {
                    b1.establish_resilient(addrs1, Duration::from_secs(10), faulty)
                        .unwrap()
                });
                (h0.join().unwrap(), h1.join().unwrap())
            });
            p0.broadcast(0, b"after-chaos").unwrap();
            p0.end_superstep(0).unwrap();
            p1.end_superstep(0).unwrap();
            let got = p1.collect(0).unwrap();
            assert_eq!(&got[0][..], b"after-chaos");
            assert!(p0.collect(0).unwrap().is_empty());
            // Ack like a real worker would: an unacked final superstep makes
            // the last plane to drop linger for its (now absent) peer.
            p1.acknowledge(0).unwrap();
            p0.acknowledge(0).unwrap();
        }
    }

    /// A cluster bootstrapped from one seed address (no static peer table)
    /// converges its address books and reaches the same all-to-all parity as
    /// a statically configured one.
    #[test]
    fn seed_discovered_cluster_reaches_parity() {
        let (bound, addrs) = bind_cluster(3);
        let seed = addrs[0];
        let planes: Vec<ResilientSocketPlane> = thread::scope(|scope| {
            let handles: Vec<_> = bound
                .into_iter()
                .map(|b| {
                    scope.spawn(move || {
                        let view = b.discover(&[seed], Duration::from_secs(10)).unwrap();
                        assert_eq!(view.incarnation, 0, "fresh bootstrap never bumps");
                        b.establish_resilient_discovered(
                            view,
                            Duration::from_secs(10),
                            ResilienceConfig::default(),
                        )
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let results: Vec<Vec<usize>> = thread::scope(|scope| {
            let handles: Vec<_> = planes
                .into_iter()
                .map(|mut p| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for s in 0..4u32 {
                            p.broadcast(s, &[p.server_id() as u8, s as u8]).unwrap();
                            p.end_superstep(s).unwrap();
                            let got = p.collect(s).unwrap();
                            assert!(got.iter().all(|w| w.len() == 2 && w[1] == s as u8));
                            p.acknowledge(s).unwrap();
                            seen.push(got.len());
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for seen in results {
            assert_eq!(seen, vec![2, 2, 2, 2]);
        }
    }

    /// The tentpole scenario at transport level: a peer is killed mid-run and
    /// a replacement process with the same server id comes back **at a
    /// different address**, found via seed discovery. The survivor's redial
    /// loop re-consults the gossiped book, replays from the replacement's
    /// checkpoint cursor, and the run finishes with exactly-once delivery.
    #[test]
    fn replacement_at_a_new_address_is_adopted_mid_run() {
        let (bound, addrs) = bind_cluster(2);
        let seed = addrs[0];
        let survivor_config = ResilienceConfig {
            reconnect_deadline: Duration::from_secs(10),
            retry_backoff: Duration::from_millis(10),
            ..ResilienceConfig::default()
        };
        // The victim gets a short deadline so its crash-simulating drop
        // (sever first: a killed process sends no goodbye) lingers briefly.
        let victim_config = ResilienceConfig {
            reconnect_deadline: Duration::from_millis(300),
            retry_backoff: Duration::from_millis(10),
            ..ResilienceConfig::default()
        };
        let (p0, p1) = thread::scope(|scope| {
            let mut iter = bound.into_iter();
            let b0 = iter.next().unwrap();
            let b1 = iter.next().unwrap();
            let c0 = survivor_config.clone();
            let c1 = victim_config.clone();
            let h0 = scope.spawn(move || {
                let view = b0.discover(&[seed], Duration::from_secs(10)).unwrap();
                b0.establish_resilient_discovered(view, Duration::from_secs(10), c0)
                    .unwrap()
            });
            let h1 = scope.spawn(move || {
                let view = b1.discover(&[seed], Duration::from_secs(10)).unwrap();
                b1.establish_resilient_discovered(view, Duration::from_secs(10), c1)
                    .unwrap()
            });
            (h0.join().unwrap(), h1.join().unwrap())
        });

        const TOTAL: u32 = 6;
        const CRASH_AT: u32 = 3; // victim completes supersteps 0..CRASH_AT
                                 // Per-server progress (supersteps fully collected + acked), so the
                                 // victim can crash only once the survivor has absorbed everything it
                                 // broadcast pre-crash — the multiprocess driver guarantees the same
                                 // by killing well after the victim's checkpoint lands. Crashing
                                 // earlier can destroy in-flight frames the survivor still needs,
                                 // which no replacement can replay (its log starts at the resume
                                 // cursor): that is *correctly* terminal, but not this scenario.
        let progress = [AtomicU32::new(0), AtomicU32::new(0)];
        let run = |p: &mut ResilientSocketPlane, from: u32, to: u32| {
            let id = p.server_id();
            let peer = 1 - id;
            for s in from..to {
                p.broadcast(s, &[id as u8, s as u8]).unwrap();
                p.end_superstep(s).unwrap();
                let got = p.collect(s).unwrap();
                assert_eq!(got.len(), 1, "server {id} superstep {s}");
                assert_eq!(&got[0][..], &[peer as u8, s as u8]);
                p.acknowledge(s).unwrap();
                progress[id as usize].store(s + 1, Ordering::Release);
            }
        };
        thread::scope(|scope| {
            let h0 = scope.spawn(|| {
                let mut p0 = p0;
                run(&mut p0, 0, TOTAL);
            });
            let h1 = scope.spawn(|| {
                let mut p1 = p1;
                run(&mut p1, 0, CRASH_AT);
                while progress[0].load(Ordering::Acquire) < CRASH_AT {
                    thread::sleep(Duration::from_millis(1));
                }
                // Die like a killed process: no goodbye, no linger, no
                // self-recovery — the survivor must hold the door open.
                p1.crash();
                // The replacement re-binds the same server id on a fresh
                // OS-assigned port and finds the cluster through the seed.
                let rb = SocketPlane::bind(1, 2, "127.0.0.1:0").unwrap();
                assert_ne!(rb.local_addr().unwrap(), addrs[1]);
                let view = rb.discover(&[seed], Duration::from_secs(10)).unwrap();
                // The replacement runs to a clean goodbye, so it does not
                // need the victim's short crash-linger deadline — and must
                // not have it: if its dial and the survivor's book-guided
                // redial cross, the duplicate-connection re-park plus
                // backoff can outlast 300ms on a loaded machine.
                let config = ResilienceConfig {
                    resume_from: CRASH_AT,
                    ..survivor_config.clone()
                };
                let mut p1 = rb
                    .establish_resilient_discovered(view, Duration::from_secs(10), config)
                    .unwrap();
                run(&mut p1, CRASH_AT, TOTAL);
            });
            h0.join().unwrap();
            h1.join().unwrap();
        });
    }
}
