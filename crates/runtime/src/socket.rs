//! TCP backend of the broadcast plane: real multi-process transport.
//!
//! [`SocketPlane`] puts one simulated server in its own OS **process** (the
//! `graphh-node` binary in `graphh-bench` does exactly that): every pair of
//! servers shares one full-duplex TCP connection, frames travel in the
//! length-prefixed wire encoding of [`crate::frame`], and one reader thread
//! per peer feeds the same [`SuperstepCollector`] inbox discipline the
//! in-process [`crate::plane::ChannelPlane`] uses — so the executor-facing
//! behaviour (superstep ordering, stashing, abort semantics) is identical and
//! the differential tests pin TCP runs bit-identical to the sequential
//! reference.
//!
//! ## Topology and handshake
//!
//! Establishment is deterministic and cycle-free: server `i` **connects** to
//! every peer with a smaller id and **accepts** from every peer with a larger
//! one. The connector opens the connection with a 12-byte handshake —
//! `b"GHH1" | u32 LE cluster size | u32 LE sender id` — which the acceptor
//! validates (magic, matching cluster size, expected and not-yet-seen id)
//! before the stream joins the fabric. Connects retry while the peer's
//! listener is still coming up; both sides give up after the establish
//! timeout instead of hanging on a misconfigured cluster.

use crate::frame::{Frame, FrameError, InboxEvent, PlaneError, SuperstepCollector, WireMessage};
use crate::plane::BroadcastPlane;
use graphh_graph::ids::ServerId;
use graphh_obs::{global_counters, Counter};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// First bytes of every connection: protocol magic + version.
const HANDSHAKE_MAGIC: [u8; 4] = *b"GHH1";

/// How long [`BoundSocketPlane::establish`] keeps retrying connects and
/// polling accepts before giving up on an absent peer.
pub const DEFAULT_ESTABLISH_TIMEOUT: Duration = Duration::from_secs(10);

/// A socket plane that has bound its listener but not yet connected to its
/// peers. Two-phase establishment exists so callers (tests, the `graphh-node`
/// launcher) can bind every listener first — `local_addr` then reports the
/// OS-assigned port — before any endpoint starts dialing.
pub struct BoundSocketPlane {
    id: ServerId,
    num_servers: u32,
    listener: TcpListener,
}

impl BoundSocketPlane {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Connect to every peer and return the ready plane.
    ///
    /// `peer_addrs` holds one address per server, indexed by server id (this
    /// server's own entry is ignored). Blocks until all `num_servers - 1`
    /// connections are up, retrying for [`DEFAULT_ESTABLISH_TIMEOUT`].
    pub fn establish(self, peer_addrs: &[SocketAddr]) -> std::io::Result<SocketPlane> {
        self.establish_with_timeout(peer_addrs, DEFAULT_ESTABLISH_TIMEOUT)
    }

    /// [`Self::establish`] with an explicit timeout.
    pub fn establish_with_timeout(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
    ) -> std::io::Result<SocketPlane> {
        let BoundSocketPlane {
            id,
            num_servers,
            listener,
        } = self;
        let streams = establish_streams(id, num_servers, listener, peer_addrs, timeout)?;

        // One reader thread per peer feeds the shared inbox; the write halves
        // stay with the plane. Per-peer counters register here — once, at
        // establish time — so the reader loops only touch atomics.
        let registry = global_counters();
        let (tx, inbox) = channel::<InboxEvent>();
        let peer_ids: Vec<ServerId> = streams.iter().map(|&(peer, _)| peer).collect();
        let mut writers = Vec::with_capacity(streams.len());
        let mut readers = Vec::with_capacity(streams.len());
        for (peer, stream) in streams {
            let read_half = stream.try_clone()?;
            let tx = tx.clone();
            let frames_in = registry.counter(&format!("socket.s{id}.from{peer}.frames_in"));
            let bytes_in = registry.counter(&format!("socket.s{id}.from{peer}.bytes_in"));
            readers.push(
                std::thread::Builder::new()
                    .name(format!("graphh-sock-rx-{id}-from-{peer}"))
                    .spawn(move || reader_loop(read_half, peer, &tx, frames_in, bytes_in))
                    .map_err(|e| std::io::Error::other(format!("spawn reader thread: {e}")))?,
            );
            writers.push((peer, BufWriter::new(stream)));
        }
        Ok(SocketPlane {
            id,
            num_servers,
            peer_ids,
            writers,
            inbox,
            collector: SuperstepCollector::new(),
            readers,
            scratch: Vec::new(),
            bytes_written: registry.counter("socket.bytes_written"),
        })
    }
}

/// TCP implementation of [`BroadcastPlane`]: one full-duplex connection per
/// peer, frames in the length-prefixed wire encoding, reader threads feeding
/// the shared [`SuperstepCollector`] discipline.
pub struct SocketPlane {
    id: ServerId,
    num_servers: u32,
    /// Peer ids, sorted — the collector's completeness set, computed once.
    peer_ids: Vec<ServerId>,
    /// Write halves, ordered by peer id.
    writers: Vec<(ServerId, BufWriter<TcpStream>)>,
    /// Frames (and peer-loss events) from every reader thread.
    inbox: Receiver<InboxEvent>,
    collector: SuperstepCollector,
    readers: Vec<JoinHandle<()>>,
    /// Reused frame-encoding buffer.
    scratch: Vec<u8>,
    /// Total wire bytes handed to the write halves (all peers combined).
    bytes_written: Counter,
}

impl SocketPlane {
    /// Bind the listener for server `id` of a `num_servers` cluster on
    /// `listen_addr` (port 0 picks a free port; see
    /// [`BoundSocketPlane::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(
        id: ServerId,
        num_servers: u32,
        listen_addr: A,
    ) -> std::io::Result<BoundSocketPlane> {
        let listener = bind_listener(id, num_servers, listen_addr)?;
        Ok(BoundSocketPlane {
            id,
            num_servers,
            listener,
        })
    }

    /// Encode `frame` once and write it to every peer.
    fn send_to_all(&mut self, frame: &Frame) -> Result<(), PlaneError> {
        self.scratch.clear();
        frame.encode(&mut self.scratch);
        for (_, writer) in &mut self.writers {
            writer
                .write_all(&self.scratch)
                .map_err(|_| PlaneError::Disconnected)?;
            self.bytes_written.add(self.scratch.len() as u64);
        }
        Ok(())
    }
}

impl BroadcastPlane for SocketPlane {
    fn num_servers(&self) -> u32 {
        self.num_servers
    }

    fn server_id(&self) -> ServerId {
        self.id
    }

    fn broadcast(&mut self, superstep: u32, wire: &[u8]) -> Result<(), PlaneError> {
        // Encode straight from the payload slice (no intermediate Arc copy on
        // the hot path); the size check makes an oversized broadcast a clear
        // sender-side error instead of a stream every receiver rejects.
        self.scratch.clear();
        crate::frame::encode_message_into(self.id, superstep, wire, &mut self.scratch)
            .map_err(|e| PlaneError::Protocol(e.to_string()))?;
        for (_, writer) in &mut self.writers {
            writer
                .write_all(&self.scratch)
                .map_err(|_| PlaneError::Disconnected)?;
            self.bytes_written.add(self.scratch.len() as u64);
        }
        Ok(())
    }

    fn end_superstep(&mut self, superstep: u32) -> Result<(), PlaneError> {
        let frame = Frame::EndOfSuperstep {
            sender: self.id,
            superstep,
        };
        self.send_to_all(&frame)?;
        // The superstep's frames must actually hit the wire: peers block in
        // `collect` until they see this marker.
        for (_, writer) in &mut self.writers {
            writer.flush().map_err(|_| PlaneError::Disconnected)?;
        }
        Ok(())
    }

    fn collect(&mut self, superstep: u32) -> Result<Vec<WireMessage>, PlaneError> {
        let inbox = &self.inbox;
        self.collector.collect(superstep, &self.peer_ids, || {
            inbox.recv().map_err(|_| PlaneError::Disconnected)
        })
    }

    fn abort(&mut self) {
        let frame = Frame::Abort { sender: self.id };
        self.scratch.clear();
        frame.encode(&mut self.scratch);
        for (_, writer) in &mut self.writers {
            // Best effort: a peer that is already gone cannot be told.
            let _ = writer.write_all(&self.scratch);
            let _ = writer.flush();
        }
    }
}

impl Drop for SocketPlane {
    fn drop(&mut self) {
        for (_, writer) in &mut self.writers {
            let _ = writer.flush();
            // Shutting down the socket unblocks this plane's reader thread
            // (same fd) and delivers EOF to the peer's.
            let _ = writer.get_ref().shutdown(Shutdown::Both);
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for SocketPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketPlane")
            .field("id", &self.id)
            .field("num_servers", &self.num_servers)
            .finish()
    }
}

/// Establish the fully-connected fabric: the deterministic dial-lower /
/// accept-higher topology plus the GHH1 handshake, shared by every TCP
/// backend ([`SocketPlane`] and [`crate::poll::PollPlane`] differ only in how
/// they *drive* the established streams). Returns one blocking, NODELAY
/// stream per peer, sorted by peer id. See `docs/WIRE.md` §2 for the
/// normative handshake spec.
pub(crate) fn establish_streams(
    id: ServerId,
    num_servers: u32,
    listener: TcpListener,
    peer_addrs: &[SocketAddr],
    timeout: Duration,
) -> std::io::Result<Vec<(ServerId, TcpStream)>> {
    if peer_addrs.len() != num_servers as usize {
        return Err(invalid_input(format!(
            "need one address per server: got {} for a {num_servers}-server cluster",
            peer_addrs.len()
        )));
    }
    let deadline = Instant::now() + timeout;

    // Dial every lower id (their listeners are up or coming up), then
    // accept every higher id. The direction is fixed by the ids, so the
    // establishment graph is acyclic and cannot deadlock; the listener
    // backlog holds early connects from higher ids until we accept them.
    let mut streams: Vec<(ServerId, TcpStream)> =
        Vec::with_capacity(num_servers.saturating_sub(1) as usize);
    for peer in 0..id {
        let stream = connect_with_retry(peer_addrs[peer as usize], deadline)?;
        stream.set_nodelay(true)?;
        let mut hello = Vec::with_capacity(12);
        hello.extend_from_slice(&HANDSHAKE_MAGIC);
        hello.extend_from_slice(&num_servers.to_le_bytes());
        hello.extend_from_slice(&id.to_le_bytes());
        let mut stream_ref = &stream;
        stream_ref.write_all(&hello)?;
        stream_ref.flush()?;
        streams.push((peer, stream));
    }
    let mut expected: Vec<ServerId> = ((id + 1)..num_servers).collect();
    listener.set_nonblocking(true)?;
    while !expected.is_empty() {
        // Checked every iteration — including after a dropped stray — so a
        // periodic prober on the listen port cannot starve the timeout by
        // keeping accept() busy.
        if Instant::now() >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!(
                    "server {id}: peers {expected:?} did not connect before the establish \
                     timeout"
                ),
            ));
        }
        match listener.accept() {
            Ok((stream, from)) => {
                stream.set_nonblocking(false)?;
                let peer = match read_handshake(&stream, num_servers, deadline) {
                    Ok(peer) => peer,
                    Err(HandshakeIssue::Stray(why)) => {
                        // Not a GraphH peer (port scanner, health checker, a
                        // silent or garbage connection): drop it and keep
                        // accepting — a stranger must not kill a healthy
                        // cluster's establishment.
                        eprintln!(
                            "graphh establish (server {id}): ignoring connection from \
                             {from}: {why}"
                        );
                        continue;
                    }
                    Err(HandshakeIssue::Fatal(e)) => return Err(e),
                };
                if let Some(slot) = expected.iter().position(|&e| e == peer) {
                    expected.swap_remove(slot);
                    stream.set_nodelay(true)?;
                    streams.push((peer, stream));
                } else {
                    return Err(invalid_data(format!(
                        "unexpected or duplicate handshake from server {peer}"
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    streams.sort_by_key(|&(peer, _)| peer);
    Ok(streams)
}

/// Validate a (server id, cluster size) pair and bind its listener — the
/// shared first phase of every TCP backend's two-phase establishment.
pub(crate) fn bind_listener<A: ToSocketAddrs>(
    id: ServerId,
    num_servers: u32,
    listen_addr: A,
) -> std::io::Result<TcpListener> {
    if num_servers == 0 {
        return Err(invalid_input(
            "cluster must have at least one server (num_servers = 0)".to_string(),
        ));
    }
    if id >= num_servers {
        return Err(invalid_input(format!(
            "server id {id} out of range for a {num_servers}-server cluster"
        )));
    }
    TcpListener::bind(listen_addr)
}

/// Decode frames off one peer's stream into the shared inbox until the stream
/// ends. Any ending — clean EOF included — enqueues a terminal
/// [`InboxEvent::PeerLost`]: because the stream is FIFO, every frame the peer
/// ever sent is already in the inbox ahead of the loss event, so the
/// collector can tell a peer that finished the run and closed (benign) from
/// one that died mid-superstep (fatal).
fn reader_loop(
    stream: TcpStream,
    peer: ServerId,
    tx: &Sender<InboxEvent>,
    frames_in: Counter,
    bytes_in: Counter,
) {
    // Counting below the BufReader charges bytes as they come off the socket
    // (readahead included) — that is the "bytes over the wire" number we want.
    let mut reader = BufReader::new(CountingRead {
        inner: stream,
        bytes: bytes_in,
    });
    loop {
        match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => {
                frames_in.incr();
                if frame.sender() != peer {
                    let _ = tx.send(InboxEvent::PeerLost(
                        peer,
                        PlaneError::Protocol(format!(
                            "stream from server {peer} carried a frame claiming sender {}",
                            frame.sender()
                        )),
                    ));
                    return;
                }
                if tx.send(InboxEvent::Frame(frame)).is_err() {
                    return; // plane dropped; stop reading
                }
            }
            Ok(None) => {
                let _ = tx.send(InboxEvent::PeerLost(peer, PlaneError::Disconnected));
                return;
            }
            Err(FrameError::Corrupt(m)) => {
                let _ = tx.send(InboxEvent::PeerLost(
                    peer,
                    PlaneError::Protocol(format!("corrupt frame from server {peer}: {m}")),
                ));
                return;
            }
            Err(FrameError::Io(_)) => {
                let _ = tx.send(InboxEvent::PeerLost(peer, PlaneError::Disconnected));
                return;
            }
        }
    }
}

/// A `Read` adapter that charges every byte read to a [`Counter`].
struct CountingRead<R> {
    inner: R,
    bytes: Counter,
}

impl<R: Read> Read for CountingRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes.add(n as u64);
        Ok(n)
    }
}

fn connect_with_retry(addr: SocketAddr, deadline: Instant) -> std::io::Result<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("could not reach peer at {addr} before the establish timeout: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// How an accepted connection failed the handshake: a stray connection is
/// dropped and establishment continues; a fatal issue (a real GHH1 speaker
/// with a conflicting cluster config) aborts establishment loudly.
enum HandshakeIssue {
    Stray(String),
    Fatal(std::io::Error),
}

/// Longest one accepted connection may take to produce its 12 handshake
/// bytes. Real dialers send them immediately after connect; a silent stray
/// must not eat the whole establish deadline.
const HANDSHAKE_READ_CAP: Duration = Duration::from_secs(2);

fn read_handshake(
    stream: &TcpStream,
    num_servers: u32,
    deadline: Instant,
) -> Result<ServerId, HandshakeIssue> {
    // A rogue or half-dead connection must not park establishment forever —
    // nor monopolize the remaining deadline while real peers queue behind it.
    let budget = deadline
        .checked_duration_since(Instant::now())
        .unwrap_or(Duration::from_millis(1))
        .min(HANDSHAKE_READ_CAP);
    let io = |e: std::io::Error| HandshakeIssue::Fatal(e);
    stream.set_read_timeout(Some(budget)).map_err(io)?;
    let mut hello = [0u8; 12];
    if let Err(e) = (&mut &*stream).read_exact(&mut hello) {
        // EOF, timeout, reset: whatever it was, it was not a GraphH peer's
        // handshake (those are a single immediate 12-byte write).
        return Err(HandshakeIssue::Stray(format!(
            "no GHH1 handshake within {budget:?}: {e}"
        )));
    }
    stream.set_read_timeout(None).map_err(io)?;
    if hello[0..4] != HANDSHAKE_MAGIC {
        return Err(HandshakeIssue::Stray(
            "connection did not open with the GHH1 handshake magic".to_string(),
        ));
    }
    let claimed_servers = u32::from_le_bytes([hello[4], hello[5], hello[6], hello[7]]);
    if claimed_servers != num_servers {
        // A genuine GraphH peer that disagrees about the cluster shape is a
        // misconfiguration worth failing loudly on, not a stray to ignore.
        return Err(HandshakeIssue::Fatal(invalid_data(format!(
            "peer believes the cluster has {claimed_servers} servers, this node {num_servers}"
        ))));
    }
    Ok(ServerId::from_le_bytes([
        hello[8], hello[9], hello[10], hello[11],
    ]))
}

fn invalid_input(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, message)
}

fn invalid_data(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Bind `n` planes on loopback and return them with the address table.
    fn bind_cluster(n: u32) -> (Vec<BoundSocketPlane>, Vec<SocketAddr>) {
        let bound: Vec<BoundSocketPlane> = (0..n)
            .map(|sid| SocketPlane::bind(sid, n, "127.0.0.1:0").unwrap())
            .collect();
        let addrs = bound.iter().map(|b| b.local_addr().unwrap()).collect();
        (bound, addrs)
    }

    fn establish_all(bound: Vec<BoundSocketPlane>, addrs: &[SocketAddr]) -> Vec<SocketPlane> {
        thread::scope(|scope| {
            let handles: Vec<_> = bound
                .into_iter()
                .map(|b| scope.spawn(move || b.establish(addrs).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn config_errors_are_rejected_at_bind() {
        assert!(SocketPlane::bind(0, 0, "127.0.0.1:0").is_err());
        assert!(SocketPlane::bind(3, 3, "127.0.0.1:0").is_err());
        assert!(SocketPlane::bind(0, 1, "127.0.0.1:0").is_ok());
    }

    #[test]
    fn establish_rejects_wrong_address_table() {
        let (mut bound, mut addrs) = bind_cluster(2);
        let b = bound.remove(0);
        addrs.pop();
        assert!(b.establish(&addrs).is_err());
        // Unblock the remaining bound plane by dropping it unestablished.
        drop(bound);
    }

    #[test]
    fn single_server_socket_plane_collects_nothing() {
        let (bound, addrs) = bind_cluster(1);
        let mut plane = bound.into_iter().next().unwrap().establish(&addrs).unwrap();
        plane.end_superstep(0).unwrap();
        assert_eq!(plane.collect(0).unwrap(), Vec::<WireMessage>::new());
    }

    #[test]
    fn all_to_all_delivery_over_loopback_tcp() {
        let (bound, addrs) = bind_cluster(3);
        let planes = establish_all(bound, &addrs);
        let results: Vec<Vec<usize>> = thread::scope(|scope| {
            let handles: Vec<_> = planes
                .into_iter()
                .map(|mut p| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for s in 0..4u32 {
                            for _ in 0..=s {
                                p.broadcast(s, &[p.server_id() as u8, s as u8]).unwrap();
                            }
                            p.end_superstep(s).unwrap();
                            let got = p.collect(s).unwrap();
                            assert!(got.iter().all(|w| w.len() == 2 && w[1] == s as u8));
                            seen.push(got.len());
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for seen in results {
            assert_eq!(seen, vec![2, 4, 6, 8]);
        }
    }

    #[test]
    fn abort_crosses_the_wire() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_all(bound, &addrs).into_iter();
        let mut a = planes.next().unwrap();
        let mut b = planes.next().unwrap();
        b.abort();
        a.end_superstep(0).unwrap();
        assert_eq!(a.collect(0), Err(PlaneError::Aborted(1)));
    }

    #[test]
    fn dropped_peer_process_surfaces_as_disconnect() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_all(bound, &addrs).into_iter();
        let mut a = planes.next().unwrap();
        let b = planes.next().unwrap();
        drop(b); // peer "process" dies without ending the superstep
        assert_eq!(a.collect(0), Err(PlaneError::Disconnected));
    }

    /// A stranger connecting to a node's listener mid-establishment (port
    /// scanner, health checker, a silent or garbage connection) must be
    /// dropped — not abort the whole cluster's establishment.
    #[test]
    fn stray_connections_do_not_kill_establishment() {
        let (bound, addrs) = bind_cluster(2);
        let mut iter = bound.into_iter();
        let b0 = iter.next().unwrap();
        let b1 = iter.next().unwrap();
        let target = addrs[0];

        let mut planes: Vec<SocketPlane> = thread::scope(|scope| {
            let addrs = &addrs;
            let h0 = scope.spawn(move || b0.establish(addrs).unwrap());
            // Two strays into server 0's accept queue ahead of the real
            // peer: one sends garbage, one connects and says nothing.
            let garbage = TcpStream::connect(target).unwrap();
            (&garbage).write_all(b"NOPE").unwrap();
            drop(garbage);
            drop(TcpStream::connect(target).unwrap());
            let h1 = scope.spawn(move || b1.establish(addrs).unwrap());
            vec![h0.join().unwrap(), h1.join().unwrap()]
        });

        // The fabric works despite the strays.
        for p in &mut planes {
            p.broadcast(0, &[p.server_id() as u8]).unwrap();
            p.end_superstep(0).unwrap();
        }
        for p in &mut planes {
            assert_eq!(p.collect(0).unwrap().len(), 1);
        }
    }

    /// A prober that reconnects in a loop keeps `accept()` returning `Ok`;
    /// the deadline must still fire — stray handling may not starve the
    /// establish timeout.
    #[test]
    fn accept_side_timeout_survives_persistent_strays() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let bound = SocketPlane::bind(0, 2, "127.0.0.1:0").unwrap();
        let addr = bound.local_addr().unwrap();
        let own_addr = addr; // placeholder entry for this server's slot
        let done = AtomicBool::new(false);
        thread::scope(|scope| {
            scope.spawn(|| {
                // Connect-and-close probers: each accept yields a clean-EOF
                // stray.
                while !done.load(Ordering::Relaxed) {
                    drop(TcpStream::connect(addr));
                    thread::sleep(Duration::from_millis(10));
                }
            });
            let err = bound
                .establish_with_timeout(&[own_addr, addr], Duration::from_millis(300))
                .unwrap_err();
            done.store(true, Ordering::Relaxed);
            assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        });
    }

    #[test]
    fn missing_peer_times_out_instead_of_hanging() {
        let bound = SocketPlane::bind(1, 2, "127.0.0.1:0").unwrap();
        // Peer 0's address points at a bound-then-dropped port: nothing will
        // ever accept there.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let addrs = vec![dead_addr, bound.local_addr().unwrap()];
        let err = bound
            .establish_with_timeout(&addrs, Duration::from_millis(300))
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    }
}
