//! Reconnect-and-resume machinery shared by the resilient transports.
//!
//! Three pieces, all transport-agnostic and unit-testable without sockets:
//!
//! * [`ResumeHello`] — the 16-byte `GHHR` handshake a resilient endpoint
//!   exchanges on *every* connection (initial establish and reconnect alike).
//!   Unlike the one-way 12-byte `GHH1` hello, the resume hello flows in both
//!   directions: each side tells the other the superstep it wants the peer's
//!   stream to resume from, so each side can replay its retained frames.
//! * [`ReplayLog`] — the sender-side retention buffer. Every frame written to
//!   the fabric is also appended here, keyed by superstep; on reconnect the
//!   log replays everything from the peer's requested cursor, and incoming
//!   [`crate::frame::Frame::Ack`]s trim the prefix every peer has durably
//!   applied.
//! * [`ResilienceConfig`] — retry/backoff/deadline policy plus the
//!   deterministic handshake-fault injection the chaos suite drives.
//!
//! The normative byte spec lives in `docs/WIRE.md` §9; this module is the
//! reference implementation.

use crate::membership::MembershipHandle;
use graphh_graph::ids::ServerId;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::Duration;

/// Magic prefix of the resilient-mode resume handshake.
pub const RESUME_MAGIC: [u8; 4] = *b"GHHR";

/// Encoded size of a [`ResumeHello`].
pub const RESUME_HELLO_LEN: usize = 16;

/// The resilient-mode handshake: `b"GHHR" | u32 LE cluster size | u32 LE
/// sender id | u32 LE resume-from superstep`.
///
/// `resume_from` is the first superstep the *sender of the hello* still
/// needs: the receiving side must replay every retained frame with a
/// superstep `>= resume_from` before sending anything new on the stream.
/// On an initial connection it is 0 (nothing sent yet, nothing to replay);
/// a restarted server sends its checkpoint cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeHello {
    /// Total servers in the cluster (must agree on both ends).
    pub cluster_size: u32,
    /// The server sending this hello.
    pub sender: ServerId,
    /// First superstep the sender wants replayed.
    pub resume_from: u32,
}

impl ResumeHello {
    /// Encode to the 16-byte wire form.
    pub fn encode(&self) -> [u8; RESUME_HELLO_LEN] {
        let mut out = [0u8; RESUME_HELLO_LEN];
        out[0..4].copy_from_slice(&RESUME_MAGIC);
        out[4..8].copy_from_slice(&self.cluster_size.to_le_bytes());
        out[8..12].copy_from_slice(&self.sender.to_le_bytes());
        out[12..16].copy_from_slice(&self.resume_from.to_le_bytes());
        out
    }

    /// Decode a received hello. Errors (never panics) on any length other
    /// than exactly [`RESUME_HELLO_LEN`] or a wrong magic — truncated,
    /// duplicated, or torn hellos all land here.
    pub fn decode(bytes: &[u8]) -> Result<ResumeHello, String> {
        if bytes.len() != RESUME_HELLO_LEN {
            return Err(format!(
                "resume hello must be {RESUME_HELLO_LEN} bytes, got {}",
                bytes.len()
            ));
        }
        if bytes[0..4] != RESUME_MAGIC {
            return Err(format!(
                "bad resume-hello magic {:02x?} (expected {:02x?})",
                &bytes[0..4],
                RESUME_MAGIC
            ));
        }
        Ok(ResumeHello {
            cluster_size: u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            sender: ServerId::from_le_bytes(bytes[8..12].try_into().unwrap()),
            resume_from: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
        })
    }

    /// Validate a decoded hello against this endpoint's view of the cluster:
    /// the advertised size must match and the sender must be a real, other
    /// server. `expected` pins the sender when the dialed address implies one.
    pub fn check(
        &self,
        num_servers: u32,
        own_id: ServerId,
        expected: Option<ServerId>,
    ) -> Result<(), String> {
        if self.cluster_size != num_servers {
            return Err(format!(
                "peer believes the cluster has {} servers, this node {num_servers}",
                self.cluster_size
            ));
        }
        if self.sender >= num_servers {
            return Err(format!(
                "hello from server id {} outside the {num_servers}-server cluster",
                self.sender
            ));
        }
        if self.sender == own_id {
            return Err(format!("hello claims this node's own id {own_id}"));
        }
        if let Some(expected) = expected {
            if self.sender != expected {
                return Err(format!(
                    "expected hello from server {expected}, got {}",
                    self.sender
                ));
            }
        }
        Ok(())
    }
}

/// Could a resume request be satisfied from the retained frames?
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The requested cursor was already trimmed away: the peer acknowledged
    /// past it and later asked for it again (it lost durable state it had
    /// claimed). Unrecoverable — the caller falls back to the terminal
    /// peer-lost path.
    BelowFloor {
        /// The superstep the peer asked to resume from.
        requested: u32,
        /// The first superstep still retained.
        floor: u32,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::BelowFloor { requested, floor } => write!(
                f,
                "peer asked to resume from superstep {requested} but frames below {floor} \
                 were trimmed after acknowledgement"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// One superstep's retained wire bytes.
#[derive(Debug)]
struct ReplayEntry {
    superstep: u32,
    bytes: Vec<u8>,
    frames: u64,
}

/// Sender-side frame retention for reconnect replay.
///
/// Every frame a resilient endpoint broadcasts (messages *and* end-of-
/// superstep markers) is appended here in superstep order. Retention is
/// bounded by acknowledgements: `Ack(s)` from a peer means that peer durably
/// holds its state through superstep `s` (its process applied `s`, and — when
/// checkpointing — wrote the checkpoint covering it), so once **every** peer
/// has acknowledged `s`, frames `<= s` can never be requested again and are
/// trimmed. A resume request below the trim floor is the peer violating its
/// own acknowledgement and is rejected as unrecoverable.
#[derive(Debug)]
pub struct ReplayLog {
    /// Retained supersteps, ascending and contiguous from `trimmed_until`.
    entries: VecDeque<ReplayEntry>,
    /// Supersteps strictly below this were trimmed (0 = nothing trimmed).
    trimmed_until: u32,
    /// Highest superstep each server acknowledged (`None` = never acked).
    /// The own slot is ignored by the trim rule.
    acked: Vec<Option<u32>>,
    /// This endpoint's id (its `acked` slot never gates trimming).
    own: ServerId,
    /// Total retained payload bytes, for observability.
    bytes_retained: usize,
}

impl ReplayLog {
    /// An empty log for a `num_servers`-cluster endpoint with id `own`.
    pub fn new(num_servers: u32, own: ServerId) -> Self {
        Self::resuming_from(num_servers, own, 0)
    }

    /// An empty log for an endpoint resuming at superstep `resume_from`: the
    /// floor starts there, because nothing below it can ever be replayed —
    /// those frames belonged to the dead predecessor, and any of them still
    /// unflushed when it was killed are gone for good. A peer whose hello
    /// asks below this floor is therefore rejected as unrecoverable
    /// ([`ReplayError::BelowFloor`]) instead of silently receiving an empty
    /// replay and waiting forever for frames no one holds.
    pub fn resuming_from(num_servers: u32, own: ServerId, resume_from: u32) -> Self {
        Self {
            entries: VecDeque::new(),
            trimmed_until: resume_from,
            acked: vec![None; num_servers as usize],
            own,
            bytes_retained: 0,
        }
    }

    /// Retain `bytes` (`frames` whole frames) broadcast for `superstep`.
    /// Appends must come in non-decreasing superstep order — the broadcast
    /// path is serial per endpoint, so they do.
    pub fn append(&mut self, superstep: u32, bytes: &[u8], frames: u64) {
        debug_assert!(superstep >= self.trimmed_until);
        debug_assert!(self
            .entries
            .back()
            .is_none_or(|last| last.superstep <= superstep));
        self.bytes_retained += bytes.len();
        match self.entries.back_mut() {
            Some(last) if last.superstep == superstep => {
                last.bytes.extend_from_slice(bytes);
                last.frames += frames;
            }
            _ => self.entries.push_back(ReplayEntry {
                superstep,
                bytes: bytes.to_vec(),
                frames,
            }),
        }
    }

    /// Record `Ack(superstep)` from `peer` and trim every superstep that all
    /// peers have now acknowledged.
    pub fn ack(&mut self, peer: ServerId, superstep: u32) {
        let Some(slot) = self.acked.get_mut(peer as usize) else {
            return; // hostile sender id: ignore rather than panic
        };
        *slot = Some(slot.map_or(superstep, |s| s.max(superstep)));
        self.trim();
    }

    /// Stop counting `peer` toward the retention floor: the peer is
    /// terminally lost, so its acks can never arrive and holding frames for
    /// it would pin the log (and a lingering drop) forever.
    pub fn forget(&mut self, peer: ServerId) {
        let Some(slot) = self.acked.get_mut(peer as usize) else {
            return;
        };
        *slot = Some(u32::MAX);
        self.trim();
    }

    /// Drop every retained superstep at or below the minimum acknowledgement
    /// across all peers other than ourselves.
    fn trim(&mut self) {
        let floor = self
            .acked
            .iter()
            .enumerate()
            .filter(|&(id, _)| id as ServerId != self.own)
            .map(|(_, a)| *a)
            .min()
            .flatten();
        if let Some(floor) = floor {
            while self.entries.front().is_some_and(|e| e.superstep <= floor) {
                let gone = self.entries.pop_front().unwrap();
                self.bytes_retained -= gone.bytes.len();
            }
            self.trimmed_until = self.trimmed_until.max(floor.saturating_add(1));
        }
    }

    /// Everything retained from `resume_from` on, as one byte run plus its
    /// frame count — or [`ReplayError::BelowFloor`] when the cursor was
    /// already trimmed.
    pub fn replay_from(&self, resume_from: u32) -> Result<(Vec<u8>, u64), ReplayError> {
        if resume_from < self.trimmed_until {
            return Err(ReplayError::BelowFloor {
                requested: resume_from,
                floor: self.trimmed_until,
            });
        }
        let mut bytes = Vec::new();
        let mut frames = 0u64;
        for entry in &self.entries {
            if entry.superstep >= resume_from {
                bytes.extend_from_slice(&entry.bytes);
                frames += entry.frames;
            }
        }
        Ok((bytes, frames))
    }

    /// First superstep a resume request may still ask for.
    pub fn floor(&self) -> u32 {
        self.trimmed_until
    }

    /// Total retained payload bytes.
    pub fn bytes_retained(&self) -> usize {
        self.bytes_retained
    }

    /// Number of retained superstep entries.
    pub fn retained_supersteps(&self) -> usize {
        self.entries.len()
    }
}

/// Deterministic handshake sabotage for the chaos suite, applied to a dial
/// attempt *instead of* the honest hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeFault {
    /// Write only the first `bytes` of the hello, then close (a torn hello).
    Torn {
        /// Bytes of the hello actually written before the tear.
        bytes: usize,
    },
    /// Write the hello twice back to back (a duplicated hello — the second
    /// copy desynchronizes a naive acceptor).
    Duplicate,
    /// Connect and close without writing anything (a dropped hello).
    Drop,
}

/// Policy knobs of the resilient transports.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// How long a cut peer may stay down before the terminal
    /// [`crate::frame::InboxEvent::PeerLost`] fires.
    pub reconnect_deadline: Duration,
    /// Base pause between reconnect attempts; attempt `k` waits a jittered
    /// `min(retry_backoff · 2^k, retry_backoff_cap)` (see
    /// [`crate::membership::ReconnectBackoff`]).
    pub retry_backoff: Duration,
    /// Ceiling of the exponential redial backoff. Clamped to
    /// `reconnect_deadline` — a single sleep longer than the whole redial
    /// window could never fire.
    pub retry_backoff_cap: Duration,
    /// The superstep this endpoint resumes from (0 for a fresh start; a
    /// restarted server passes its checkpoint cursor). Sent in every
    /// [`ResumeHello`] and used to seed the per-peer receive cursors.
    pub resume_from: u32,
    /// Chaos: sabotage dial-side hellos this way...
    pub handshake_fault: Option<HandshakeFault>,
    /// ...for this many dial attempts in total (then dial honestly, so every
    /// faulted reconnect still terminates).
    pub handshake_fault_budget: u32,
    /// The live membership state from seed discovery. When set, redial
    /// loops re-consult the gossiped address book before every attempt
    /// (adopting a replacement peer's new address) and the transports
    /// piggyback gossip deltas on the ack cadence. `None` = the PR 9 static
    /// table behaviour, byte-for-byte.
    pub membership: Option<MembershipHandle>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            reconnect_deadline: Duration::from_secs(30),
            retry_backoff: Duration::from_millis(50),
            retry_backoff_cap: Duration::from_secs(1),
            resume_from: 0,
            handshake_fault: None,
            handshake_fault_budget: 0,
            membership: None,
        }
    }
}

impl ResilienceConfig {
    /// Default policy resuming from `superstep` (a restarted server's
    /// checkpoint cursor).
    pub fn resuming_from(superstep: u32) -> Self {
        Self {
            resume_from: superstep,
            ..Self::default()
        }
    }

    /// The redial backoff schedule for the link `own → peer`: exponential
    /// from `retry_backoff`, capped by `retry_backoff_cap` (itself clamped
    /// to the reconnect deadline), deterministically jittered per link.
    pub fn backoff_for(
        &self,
        own: ServerId,
        peer: ServerId,
    ) -> crate::membership::ReconnectBackoff {
        let cap = self.retry_backoff_cap.min(self.reconnect_deadline);
        crate::membership::ReconnectBackoff::seeded_for(self.retry_backoff, cap, own, peer)
    }

    /// The address to dial `peer` at right now: the gossiped book's entry
    /// when membership is live (a replacement may have moved), else the
    /// static table's.
    pub fn peer_addr(&self, peer: ServerId, static_addrs: &[SocketAddr]) -> SocketAddr {
        self.membership
            .as_ref()
            .and_then(|m| m.peer_addr(peer))
            .unwrap_or(static_addrs[peer as usize])
    }
}

/// Count the length-prefixed frames in a run of encoded frame bytes (used to
/// meter replayed batches; trusts the bytes, which this endpoint encoded).
pub(crate) fn count_frames(mut bytes: &[u8]) -> u64 {
    let mut frames = 0u64;
    while bytes.len() >= 4 {
        let body = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if bytes.len() < 4 + body {
            break;
        }
        bytes = &bytes[4 + body..];
        frames += 1;
    }
    frames
}

/// Validate a `--peers` table before any connection is attempted, so a
/// misconfigured cluster fails at plan time with a clear message instead of
/// hanging in establish or failing halfway through.
///
/// Rejects: mixing a static `--peers` table with `--seed` discovery (the two
/// are alternative sources of the same address book — a node must pick one),
/// a table whose length disagrees with the cluster size, an own id outside
/// the cluster, duplicate addresses (two servers cannot share an endpoint —
/// and a duplicate of the own entry is another server dialing *this* node),
/// a port-0 entry (not dialable), and — when the node's own bound address is
/// known — any *other* server's entry pointing at it.
pub fn validate_peer_table(
    id: ServerId,
    num_servers: u32,
    peers: &[SocketAddr],
    seeds: &[SocketAddr],
    own_addr: Option<SocketAddr>,
) -> Result<(), String> {
    if !peers.is_empty() && !seeds.is_empty() {
        return Err(format!(
            "--peers and --seed are mutually exclusive: the static table \
             ({} peers) and seed discovery ({} seeds) are alternative sources \
             of the address book — drop one",
            peers.len(),
            seeds.len()
        ));
    }
    if num_servers == 0 {
        return Err("cluster size must be at least 1".into());
    }
    if id >= num_servers {
        return Err(format!(
            "server id {id} outside the {num_servers}-server cluster"
        ));
    }
    if peers.is_empty() && !seeds.is_empty() {
        // Seed-discovery mode: the table is learned, not declared. Only the
        // seed addresses themselves can be vetted at plan time.
        for (i, seed) in seeds.iter().enumerate() {
            if seed.port() == 0 {
                return Err(format!("seed {i} address {seed} has port 0 (not dialable)"));
            }
        }
        return Ok(());
    }
    if peers.len() != num_servers as usize {
        return Err(format!(
            "--peers lists {} addresses for a {num_servers}-server cluster \
             (one address per server, indexed by server id)",
            peers.len()
        ));
    }
    for (i, addr) in peers.iter().enumerate() {
        if addr.port() == 0 {
            return Err(format!("peer {i} address {addr} has port 0 (not dialable)"));
        }
        for (j, other) in peers.iter().enumerate().skip(i + 1) {
            if addr == other {
                return Err(format!(
                    "peers {i} and {j} share address {addr}: every server needs \
                     its own endpoint"
                ));
            }
        }
    }
    if let Some(own) = own_addr {
        for (j, addr) in peers.iter().enumerate() {
            if j as ServerId == id {
                continue;
            }
            let same_ip = addr.ip() == own.ip() || own.ip().is_unspecified();
            if same_ip && addr.port() == own.port() {
                return Err(format!(
                    "peer {j} address {addr} is this node's own listen address \
                     (self-dialing entry; did the --peers order slip?)"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    #[test]
    fn resume_hello_roundtrips() {
        let hello = ResumeHello {
            cluster_size: 5,
            sender: 3,
            resume_from: 17,
        };
        assert_eq!(ResumeHello::decode(&hello.encode()), Ok(hello));
        assert!(hello.check(5, 0, Some(3)).is_ok());
        assert!(hello.check(5, 0, None).is_ok());
    }

    /// Every truncation, extension, and random corruption of a valid hello
    /// must error — never panic, never decode to something valid-looking with
    /// the wrong magic.
    #[test]
    fn resume_hello_fuzz_errors_never_panics() {
        let valid = ResumeHello {
            cluster_size: 3,
            sender: 2,
            resume_from: 9,
        }
        .encode();
        for cut in 0..valid.len() {
            assert!(ResumeHello::decode(&valid[..cut]).is_err(), "cut {cut}");
        }
        let mut doubled = valid.to_vec();
        doubled.extend_from_slice(&valid);
        assert!(
            ResumeHello::decode(&doubled).is_err(),
            "a duplicated hello must not decode"
        );
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let mut corrupt = valid;
            for _ in 0..(1 + next() as usize % 4) {
                let i = next() as usize % corrupt.len();
                corrupt[i] ^= (1 + next() % 255) as u8;
            }
            let outcome = std::panic::catch_unwind(|| {
                let _ = ResumeHello::decode(&corrupt);
            });
            assert!(outcome.is_ok(), "hello decode panicked");
        }
    }

    /// Stale or hostile cursor/size/id fields are semantic errors surfaced by
    /// `check`, not panics.
    #[test]
    fn resume_hello_check_rejects_wrong_cluster_and_ids() {
        let hello = ResumeHello {
            cluster_size: 3,
            sender: 2,
            resume_from: 0,
        };
        assert!(hello.check(4, 0, None).is_err(), "cluster size mismatch");
        assert!(hello.check(3, 2, None).is_err(), "own id as sender");
        assert!(hello.check(3, 0, Some(1)).is_err(), "unexpected sender");
        let out_of_range = ResumeHello {
            cluster_size: 3,
            sender: 7,
            resume_from: 0,
        };
        assert!(
            out_of_range.check(3, 0, None).is_err(),
            "id outside cluster"
        );
    }

    fn eos_bytes(sender: ServerId, superstep: u32) -> Vec<u8> {
        let mut out = Vec::new();
        Frame::EndOfSuperstep { sender, superstep }.encode(&mut out);
        out
    }

    /// The exact retention/trim contract at superstep acks: nothing is
    /// trimmed until *every* peer acknowledged a superstep, then exactly the
    /// acknowledged prefix goes, and a request below the floor is rejected.
    #[test]
    fn replay_log_trims_only_the_prefix_every_peer_acked() {
        let mut log = ReplayLog::new(3, 0); // own id 0, peers 1 and 2
        for s in 0..4u32 {
            log.append(s, &[s as u8; 10], 1);
            log.append(s, &eos_bytes(0, s), 1);
        }
        assert_eq!(log.retained_supersteps(), 4);
        assert_eq!(log.floor(), 0);

        // One peer acking does not trim: the other might still need frames.
        log.ack(1, 2);
        assert_eq!(log.retained_supersteps(), 4);
        assert_eq!(log.floor(), 0);

        // The slowest peer's ack is what gates: min(2, 0) = 0 trims <= 0.
        log.ack(2, 0);
        assert_eq!(log.retained_supersteps(), 3);
        assert_eq!(log.floor(), 1);

        // Acks are monotone: a stale lower ack never un-trims or regresses.
        log.ack(1, 1);
        assert_eq!(log.floor(), 1);

        // Catch-up trims to the new common prefix.
        log.ack(2, 2);
        assert_eq!(log.retained_supersteps(), 1);
        assert_eq!(log.floor(), 3);

        // Replay at or above the floor works; below it is unrecoverable.
        let (bytes, frames) = log.replay_from(3).unwrap();
        assert_eq!(frames, 2);
        assert!(!bytes.is_empty());
        assert!(matches!(
            log.replay_from(2),
            Err(ReplayError::BelowFloor {
                requested: 2,
                floor: 3
            })
        ));
    }

    #[test]
    fn replay_log_coalesces_same_superstep_appends_and_meters_bytes() {
        let mut log = ReplayLog::new(2, 1);
        log.append(0, &[1, 2, 3], 1);
        log.append(0, &[4, 5], 1);
        log.append(1, &[6], 1);
        assert_eq!(log.retained_supersteps(), 2);
        assert_eq!(log.bytes_retained(), 6);
        let (bytes, frames) = log.replay_from(0).unwrap();
        assert_eq!(bytes, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(frames, 3);
        let (tail, tail_frames) = log.replay_from(1).unwrap();
        assert_eq!(tail, vec![6]);
        assert_eq!(tail_frames, 1);

        log.ack(0, 0);
        assert_eq!(log.bytes_retained(), 1);
    }

    #[test]
    fn replay_log_ignores_hostile_acker_ids() {
        let mut log = ReplayLog::new(2, 0);
        log.append(0, &[9], 1);
        log.ack(777, 5); // out of range: ignored, nothing trimmed
        assert_eq!(log.retained_supersteps(), 1);
    }

    #[test]
    fn restarted_log_rejects_cursors_below_its_resume_point() {
        // A replacement resuming at superstep 3 can never replay anything
        // below it — those frames died with its predecessor. A peer asking
        // for them must get a terminal rejection, not a silent empty replay
        // that leaves it waiting forever for frames no one holds.
        let log = ReplayLog::resuming_from(2, 1, 3);
        assert_eq!(log.floor(), 3);
        assert!(matches!(
            log.replay_from(2),
            Err(ReplayError::BelowFloor {
                requested: 2,
                floor: 3
            })
        ));
        let (bytes, frames) = log.replay_from(3).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(frames, 0);
    }

    #[test]
    fn count_frames_counts_whole_frames_only() {
        let mut bytes = eos_bytes(0, 1);
        bytes.extend_from_slice(&eos_bytes(0, 2));
        assert_eq!(count_frames(&bytes), 2);
        bytes.truncate(bytes.len() - 1);
        assert_eq!(count_frames(&bytes), 1);
        assert_eq!(count_frames(&[]), 0);
    }

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn peer_table_validation_catches_misconfigurations() {
        let table = vec![addr(4750), addr(4751), addr(4752)];
        assert!(validate_peer_table(0, 3, &table, &[], Some(addr(4750))).is_ok());

        // Count mismatch.
        let err = validate_peer_table(0, 4, &table, &[], None).unwrap_err();
        assert!(err.contains("lists 3 addresses"), "{err}");

        // Duplicate addresses.
        let dup = vec![addr(4750), addr(4751), addr(4750)];
        let err = validate_peer_table(1, 3, &dup, &[], None).unwrap_err();
        assert!(err.contains("share address"), "{err}");

        // Self-dialing entry: another server's slot points at this node.
        let selfdial = vec![addr(4750), addr(4751), addr(4752)];
        let err = validate_peer_table(0, 3, &selfdial, &[], Some(addr(4751))).unwrap_err();
        assert!(err.contains("own listen address"), "{err}");

        // Unspecified own IP still matches on port.
        let own: SocketAddr = "0.0.0.0:4752".parse().unwrap();
        let err = validate_peer_table(0, 3, &selfdial, &[], Some(own)).unwrap_err();
        assert!(err.contains("own listen address"), "{err}");

        // Port 0 and bad ids.
        let zero = vec![addr(4750), "127.0.0.1:0".parse().unwrap()];
        assert!(validate_peer_table(0, 2, &zero, &[], None).is_err());
        assert!(validate_peer_table(5, 3, &table, &[], None).is_err());
        assert!(validate_peer_table(0, 0, &[], &[], None).is_err());
    }

    #[test]
    fn peer_table_validation_handles_seed_mode() {
        let table = vec![addr(4750), addr(4751), addr(4752)];
        let seeds = vec![addr(4750)];

        // Mixing the static table with seeds is a plan-time error.
        let err = validate_peer_table(0, 3, &table, &seeds, None).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");

        // Seeds alone are fine — the table is learned, not declared…
        assert!(validate_peer_table(2, 3, &[], &seeds, Some(addr(4752))).is_ok());
        // …but the seed addresses themselves must be dialable,
        let bad_seed = vec!["127.0.0.1:0".parse().unwrap()];
        assert!(validate_peer_table(2, 3, &[], &bad_seed, None).is_err());
        // and the usual id-range checks still apply.
        assert!(validate_peer_table(9, 3, &[], &seeds, None).is_err());
    }
}
