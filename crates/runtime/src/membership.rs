//! The membership plane: seed discovery, gossiped address books, and
//! replacement-node adoption.
//!
//! PR 9 made a crashed worker able to resume **at the same address**; this
//! module removes the "same address" constraint. Instead of a hand-enumerated
//! static `--peers` table, a node starts with one or more **seed** addresses,
//! dials any live seed, and learns the full `server id → address` book via a
//! push–pull exchange of `GHHM` membership messages. After bootstrap the book
//! keeps converging through anti-entropy gossip (tag-6 [`crate::frame::Frame`]
//! deltas piggybacked on the resilient fabric's ack cadence), so a
//! *replacement* process started with the same `--server-id` on a **fresh
//! address** can announce itself with a bumped incarnation and the survivors'
//! reconnect loops redial the new address — no operator surgery.
//!
//! ## The `GHHM` message
//!
//! One fixed-header, variable-entry encoding serves three roles (announce,
//! snapshot reply, gossip delta) and two carriers: raw on a fresh TCP
//! connection during bootstrap (magic-first, so listeners can dispatch
//! between `GHH1`/`GHHR`/`GHHM` with a 4-byte `peek`), and verbatim as the
//! payload of a tag-6 frame on an established link.
//!
//! ```text
//! b"GHHM" | u8 kind | u32 LE cluster_size | u32 LE sender |
//! u64 LE book_version | u16 LE count | count × entry
//!   kind 1 announce  : "merge my book, reply with yours"
//!   kind 2 snapshot  : the reply to an announce
//!   kind 3 delta     : gossip on an established link (no reply)
//!   entry (27 bytes) : u32 LE id | u32 LE incarnation | u8 family (4|6) |
//!                      16B ip (v4 in the first 4 bytes) | u16 LE port
//! ```
//!
//! ## Incarnations
//!
//! Every book entry is `(addr, incarnation)`. Merges are last-writer-wins on
//! incarnation; at equal incarnation the numerically larger address wins — an
//! arbitrary but *commutative* tie-break, so every merge order converges on
//! the same book. A replacement claims its id by re-announcing its own
//! address with an incarnation strictly above whatever the cluster currently
//! holds for that id ([`AddressBook::claim_own`]).
//!
//! The byte-level layout and the adoption sequence are specified normatively
//! in `docs/WIRE.md` §10; this module is the reference implementation.

use graphh_graph::ids::ServerId;
use graphh_obs::{global_counters, Counter};
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// First bytes of every membership message; listeners `peek` these four
/// bytes to dispatch between the `GHH1`, `GHHR` and `GHHM` families.
pub const MEMBERSHIP_MAGIC: [u8; 4] = *b"GHHM";

/// Fixed header: magic (4) + kind (1) + cluster_size (4) + sender (4) +
/// book_version (8) + entry count (2).
pub const MEMBERSHIP_HEADER_LEN: usize = 23;

/// One address-book entry on the wire: id (4) + incarnation (4) +
/// family (1) + ip (16) + port (2).
pub const MEMBERSHIP_ENTRY_LEN: usize = 27;

const KIND_ANNOUNCE: u8 = 1;
const KIND_SNAPSHOT: u8 = 2;
const KIND_DELTA: u8 = 3;

/// Read-timeout cap for one membership exchange leg; a stalled or hostile
/// peer must not pin the bootstrap loop.
const EXCHANGE_READ_CAP: Duration = Duration::from_secs(2);

/// Connect timeout for one bootstrap dial; dead seeds are normal and must
/// fail fast so the loop can try the next source.
const EXCHANGE_CONNECT_CAP: Duration = Duration::from_millis(250);

/// What a membership message is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipKind {
    /// "Here is my book; merge it and reply with yours." Sent by the
    /// bootstrap dialer on a fresh connection.
    Announce,
    /// The full-book reply to an announce.
    Snapshot,
    /// A gossip push on an established link (tag-6 frame payload); no reply.
    Delta,
}

impl MembershipKind {
    fn to_wire(self) -> u8 {
        match self {
            MembershipKind::Announce => KIND_ANNOUNCE,
            MembershipKind::Snapshot => KIND_SNAPSHOT,
            MembershipKind::Delta => KIND_DELTA,
        }
    }
}

/// One `server id → (address, incarnation)` binding as carried by a
/// membership message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEntry {
    /// The server id the binding is for.
    pub id: ServerId,
    /// Last-writer-wins version of the binding.
    pub incarnation: u32,
    /// Where that server's listener accepts connections.
    pub addr: SocketAddr,
}

/// A decoded membership message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipMsg {
    /// What the message is for.
    pub kind: MembershipKind,
    /// The sender's `num_servers`; receivers reject a mismatch.
    pub cluster_size: u32,
    /// The sending server.
    pub sender: ServerId,
    /// The sender's book version when the message was built (diagnostic;
    /// versions are per-node counters, not comparable across nodes).
    pub book_version: u64,
    /// The bindings the sender knows.
    pub entries: Vec<WireEntry>,
}

impl MembershipMsg {
    /// Append the wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MEMBERSHIP_MAGIC);
        out.push(self.kind.to_wire());
        out.extend_from_slice(&self.cluster_size.to_le_bytes());
        out.extend_from_slice(&self.sender.to_le_bytes());
        out.extend_from_slice(&self.book_version.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for entry in &self.entries {
            out.extend_from_slice(&entry.id.to_le_bytes());
            out.extend_from_slice(&entry.incarnation.to_le_bytes());
            let mut ip = [0u8; 16];
            match entry.addr.ip() {
                IpAddr::V4(v4) => {
                    out.push(4);
                    ip[..4].copy_from_slice(&v4.octets());
                }
                IpAddr::V6(v6) => {
                    out.push(6);
                    ip.copy_from_slice(&v6.octets());
                }
            }
            out.extend_from_slice(&ip);
            out.extend_from_slice(&entry.addr.port().to_le_bytes());
        }
    }

    /// The wire encoding as a fresh vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(MEMBERSHIP_HEADER_LEN + self.entries.len() * MEMBERSHIP_ENTRY_LEN);
        self.encode_into(&mut out);
        out
    }

    /// Decode a complete membership message.
    ///
    /// Rejects (never panics on) every malformed input: wrong magic, unknown
    /// kind, a length that disagrees with the entry count, out-of-range ids,
    /// duplicate ids, a bad address family, or a zero port.
    pub fn decode(bytes: &[u8]) -> Result<MembershipMsg, String> {
        if bytes.len() < MEMBERSHIP_HEADER_LEN {
            return Err(format!(
                "membership message of {} bytes is shorter than the {MEMBERSHIP_HEADER_LEN}-byte header",
                bytes.len()
            ));
        }
        if bytes[..4] != MEMBERSHIP_MAGIC {
            return Err(format!(
                "bad membership magic {:02x?} (expected {:02x?})",
                &bytes[..4],
                MEMBERSHIP_MAGIC
            ));
        }
        let kind = match bytes[4] {
            KIND_ANNOUNCE => MembershipKind::Announce,
            KIND_SNAPSHOT => MembershipKind::Snapshot,
            KIND_DELTA => MembershipKind::Delta,
            other => return Err(format!("unknown membership kind {other}")),
        };
        let cluster_size = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
        let sender = ServerId::from_le_bytes([bytes[9], bytes[10], bytes[11], bytes[12]]);
        let book_version = u64::from_le_bytes([
            bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19], bytes[20],
        ]);
        let count = u16::from_le_bytes([bytes[21], bytes[22]]) as usize;
        if cluster_size == 0 {
            return Err("membership message claims a zero-server cluster".into());
        }
        if sender >= cluster_size {
            return Err(format!(
                "membership sender {sender} out of range for a {cluster_size}-server cluster"
            ));
        }
        if count > cluster_size as usize {
            return Err(format!(
                "membership message carries {count} entries for a {cluster_size}-server cluster"
            ));
        }
        let expected = MEMBERSHIP_HEADER_LEN + count * MEMBERSHIP_ENTRY_LEN;
        if bytes.len() != expected {
            return Err(format!(
                "membership message with {count} entries must be {expected} bytes, got {}",
                bytes.len()
            ));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = MEMBERSHIP_HEADER_LEN + i * MEMBERSHIP_ENTRY_LEN;
            let e = &bytes[at..at + MEMBERSHIP_ENTRY_LEN];
            let id = ServerId::from_le_bytes([e[0], e[1], e[2], e[3]]);
            let incarnation = u32::from_le_bytes([e[4], e[5], e[6], e[7]]);
            if id >= cluster_size {
                return Err(format!(
                    "membership entry for server {id} out of range for a {cluster_size}-server cluster"
                ));
            }
            if entries.iter().any(|w: &WireEntry| w.id == id) {
                return Err(format!("membership message repeats server {id}"));
            }
            let ip: [u8; 16] = e[9..25].try_into().expect("sliced to 16 bytes");
            let ip = match e[8] {
                4 => {
                    if ip[4..] != [0u8; 12] {
                        return Err("v4 membership entry has nonzero padding".into());
                    }
                    IpAddr::V4(Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3]))
                }
                6 => IpAddr::V6(Ipv6Addr::from(ip)),
                other => return Err(format!("unknown membership address family {other}")),
            };
            let port = u16::from_le_bytes([e[25], e[26]]);
            if port == 0 {
                return Err(format!("membership entry for server {id} has port 0"));
            }
            entries.push(WireEntry {
                id,
                incarnation,
                addr: SocketAddr::new(ip, port),
            });
        }
        Ok(MembershipMsg {
            kind,
            cluster_size,
            sender,
            book_version,
            entries,
        })
    }

    /// Read one membership message from a blocking stream: the fixed header
    /// first, then exactly `count` entries.
    pub fn read_from<R: Read>(reader: &mut R) -> io::Result<MembershipMsg> {
        let mut header = [0u8; MEMBERSHIP_HEADER_LEN];
        reader.read_exact(&mut header)?;
        let count = u16::from_le_bytes([header[21], header[22]]) as usize;
        let mut bytes = header.to_vec();
        bytes.resize(MEMBERSHIP_HEADER_LEN + count * MEMBERSHIP_ENTRY_LEN, 0);
        reader.read_exact(&mut bytes[MEMBERSHIP_HEADER_LEN..])?;
        Self::decode(&bytes).map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
    }
}

/// One slot of the [`AddressBook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BookEntry {
    /// Where the server's listener accepts connections.
    pub addr: SocketAddr,
    /// Last-writer-wins version of the binding.
    pub incarnation: u32,
}

/// The versioned `server id → (address, incarnation)` table every node keeps.
///
/// Merges are last-writer-wins on incarnation with a commutative tie-break
/// (at equal incarnation the numerically larger address wins), so the book is
/// a state-based CRDT: any merge order over any gossip topology converges on
/// the same table. `version` is a **local** change counter — it bumps once
/// per mutating call and exists so gossip emitters can compare "anything new
/// since I last pushed?" with one atomic load; it is never compared across
/// nodes.
#[derive(Debug, Clone)]
pub struct AddressBook {
    entries: Vec<Option<BookEntry>>,
    version: u64,
}

impl AddressBook {
    /// An empty book with `num_servers` slots.
    pub fn new(num_servers: usize) -> Self {
        AddressBook {
            entries: vec![None; num_servers],
            version: 0,
        }
    }

    /// Number of slots (the cluster size).
    pub fn num_servers(&self) -> usize {
        self.entries.len()
    }

    /// Local change counter; bumps once per mutating call that changed
    /// anything.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The binding for `id`, if known.
    pub fn get(&self, id: ServerId) -> Option<BookEntry> {
        self.entries.get(id as usize).copied().flatten()
    }

    /// True once every slot is bound.
    pub fn is_complete(&self) -> bool {
        self.entries.iter().all(|e| e.is_some())
    }

    /// Would `(addr, incarnation)` replace the current binding for `id`?
    /// Last-writer-wins on incarnation; at equal incarnation the larger
    /// address wins (commutative tie-break), and an identical binding is not
    /// a change.
    fn wins(&self, e: WireEntry) -> bool {
        match self.entries[e.id as usize] {
            None => true,
            Some(cur) => {
                e.incarnation > cur.incarnation
                    || (e.incarnation == cur.incarnation && e.addr > cur.addr)
            }
        }
    }

    /// Merge one entry; returns true (and bumps the version) when the
    /// binding changed.
    pub fn observe(&mut self, e: WireEntry) -> bool {
        if e.id as usize >= self.entries.len() || !self.wins(e) {
            return false;
        }
        self.entries[e.id as usize] = Some(BookEntry {
            addr: e.addr,
            incarnation: e.incarnation,
        });
        self.version += 1;
        true
    }

    /// Merge a batch of entries; returns true when anything changed.
    pub fn merge(&mut self, entries: &[WireEntry]) -> bool {
        let mut changed = false;
        for &e in entries {
            changed |= self.observe(e);
        }
        changed
    }

    /// Ensure this node's own slot binds `addr`, bumping the incarnation
    /// above any conflicting binding (a dead predecessor at another address,
    /// or a stale gossip echo of one). Returns true when the slot changed —
    /// the caller must then re-announce, or the cluster keeps believing the
    /// old address.
    pub fn claim_own(&mut self, id: ServerId, addr: SocketAddr) -> bool {
        match self.entries[id as usize] {
            Some(cur) if cur.addr == addr => false,
            Some(cur) => {
                self.entries[id as usize] = Some(BookEntry {
                    addr,
                    incarnation: cur.incarnation + 1,
                });
                self.version += 1;
                true
            }
            None => {
                self.entries[id as usize] = Some(BookEntry {
                    addr,
                    incarnation: 0,
                });
                self.version += 1;
                true
            }
        }
    }

    /// Every bound slot as wire entries, in id order.
    pub fn wire_entries(&self) -> Vec<WireEntry> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(id, e)| {
                e.map(|e| WireEntry {
                    id: id as ServerId,
                    incarnation: e.incarnation,
                    addr: e.addr,
                })
            })
            .collect()
    }

    /// The complete `id → addr` table, in id order. Errors while any slot is
    /// still unbound.
    pub fn peer_addrs(&self) -> Result<Vec<SocketAddr>, String> {
        self.entries
            .iter()
            .enumerate()
            .map(|(id, e)| {
                e.map(|e| e.addr)
                    .ok_or_else(|| format!("address book has no entry for server {id}"))
            })
            .collect()
    }
}

/// The shared, thread-safe membership state of one node: the address book
/// plus the counters the observability plane exports.
///
/// The `version` atomic mirrors the book's version so steady-state cadence
/// checks ("anything to gossip?") are one relaxed load — no lock, no
/// allocation — keeping the fault-free resilient path inside the
/// zero-allocation budget.
pub struct MembershipState {
    id: ServerId,
    num_servers: usize,
    own_addr: SocketAddr,
    book: Mutex<AddressBook>,
    version: AtomicU64,
    announces: Counter,
    gossip_deltas: Counter,
    book_version: Counter,
    adoptions: Counter,
}

impl std::fmt::Debug for MembershipState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MembershipState")
            .field("id", &self.id)
            .field("num_servers", &self.num_servers)
            .field("own_addr", &self.own_addr)
            .field("version", &self.version.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A cheap, cloneable handle to one node's [`MembershipState`].
#[derive(Debug, Clone)]
pub struct MembershipHandle(pub Arc<MembershipState>);

impl std::ops::Deref for MembershipHandle {
    type Target = MembershipState;
    fn deref(&self) -> &MembershipState {
        &self.0
    }
}

impl MembershipHandle {
    /// Fresh state with an empty book except this node's own claim.
    pub fn new(id: ServerId, num_servers: usize, own_addr: SocketAddr) -> MembershipHandle {
        let registry = global_counters();
        let mut book = AddressBook::new(num_servers);
        book.claim_own(id, own_addr);
        let version = book.version();
        let state = MembershipState {
            id,
            num_servers,
            own_addr,
            book: Mutex::new(book),
            version: AtomicU64::new(version),
            announces: registry.counter("membership.announces"),
            gossip_deltas: registry.counter("membership.gossip_deltas"),
            book_version: registry.counter("membership.book_version"),
            adoptions: registry.counter("membership.adoptions"),
        };
        state.book_version.record_max(version);
        MembershipHandle(Arc::new(state))
    }
}

impl MembershipState {
    /// This node's server id.
    pub fn own_id(&self) -> ServerId {
        self.id
    }

    /// The address this node advertises (its listener address).
    pub fn own_addr(&self) -> SocketAddr {
        self.own_addr
    }

    /// This node's current incarnation (bumps when it claims its id over a
    /// predecessor's binding).
    pub fn own_incarnation(&self) -> u32 {
        self.lock_book().get(self.id).map_or(0, |e| e.incarnation)
    }

    /// Current book version — one relaxed atomic load, safe on the
    /// steady-state hot path.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// The recorded address for `peer`, if known.
    pub fn peer_addr(&self, peer: ServerId) -> Option<SocketAddr> {
        self.lock_book().get(peer).map(|e| e.addr)
    }

    fn lock_book(&self) -> MutexGuard<'_, AddressBook> {
        match self.book.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Build a full-book message of the given kind.
    pub fn snapshot_msg(&self, kind: MembershipKind) -> MembershipMsg {
        let book = self.lock_book();
        MembershipMsg {
            kind,
            cluster_size: self.num_servers as u32,
            sender: self.id,
            book_version: book.version(),
            entries: book.wire_entries(),
        }
    }

    /// The encoded tag-6 gossip payload (a full-book delta). Only called
    /// when the version moved, so the allocation never lands on the
    /// fault-free steady-state path.
    pub fn delta_payload(&self) -> Vec<u8> {
        self.gossip_deltas.incr();
        self.snapshot_msg(MembershipKind::Delta).encode()
    }

    /// Merge a received message into the book. Re-claims this node's own
    /// binding afterwards (a stale echo of a predecessor must never stick),
    /// counts adoptions (the sender moved its *own* id to a new address over
    /// a live binding), and returns [`MergeOutcome`] flags the caller uses
    /// to decide whether to re-gossip or re-announce.
    pub fn merge_msg(&self, msg: &MembershipMsg) -> Result<MergeOutcome, String> {
        if msg.cluster_size as usize != self.num_servers {
            return Err(format!(
                "membership message for a {}-server cluster, this cluster has {}",
                msg.cluster_size, self.num_servers
            ));
        }
        let mut book = self.lock_book();
        let mut adopted = false;
        let mut changed = false;
        for &e in &msg.entries {
            let previous = book.get(e.id);
            if book.observe(e) {
                changed = true;
                if e.id == msg.sender && previous.is_some_and(|p| p.addr != e.addr) {
                    adopted = true;
                }
            }
        }
        let reclaimed = book.claim_own(self.id, self.own_addr);
        let version = book.version();
        drop(book);
        self.version.store(version, Ordering::Relaxed);
        self.book_version.record_max(version);
        if adopted {
            self.adoptions.incr();
        }
        Ok(MergeOutcome {
            changed: changed || reclaimed,
            reclaimed,
        })
    }

    /// Serve one bootstrap connection: read the announce, merge it, reply
    /// with a snapshot of the merged book. The stream is closed by the
    /// caller dropping it.
    pub fn serve_stream(&self, stream: &mut TcpStream) -> io::Result<MergeOutcome> {
        stream.set_read_timeout(Some(EXCHANGE_READ_CAP))?;
        let msg = MembershipMsg::read_from(stream)?;
        if msg.kind != MembershipKind::Announce {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a membership announce, got {:?}", msg.kind),
            ));
        }
        let outcome = self
            .merge_msg(&msg)
            .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?;
        self.announces.incr();
        let reply = self.snapshot_msg(MembershipKind::Snapshot);
        stream.write_all(&reply.encode())?;
        stream.flush()?;
        Ok(outcome)
    }

    /// Dial `src` and run one push–pull exchange: announce the full book,
    /// merge the snapshot reply.
    fn exchange(&self, src: SocketAddr) -> io::Result<MergeOutcome> {
        let mut stream = TcpStream::connect_timeout(&src, EXCHANGE_CONNECT_CAP)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(EXCHANGE_READ_CAP))?;
        let announce = self.snapshot_msg(MembershipKind::Announce);
        stream.write_all(&announce.encode())?;
        stream.flush()?;
        let reply = MembershipMsg::read_from(&mut stream)?;
        if reply.kind != MembershipKind::Snapshot {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a membership snapshot, got {:?}", reply.kind),
            ));
        }
        self.merge_msg(&reply)
            .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
    }
}

/// What a merge did, for the caller's re-gossip / re-announce decision.
#[derive(Debug, Clone, Copy)]
pub struct MergeOutcome {
    /// The book changed (including by the post-merge own-claim): gossip
    /// emitters should push a delta.
    pub changed: bool,
    /// The merge tried to overwrite this node's own binding and the claim
    /// was re-asserted with a bumped incarnation: the node must re-announce.
    pub reclaimed: bool,
}

/// What seed discovery hands to the establish phase.
#[derive(Debug)]
pub struct MembershipView {
    /// The live membership state; threaded into the resilient transports so
    /// reconnect loops consult the book and gossip keeps it converging.
    pub handle: MembershipHandle,
    /// The complete `id → addr` table learned from the seeds, in id order
    /// (this node's own slot included) — a drop-in replacement for the
    /// static `--peers` table.
    pub peer_addrs: Vec<SocketAddr>,
    /// This node's incarnation after bootstrap (> 0 means it adopted its id
    /// from a dead predecessor at another address).
    pub incarnation: u32,
    /// Connections accepted during bootstrap that were **not** membership
    /// exchanges (a faster peer already dialing `GHH1`/`GHHR`); their
    /// handshake bytes are unconsumed. The plain establish path feeds them
    /// through its normal accept handling; the resilient path drops them
    /// (its dialers redial on failure).
    pub early: Vec<TcpStream>,
}

/// Bootstrap the address book from seed nodes.
///
/// Loops until the book is complete *and* this node's latest own-claim has
/// been pushed to at least one live source: serve inbound `GHHM` exchanges
/// on `listener` (stashing non-`GHHM` connections for the caller), dial
/// every known source (the seeds plus every learned peer address) with a
/// push–pull exchange, and re-assert the own claim after every merge. A
/// replacement node discovers its predecessor's binding in the first
/// snapshot it pulls, re-claims with a bumped incarnation, and the forced
/// re-announce spreads the adoption.
///
/// `listener` is left in nonblocking mode (the establish phases set their
/// own modes). Sources equal to this node's own address are skipped, so a
/// node may be (or list) its own seed.
pub fn discover(
    id: ServerId,
    num_servers: usize,
    listener: &TcpListener,
    seeds: &[SocketAddr],
    timeout: Duration,
) -> io::Result<MembershipView> {
    if seeds.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "seed discovery needs at least one --seed address",
        ));
    }
    let own_addr = listener.local_addr()?;
    if own_addr.ip().is_unspecified() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "cannot advertise wildcard listener address {own_addr}; \
                 --listen must be a peer-dialable address when using --seed"
            ),
        ));
    }
    listener.set_nonblocking(true)?;
    let handle = MembershipHandle::new(id, num_servers, own_addr);
    let mut early: Vec<TcpStream> = Vec::new();
    let mut needs_push = true;
    let deadline = Instant::now() + timeout;
    loop {
        // Serve whoever is dialing us right now. Peeking leaves the
        // handshake bytes in place for non-GHHM connections.
        loop {
            match listener.accept() {
                Ok((mut stream, _)) => match peek_magic(&stream) {
                    Ok(magic) if magic == MEMBERSHIP_MAGIC => {
                        let _ = handle.serve_stream(&mut stream);
                    }
                    Ok(_) => {
                        let _ = stream.set_read_timeout(None);
                        early.push(stream);
                    }
                    Err(_) => {} // stray probe; drop it
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }

        {
            let book = handle.lock_book();
            if book.is_complete() && !needs_push {
                let peer_addrs = book.peer_addrs().map_err(io::Error::other)?;
                let incarnation = book.get(id).map_or(0, |e| e.incarnation);
                drop(book);
                return Ok(MembershipView {
                    handle,
                    peer_addrs,
                    incarnation,
                    early,
                });
            }
        }

        // Dial every known source once: the seeds, plus every address the
        // book already learned (a seed may only know part of the cluster).
        let mut sources: Vec<SocketAddr> = seeds.to_vec();
        {
            let book = handle.lock_book();
            sources.extend(book.wire_entries().iter().map(|e| e.addr));
        }
        sources.sort();
        sources.dedup();
        sources.retain(|&s| s != own_addr);
        for src in sources {
            if let Ok(outcome) = handle.exchange(src) {
                needs_push = outcome.reclaimed;
            }
        }

        if Instant::now() >= deadline {
            let book = handle.lock_book();
            let known: Vec<ServerId> = book.wire_entries().iter().map(|e| e.id).collect();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "seed discovery for server {id} timed out after {timeout:?}; \
                     learned addresses for servers {known:?} of {num_servers}"
                ),
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Peek the first four bytes of an accepted connection without consuming
/// them, under a short read timeout so a silent prober cannot stall the
/// accept loop.
pub(crate) fn peek_magic(stream: &TcpStream) -> io::Result<[u8; 4]> {
    stream.set_read_timeout(Some(EXCHANGE_READ_CAP))?;
    let mut magic = [0u8; 4];
    let deadline = Instant::now() + EXCHANGE_READ_CAP;
    loop {
        match stream.peek(&mut magic) {
            Ok(n) if n >= 4 => return Ok(magic),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before any handshake byte",
                ))
            }
            Ok(_) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "handshake magic not received in time",
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "handshake magic not received in time",
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Exponential redial backoff with deterministic, seeded jitter.
///
/// Attempt `k` sleeps a uniform-ish draw from `[d/2, d]` where
/// `d = min(base · 2^k, cap)` — exponential growth keeps a dead peer from
/// being hammered, the jitter keeps a whole cluster's redial storms from
/// synchronizing, and the deterministic (xorshift64, seeded from the two
/// server ids) draw keeps chaos schedules reproducible. The overall redial
/// window is still bounded by the caller's reconnect deadline.
#[derive(Debug, Clone)]
pub struct ReconnectBackoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl ReconnectBackoff {
    /// Exponent past which `base · 2^k` is always past any sane cap;
    /// growth stops here to avoid overflow.
    const MAX_SHIFT: u32 = 20;

    /// A backoff schedule starting at `base`, capped at `cap`, seeded
    /// arbitrarily (use [`Self::seeded_for`] for the canonical per-link
    /// seed).
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        ReconnectBackoff {
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base).max(Duration::from_millis(1)),
            attempt: 0,
            rng: seed | 1, // xorshift64 must not start at 0
        }
    }

    /// The canonical schedule for the link `own → peer`: every link in the
    /// cluster jitters differently, but the same link always jitters the
    /// same way.
    pub fn seeded_for(base: Duration, cap: Duration, own: ServerId, peer: ServerId) -> Self {
        let seed = 0x9e37_79b9_7f4a_7c15u64
            ^ ((own as u64) << 32)
            ^ (peer as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
        Self::new(base, cap, seed)
    }

    /// The delay before the next redial attempt (advances the schedule).
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(Self::MAX_SHIFT);
        let uncapped = self
            .base
            .checked_mul(1u32 << shift)
            .unwrap_or(Duration::MAX);
        let d = uncapped.min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        // xorshift64
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let half = d / 2;
        let jitter_nanos = (half.as_nanos() as u64).saturating_add(1);
        half + Duration::from_nanos(self.rng % jitter_nanos)
    }

    /// Restart the schedule (the link came back up).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), port)
    }

    fn entry(id: ServerId, incarnation: u32, port: u16) -> WireEntry {
        WireEntry {
            id,
            incarnation,
            addr: addr(port),
        }
    }

    #[test]
    fn membership_message_roundtrips() {
        let msg = MembershipMsg {
            kind: MembershipKind::Snapshot,
            cluster_size: 4,
            sender: 2,
            book_version: 77,
            entries: vec![
                entry(0, 0, 9000),
                entry(1, 3, 9001),
                WireEntry {
                    id: 3,
                    incarnation: 1,
                    addr: SocketAddr::new(IpAddr::V6(Ipv6Addr::LOCALHOST), 9003),
                },
            ],
        };
        let bytes = msg.encode();
        assert_eq!(
            bytes.len(),
            MEMBERSHIP_HEADER_LEN + 3 * MEMBERSHIP_ENTRY_LEN
        );
        assert_eq!(MembershipMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn empty_book_roundtrips() {
        let msg = MembershipMsg {
            kind: MembershipKind::Announce,
            cluster_size: 3,
            sender: 0,
            book_version: 0,
            entries: vec![],
        };
        assert_eq!(MembershipMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn decode_rejects_structural_corruption() {
        let good = MembershipMsg {
            kind: MembershipKind::Delta,
            cluster_size: 3,
            sender: 1,
            book_version: 5,
            entries: vec![entry(0, 0, 9000), entry(1, 1, 9001)],
        }
        .encode();

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(MembershipMsg::decode(&bad).is_err());
        // Unknown kind.
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(MembershipMsg::decode(&bad).is_err());
        // Truncated and extended.
        assert!(MembershipMsg::decode(&good[..good.len() - 1]).is_err());
        let mut bad = good.clone();
        bad.push(0);
        assert!(MembershipMsg::decode(&bad).is_err());
        // Sender out of range.
        let mut bad = good.clone();
        bad[9] = 7;
        assert!(MembershipMsg::decode(&bad).is_err());
        // Entry id out of range.
        let mut bad = good.clone();
        bad[MEMBERSHIP_HEADER_LEN] = 200;
        assert!(MembershipMsg::decode(&bad).is_err());
        // Duplicate entry id.
        let mut bad = good.clone();
        bad[MEMBERSHIP_HEADER_LEN] = 1;
        assert!(MembershipMsg::decode(&bad).is_err());
        // Bad address family.
        let mut bad = good.clone();
        bad[MEMBERSHIP_HEADER_LEN + 8] = 5;
        assert!(MembershipMsg::decode(&bad).is_err());
        // Zero port.
        let mut bad = good.clone();
        bad[MEMBERSHIP_HEADER_LEN + 25] = 0;
        bad[MEMBERSHIP_HEADER_LEN + 26] = 0;
        assert!(MembershipMsg::decode(&bad).is_err());
        // Zero-server cluster.
        let mut bad = good.clone();
        bad[5..9].copy_from_slice(&0u32.to_le_bytes());
        assert!(MembershipMsg::decode(&bad).is_err());
    }

    /// Mirror of the resume-hello fuzz: no mutation of a valid encoding may
    /// panic, and every decode returns cleanly (`Ok` only for the pristine
    /// bytes).
    #[test]
    fn membership_decode_fuzz_errors_never_panics() {
        let good = MembershipMsg {
            kind: MembershipKind::Snapshot,
            cluster_size: 5,
            sender: 4,
            book_version: u64::MAX,
            entries: vec![
                entry(0, 7, 9000),
                entry(2, 0, 9002),
                WireEntry {
                    id: 4,
                    incarnation: u32::MAX,
                    addr: SocketAddr::new(IpAddr::V6(Ipv6Addr::UNSPECIFIED), 1),
                },
            ],
        }
        .encode();

        // Every truncation.
        for len in 0..good.len() {
            let slice = good[..len].to_vec();
            let res = std::panic::catch_unwind(|| MembershipMsg::decode(&slice));
            assert!(res.expect("decode must not panic").is_err());
        }
        // Doubled.
        let mut doubled = good.clone();
        doubled.extend_from_slice(&good);
        assert!(MembershipMsg::decode(&doubled).is_err());
        // Randomized corruptions: flip 1–4 bytes at xorshift positions.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let mut bytes = good.clone();
            let flips = 1 + (rand() % 4) as usize;
            for _ in 0..flips {
                let at = (rand() % bytes.len() as u64) as usize;
                bytes[at] ^= (rand() % 255 + 1) as u8;
            }
            if bytes == good {
                continue;
            }
            let res = std::panic::catch_unwind(|| MembershipMsg::decode(&bytes));
            let decoded = res.expect("corrupt membership bytes must never panic");
            // A flip confined to the incarnation/version/address fields can
            // still be a *valid* (different) message; what matters is that
            // decode returns instead of panicking and never fabricates
            // out-of-contract values.
            if let Ok(msg) = decoded {
                assert!(msg.sender < msg.cluster_size);
                assert!(msg.entries.len() <= msg.cluster_size as usize);
            }
        }
    }

    #[test]
    fn book_merge_is_last_writer_wins_on_incarnation() {
        let mut book = AddressBook::new(3);
        assert!(book.observe(entry(1, 0, 9001)));
        assert_eq!(book.get(1).unwrap().addr, addr(9001));
        // Same incarnation, same addr: no change.
        assert!(!book.observe(entry(1, 0, 9001)));
        // Higher incarnation wins.
        assert!(book.observe(entry(1, 2, 9100)));
        assert_eq!(book.get(1).unwrap().addr, addr(9100));
        assert_eq!(book.get(1).unwrap().incarnation, 2);
        // Lower incarnation loses.
        assert!(!book.observe(entry(1, 1, 9200)));
        assert_eq!(book.get(1).unwrap().addr, addr(9100));
        // Out-of-range id is ignored.
        assert!(!book.observe(entry(9, 0, 9999)));
    }

    #[test]
    fn equal_incarnation_tie_break_is_commutative() {
        let a = entry(0, 1, 9001);
        let b = entry(0, 1, 9002);
        let mut ab = AddressBook::new(1);
        ab.observe(a);
        ab.observe(b);
        let mut ba = AddressBook::new(1);
        ba.observe(b);
        ba.observe(a);
        assert_eq!(ab.get(0), ba.get(0));
        assert_eq!(ab.get(0).unwrap().addr, addr(9002)); // larger addr wins
    }

    #[test]
    fn merge_order_converges_to_the_same_book() {
        let updates = [
            entry(0, 0, 9000),
            entry(1, 0, 9001),
            entry(1, 1, 9101),
            entry(2, 0, 9002),
            entry(2, 0, 9102),
            entry(0, 2, 9200),
        ];
        // Apply in two different orders; the final tables must agree.
        let mut fwd = AddressBook::new(3);
        fwd.merge(&updates);
        let mut rev = AddressBook::new(3);
        let mut reversed = updates;
        reversed.reverse();
        rev.merge(&reversed);
        for id in 0..3 {
            assert_eq!(fwd.get(id), rev.get(id), "server {id} diverged");
        }
    }

    #[test]
    fn claim_own_bumps_over_a_predecessor() {
        let mut book = AddressBook::new(2);
        // Fresh claim starts at incarnation 0.
        assert!(book.claim_own(1, addr(9001)));
        assert_eq!(book.get(1).unwrap().incarnation, 0);
        // Re-claiming the same address is a no-op.
        assert!(!book.claim_own(1, addr(9001)));
        // A predecessor's binding arrives with a higher incarnation…
        assert!(book.observe(entry(1, 4, 9500)));
        // …and the claim takes it back with a strictly higher one.
        assert!(book.claim_own(1, addr(9001)));
        let e = book.get(1).unwrap();
        assert_eq!(e.addr, addr(9001));
        assert_eq!(e.incarnation, 5);
    }

    #[test]
    fn version_bumps_only_on_change() {
        let mut book = AddressBook::new(2);
        assert_eq!(book.version(), 0);
        book.observe(entry(0, 0, 9000));
        assert_eq!(book.version(), 1);
        book.observe(entry(0, 0, 9000)); // no change
        assert_eq!(book.version(), 1);
        book.observe(entry(1, 0, 9001));
        assert_eq!(book.version(), 2);
        assert!(book.is_complete());
    }

    #[test]
    fn merge_msg_counts_adoptions_and_reclaims_own_slot() {
        let state = MembershipHandle::new(0, 3, addr(9000));
        // Peer 1 announces itself and peer 2.
        let out = state
            .merge_msg(&MembershipMsg {
                kind: MembershipKind::Announce,
                cluster_size: 3,
                sender: 1,
                book_version: 1,
                entries: vec![entry(1, 0, 9001), entry(2, 0, 9002)],
            })
            .unwrap();
        assert!(out.changed);
        assert!(!out.reclaimed);
        // A replacement for server 1 announces from a new address.
        let out = state
            .merge_msg(&MembershipMsg {
                kind: MembershipKind::Announce,
                cluster_size: 3,
                sender: 1,
                book_version: 2,
                entries: vec![entry(1, 1, 9101)],
            })
            .unwrap();
        assert!(out.changed);
        assert_eq!(state.peer_addr(1), Some(addr(9101)));
        // A stale echo trying to move *our* id is re-claimed with a bump.
        let out = state
            .merge_msg(&MembershipMsg {
                kind: MembershipKind::Delta,
                cluster_size: 3,
                sender: 2,
                book_version: 9,
                entries: vec![entry(0, 3, 9900)],
            })
            .unwrap();
        assert!(out.reclaimed);
        assert_eq!(state.peer_addr(0), Some(addr(9000)));
        assert_eq!(state.own_incarnation(), 4);
        // Cluster-size mismatch is rejected.
        assert!(state
            .merge_msg(&MembershipMsg {
                kind: MembershipKind::Delta,
                cluster_size: 4,
                sender: 1,
                book_version: 1,
                entries: vec![],
            })
            .is_err());
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut a = ReconnectBackoff::seeded_for(base, cap, 0, 2);
        let mut b = ReconnectBackoff::seeded_for(base, cap, 0, 2);
        let mut c = ReconnectBackoff::seeded_for(base, cap, 1, 2);
        let mut saw_different = false;
        for k in 0..12 {
            let da = a.next_delay();
            let db = b.next_delay();
            // Same link, same seed: identical schedule.
            assert_eq!(da, db, "attempt {k} diverged between equal seeds");
            // Jitter stays inside [d/2, d] for d = min(base·2^k, cap).
            let d = base
                .checked_mul(1u32 << k.min(20))
                .unwrap_or(Duration::MAX)
                .min(cap);
            assert!(da >= d / 2, "attempt {k}: {da:?} below {:?}", d / 2);
            assert!(da <= d, "attempt {k}: {da:?} above cap {d:?}");
            saw_different |= c.next_delay() != da;
        }
        // Different links jitter differently (somewhere in 12 draws).
        assert!(saw_different, "distinct seeds produced identical schedules");
        // Reset restarts the exponential schedule at the base.
        a.reset();
        assert!(a.next_delay() <= base);
    }

    #[test]
    fn discover_converges_a_three_node_cluster_from_one_seed() {
        let listeners: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let seed = listeners[0].local_addr().unwrap();
        let expected: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let views: Vec<MembershipView> = std::thread::scope(|scope| {
            let handles: Vec<_> = listeners
                .iter()
                .enumerate()
                .map(|(id, listener)| {
                    scope.spawn(move || {
                        discover(
                            id as ServerId,
                            3,
                            listener,
                            &[seed],
                            Duration::from_secs(10),
                        )
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for view in &views {
            assert_eq!(view.peer_addrs, expected);
            assert_eq!(view.incarnation, 0);
            assert!(view.early.is_empty());
        }
    }

    #[test]
    fn discover_adopts_a_dead_id_at_a_new_address() {
        // A standing "survivor" serving GHHM on its listener, already
        // holding a complete 2-server book with the dead predecessor's
        // address for server 1.
        let survivor_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let survivor_addr = survivor_listener.local_addr().unwrap();
        let survivor = MembershipHandle::new(0, 2, survivor_addr);
        survivor
            .merge_msg(&MembershipMsg {
                kind: MembershipKind::Announce,
                cluster_size: 2,
                sender: 1,
                book_version: 1,
                // The dead predecessor's port is above the ephemeral range,
                // so the equal-incarnation tie-break favors it and the
                // replacement is forced down the bump-and-re-announce path.
                entries: vec![entry(1, 0, 65535)],
            })
            .unwrap();
        survivor_listener.set_nonblocking(true).unwrap();

        let replacement_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let replacement_addr = replacement_listener.local_addr().unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let view = std::thread::scope(|scope| {
            let survivor = &survivor;
            let survivor_listener = &survivor_listener;
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match survivor_listener.accept() {
                        Ok((mut stream, _)) => {
                            let _ = survivor.serve_stream(&mut stream);
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            });
            let view = discover(
                1,
                2,
                &replacement_listener,
                &[survivor_addr],
                Duration::from_secs(10),
            )
            .unwrap();
            stop.store(true, Ordering::Relaxed);
            view
        });
        // The replacement bumped over the predecessor's incarnation 0…
        assert_eq!(view.incarnation, 1);
        assert_eq!(view.peer_addrs, vec![survivor_addr, replacement_addr]);
        // …and the survivor's book now records the new address.
        assert_eq!(survivor.peer_addr(1), Some(replacement_addr));
        assert_eq!(survivor.own_incarnation(), 0);
    }
}
