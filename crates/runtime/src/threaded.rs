//! The threaded executor: one OS thread per simulated server.
//!
//! Spawns a scoped thread per server, wires them into a [`ChannelPlane`] and a
//! [`SuperstepBarrier`], runs [`run_worker_traced`] on each, and reduces the streamed
//! metrics deterministically. Differential tests (below and in
//! `tests/determinism.rs`) pin its output to the sequential reference
//! bit-for-bit.

use crate::barrier::SuperstepBarrier;
use crate::plane::{BroadcastPlane, ChannelPlane};
use crate::reduce::reduce_metrics;
use crate::worker::{run_worker_traced, MetricsSlice, WorkerError, WorkerOutput};
use graphh_core::exec::{ExecutionPlan, Executor};
use graphh_core::gab::GabProgram;
use graphh_core::{EngineError, GraphHConfig, RunResult};
use graphh_obs::TraceConfig;
use graphh_partition::PartitionedGraph;
use std::sync::mpsc::channel;
use std::thread;
use std::time::Instant;

/// Runs every simulated server on its own OS thread — `p` server threads,
/// each of which fans its tile phase out to `threads_per_server` compute
/// threads (the paper's `T`), i.e. `p × T` workers at peak.
///
/// Observationally equivalent to
/// [`graphh_core::SequentialExecutor`]: `values` are bit-identical; wall-clock
/// time scales with available cores instead of cluster size.
#[derive(Debug, Clone, Default)]
pub struct ThreadedExecutor {
    trace: TraceConfig,
}

impl ThreadedExecutor {
    /// A threaded executor with tracing off.
    pub fn new() -> Self {
        Self::default()
    }

    /// A threaded executor recording phase spans into `trace`.
    ///
    /// Server `sid`'s worker thread records on lane `1 + sid`; its pool jobs
    /// on lanes `100 * (1 + sid) + worker_index` (see `docs/OBSERVABILITY.md`).
    pub fn with_trace(trace: TraceConfig) -> Self {
        Self { trace }
    }
}

impl Executor for ThreadedExecutor {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn execute(
        &self,
        config: &GraphHConfig,
        partitioned: &PartitionedGraph,
        program: &dyn GabProgram,
    ) -> Result<RunResult, EngineError> {
        let started = Instant::now();
        let tracer = &self.trace.tracer;
        let mut driver_rec = tracer.thread(0);
        let prepare = driver_rec.begin();
        let plan = ExecutionPlan::prepare(config, partitioned, program)?;
        driver_rec.end(prepare, "plan-prepare", "load");
        let num_servers = config.cluster.num_servers;
        let planes = ChannelPlane::connect(num_servers);
        let barrier = SuperstepBarrier::new(num_servers);
        let (metrics_tx, metrics_rx) = channel::<MetricsSlice>();

        let worker_results: Vec<thread::Result<Result<WorkerOutput, WorkerError>>> =
            thread::scope(|scope| {
                let handles: Vec<_> = planes
                    .into_iter()
                    .map(|mut plane| {
                        let metrics_tx = metrics_tx.clone();
                        let plan = &plan;
                        let barrier = &barrier;
                        let tracer = tracer.clone();
                        scope.spawn(move || {
                            let sid = plane.server_id();
                            run_worker_traced(
                                config,
                                plan,
                                partitioned,
                                program,
                                sid,
                                &mut plane,
                                barrier,
                                &metrics_tx,
                                &tracer,
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
        drop(metrics_tx);

        let mut outputs = Vec::with_capacity(num_servers as usize);
        let mut first_error: Option<WorkerError> = None;
        let mut panic_payload = None;
        for joined in worker_results {
            match joined {
                Ok(Ok(output)) => outputs.push(output),
                Ok(Err(e)) => {
                    // Prefer the root cause: a failing worker makes its peers
                    // fail too, but with *secondary* poison/abort errors that
                    // would otherwise mask the actionable message.
                    let replace = match &first_error {
                        None => true,
                        Some(prev) => prev.secondary && !e.secondary,
                    };
                    if replace {
                        first_error = Some(e);
                    }
                }
                // A worker panic is a bug, not an engine error; re-raise it
                // (after joining everyone, so no thread outlives the scope).
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        if let Some(e) = first_error {
            return Err(e.error);
        }
        outputs.sort_by_key(|o| o.server);

        let slices: Vec<MetricsSlice> = metrics_rx.into_iter().collect();
        let reduced = reduce_metrics(slices, num_servers, plan.num_vertices, &plan.cost_model);

        let supersteps_run = outputs.first().map(|o| o.supersteps_run).unwrap_or(0);
        debug_assert!(
            outputs.iter().all(|o| o.supersteps_run == supersteps_run),
            "workers must agree on the superstep count"
        );
        let per_server_peak_memory = outputs.iter().map(|o| o.peak_memory).collect();
        let cache_codec = outputs
            .first()
            .map(|o| o.cache_codec)
            .unwrap_or(graphh_compress::Codec::Raw);
        let values = outputs
            .into_iter()
            .next()
            .map(|o| o.values)
            .unwrap_or_default();

        Ok(RunResult {
            values,
            metrics: reduced.metrics,
            supersteps_run,
            cache_codec,
            per_server_peak_memory,
            updated_ratio_per_superstep: reduced.updated_ratio_per_superstep,
            executor: self.name(),
            wall_clock_seconds: started.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphh_cluster::ClusterConfig;
    use graphh_core::{GraphHEngine, PageRank, SequentialExecutor, Sssp};
    use graphh_graph::generators::{path_graph, GraphGenerator, RmatGenerator};
    use graphh_partition::{Spe, SpeConfig};
    use std::sync::Arc;

    fn engines(servers: u32) -> (GraphHEngine, GraphHEngine) {
        let cfg = GraphHConfig::paper_default(ClusterConfig::paper_testbed(servers));
        (
            GraphHEngine::with_executor(cfg.clone(), Arc::new(SequentialExecutor::new())),
            GraphHEngine::with_executor(cfg, Arc::new(ThreadedExecutor::new())),
        )
    }

    fn bit_identical(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn threaded_pagerank_is_bit_identical_to_sequential() {
        let g = RmatGenerator::new(8, 6).generate(7);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 9)).unwrap();
        let (seq, thr) = engines(4);
        let a = seq.run(&p, &PageRank::new(8)).unwrap();
        let b = thr.run(&p, &PageRank::new(8)).unwrap();
        assert!(bit_identical(&a.values, &b.values));
        assert_eq!(a.supersteps_run, b.supersteps_run);
        assert_eq!(b.executor, "threaded");
        // Metered byte counters are scheduling-independent too.
        assert_eq!(
            a.metrics.total_network_bytes(),
            b.metrics.total_network_bytes()
        );
        assert_eq!(a.metrics.total_disk_bytes(), b.metrics.total_disk_bytes());
    }

    #[test]
    fn threaded_sssp_with_bloom_skipping_matches_sequential() {
        let g = path_graph(150);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 12)).unwrap();
        let (seq, thr) = engines(3);
        let a = seq.run(&p, &Sssp::new(0)).unwrap();
        let b = thr.run(&p, &Sssp::new(0)).unwrap();
        assert!(bit_identical(&a.values, &b.values));
        assert_eq!(a.supersteps_run, b.supersteps_run);
        assert_eq!(
            a.updated_ratio_per_superstep, b.updated_ratio_per_superstep,
            "convergence trajectory must match"
        );
    }

    #[test]
    fn single_server_threaded_run_works() {
        let g = RmatGenerator::new(6, 4).generate(1);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 4)).unwrap();
        let (seq, thr) = engines(1);
        let a = seq.run(&p, &PageRank::new(4)).unwrap();
        let b = thr.run(&p, &PageRank::new(4)).unwrap();
        assert!(bit_identical(&a.values, &b.values));
        assert_eq!(b.metrics.total_network_bytes(), 0);
    }

    /// A program whose `apply` panics on one vertex in superstep 1 — stands in
    /// for a buggy user program blowing up on a single worker thread.
    struct PanicAt {
        vertex: u32,
    }

    impl graphh_core::GabProgram for PanicAt {
        fn name(&self) -> &'static str {
            "panic-at"
        }
        fn initial_value(&self, _v: u32, _ctx: &graphh_core::gab::InitContext<'_>) -> f64 {
            0.0
        }
        fn gather(
            &self,
            _target: u32,
            _in_edges: &mut dyn Iterator<Item = (u32, f32)>,
            _ctx: &graphh_core::gab::VertexContext<'_>,
        ) -> f64 {
            0.0
        }
        fn apply(
            &self,
            target: u32,
            _accum: f64,
            current: f64,
            ctx: &graphh_core::gab::VertexContext<'_>,
        ) -> f64 {
            if ctx.superstep == 1 && target == self.vertex {
                panic!("boom: user program failed on vertex {target}");
            }
            current + 1.0
        }
        fn max_supersteps(&self) -> u32 {
            5
        }
    }

    /// A worker panic must propagate out of `execute` (releasing the other
    /// workers via plane abort + barrier poison) — not deadlock the scope.
    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let g = RmatGenerator::new(7, 4).generate(2);
        let p = Spe::partition(&g, &SpeConfig::with_tile_count("t", &g, 9)).unwrap();
        let (_, thr) = engines(3);
        let _ = thr.run(&p, &PanicAt { vertex: 0 });
    }

    #[test]
    fn empty_graph_is_rejected_not_deadlocked() {
        let g =
            graphh_graph::Graph::from_edges(0, graphh_graph::EdgeList::new_unweighted()).unwrap();
        let p = Spe::partition(&g, &SpeConfig::new("x", 1)).unwrap();
        let (_, thr) = engines(3);
        assert!(thr.run(&p, &PageRank::new(1)).is_err());
    }
}
