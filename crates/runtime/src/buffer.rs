//! A small freelist of reusable byte buffers for the broadcast hot path.
//!
//! A steady-state superstep moves every broadcast through the same few
//! byte-buffer shapes — codec scratch, wire bytes, batched frame bytes. Each
//! used to be a fresh `Vec<u8>` per message per superstep; [`BufferPool`]
//! recycles them instead, so after the first superstep warms the pool the
//! buffer traffic is allocation-free. The pool is shared (`Clone` hands out
//! another handle to the same freelist), so buffers checked out by a worker
//! thread and dropped by the poll plane's event loop still come home.
//!
//! This is deliberately minimal: a mutex-guarded LIFO of `Vec<u8>`s, bounded
//! so a burst of giant messages cannot pin unbounded memory forever.

use graphh_obs::{global_counters, Counter};
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// Most buffers the freelist retains; further returns are simply freed.
const MAX_POOLED: usize = 32;

/// The pool's observability counters, fetched from the global registry once
/// per pool (registration allocates; the per-checkout updates are plain
/// relaxed atomic adds, so the hot path stays allocation-free).
#[derive(Clone, Debug)]
struct PoolCounters {
    /// Checkouts served from the freelist.
    hits: Counter,
    /// Checkouts that had to allocate a fresh `Vec`.
    misses: Counter,
    /// Buffers currently on loan (gauge: incremented on checkout,
    /// decremented when the buffer comes home).
    outstanding: Counter,
}

impl PoolCounters {
    fn registered() -> Self {
        let registry = global_counters();
        PoolCounters {
            hits: registry.counter("buffer_pool.hits"),
            misses: registry.counter("buffer_pool.misses"),
            outstanding: registry.counter("buffer_pool.outstanding"),
        }
    }
}

/// A shared, bounded freelist of reusable `Vec<u8>`s.
///
/// ```
/// use graphh_runtime::BufferPool;
///
/// let pool = BufferPool::new();
/// let mut buf = pool.checkout();
/// buf.extend_from_slice(b"superstep 0 wire bytes");
/// let capacity = buf.capacity();
/// drop(buf); // returns the allocation to the pool
///
/// let again = pool.checkout(); // recycled: cleared, capacity retained
/// assert!(again.is_empty());
/// assert!(again.capacity() >= capacity);
/// ```
#[derive(Clone, Debug)]
pub struct BufferPool {
    free: Arc<Mutex<Vec<Vec<u8>>>>,
    counters: PoolCounters,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            free: Arc::default(),
            counters: PoolCounters::registered(),
        }
    }

    /// Check out a buffer: the most recently returned one (cleared, capacity
    /// intact) or a fresh empty `Vec` when the freelist is empty.
    pub fn checkout(&self) -> PooledBuf {
        let recycled = self.free.lock().expect("buffer pool poisoned").pop();
        match &recycled {
            Some(_) => self.counters.hits.incr(),
            None => self.counters.misses.incr(),
        }
        self.counters.outstanding.incr();
        PooledBuf {
            buf: recycled.unwrap_or_default(),
            free: Arc::clone(&self.free),
            outstanding: self.counters.outstanding.clone(),
        }
    }

    /// Buffers currently resting in the freelist (test aid).
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("buffer pool poisoned").len()
    }
}

/// A `Vec<u8>` on loan from a [`BufferPool`]; dropping it returns the
/// allocation to the pool (cleared) for the next [`BufferPool::checkout`].
/// Dereferences to the underlying `Vec<u8>`.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    free: Arc<Mutex<Vec<Vec<u8>>>>,
    /// The pool's outstanding gauge, decremented on drop.
    outstanding: Counter,
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.outstanding.sub(1);
        let mut buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let mut free = match self.free.lock() {
            Ok(free) => free,
            Err(_) => return, // poisoned pool: let the buffer free normally
        };
        if free.len() < MAX_POOLED {
            free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_the_returned_allocation() {
        let pool = BufferPool::new();
        let mut a = pool.checkout();
        a.extend_from_slice(&[1, 2, 3]);
        let ptr = a.as_ptr();
        let cap = a.capacity();
        drop(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.checkout();
        assert_eq!(pool.pooled(), 0);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.as_ptr(), ptr, "same allocation, no copy");
        assert!(b.capacity() >= cap);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let pool = BufferPool::new();
        drop(pool.checkout()); // never written: nothing worth keeping
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let pool = BufferPool::new();
        let held: Vec<_> = (0..MAX_POOLED + 5)
            .map(|_| {
                let mut b = pool.checkout();
                b.push(0);
                b
            })
            .collect();
        drop(held);
        assert_eq!(pool.pooled(), MAX_POOLED);
    }

    /// Counters live in the process-global registry (tests share it), so
    /// assert on deltas, not absolutes.
    #[test]
    fn checkout_traffic_shows_up_in_the_global_counters() {
        let registry = global_counters();
        let hits0 = registry.counter("buffer_pool.hits").get();
        let misses0 = registry.counter("buffer_pool.misses").get();

        let pool = BufferPool::new();
        let mut a = pool.checkout(); // miss: freelist empty
        a.push(1);
        drop(a);
        let b = pool.checkout(); // hit: recycles `a`
        assert!(registry.counter("buffer_pool.misses").get() > misses0);
        assert!(registry.counter("buffer_pool.hits").get() > hits0);
        // `b` is on loan; the outstanding gauge can only tell us so while no
        // other test is checking buffers in or out, so just return it and
        // rely on the strict add/sub pairing being exercised.
        drop(b);
    }

    #[test]
    fn pool_handles_share_one_freelist_across_threads() {
        let pool = BufferPool::new();
        let handle = pool.clone();
        let mut buf = pool.checkout();
        buf.extend_from_slice(b"crossing threads");
        std::thread::spawn(move || drop(buf)).join().unwrap();
        assert_eq!(handle.pooled(), 1);
    }
}
