//! Event-driven TCP backend: **one readiness loop drives every peer socket**.
//!
//! [`crate::socket::SocketPlane`] spends one OS reader thread per peer — a
//! `p`-server cluster costs each process `p - 1` parked threads, which caps
//! how many servers one host can simulate. [`PollPlane`] multiplexes all peer
//! connections onto a **single event-loop thread** instead: every stream is
//! `O_NONBLOCK`, a [`ReadinessPoller`] reports which sockets can make
//! progress, and per-peer state machines carry partial frames
//! ([`crate::frame::FrameDecoder`]) and backpressured write queues across
//! loop iterations. Same wire protocol, same GHH1 handshake, same
//! [`SuperstepCollector`] inbox discipline — the executor-facing behaviour is
//! identical and the determinism suites pin `PollPlane` runs bit-identical to
//! the sequential reference (see `docs/WIRE.md` §5 for the conformance
//! contract).
//!
//! ## Threading model
//!
//! ```text
//!  worker thread                     event-loop thread (exactly one)
//!  ─────────────                     ──────────────────────────────
//!  broadcast() ──encode──▶ bounded   ┌────────────────────────────────┐
//!  end_superstep()         command   │ drain commands → fan out bytes │
//!  abort()                 channel ─▶│ to per-peer write queues       │
//!       │                   + waker  │ poll(readable/writable fds)    │
//!       ▼                            │  readable → read, FrameDecoder │
//!  collect() ◀── inbox channel ◀─────│  writable → flush write queue  │
//!  (SuperstepCollector)              └────────────────────────────────┘
//! ```
//!
//! The worker thread never touches a socket; the event loop never blocks on
//! one. Commands travel over a *bounded* channel, so a worker that broadcasts
//! faster than the network drains is throttled (backpressure) instead of
//! buffering without limit; the loop additionally stops accepting commands
//! while any peer's write queue is above its high-water mark.
//!
//! ## Write coalescing
//!
//! Broadcast frames are not shipped one by one. The plane accumulates them
//! in a pooled **batch buffer** ([`crate::buffer::BufferPool`])
//! and hands the whole batch to the loop when it reaches the flush threshold
//! (`BATCH_FLUSH`, 256 KiB) or the superstep ends — so a typical superstep costs one command,
//! one waker write and one contiguous socket write per peer instead of one
//! of each per frame. On the loop side `pump_writes` additionally gathers
//! queued batches into a single `write_vectored` call per readiness event.
//! Batch buffers are shared across all peers' queues (`Arc`) and recycled
//! through the pool once the last peer has written them, so steady-state
//! supersteps reuse the same few allocations. None of this changes a single
//! wire byte: frames are concatenated in order, exactly as `docs/WIRE.md`
//! specifies them.
//!
//! ## Readiness abstraction
//!
//! [`ReadinessPoller`] is the minimal mio-style seam: register sockets once,
//! then repeatedly ask which can make progress. Two implementations:
//!
//! * [`PollSyscallPoller`] (Linux) — level-triggered readiness via the
//!   `poll(2)` syscall, declared directly (std already links libc; no crate
//!   dependency). The loop sleeps in the kernel until a socket has data or
//!   buffer space.
//! * [`SpinPoller`] (portable, FFI-less) — claims every registered socket
//!   ready and lets the non-blocking `read`/`write` calls discover the truth
//!   (`WouldBlock`), with a short sleep per round to keep the spin cool.
//!   Tests force it on every platform ([`BoundPollPlane::establish_with`]).
//!
//! A dropped [`PollPlane`] flushes its queues, half-closes its streams and
//! joins the loop thread — shutdown is asserted by the thread-count checks in
//! `tests/poll_threads.rs` and `examples/socket_cluster.rs`, not assumed.

use crate::buffer::{BufferPool, PooledBuf};
use crate::chaos::SeverPeer;
use crate::frame::{
    Frame, FrameDecoder, FrameError, InboxEvent, PlaneError, SuperstepCollector, WireMessage,
};
use crate::plane::BroadcastPlane;
use crate::resume::{
    count_frames, HandshakeFault, ReplayLog, ResilienceConfig, ResumeHello, RESUME_HELLO_LEN,
};
use crate::socket::{bind_listener, establish_streams, DEFAULT_ESTABLISH_TIMEOUT};
use graphh_graph::ids::ServerId;
use graphh_obs::{global_counters, Counter};
use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long one `poll` round may sleep when nothing is ready. Bounds shutdown
/// latency for events the waker does not cover; the waker covers commands.
const POLL_TIMEOUT: Duration = Duration::from_millis(25);

/// Per-peer write-queue high-water mark: while any peer has more than this
/// many bytes queued, the loop stops draining commands, the bounded command
/// channel fills, and the broadcasting worker blocks — backpressure reaches
/// the producer instead of growing an unbounded buffer.
const WRITE_HIGH_WATER: usize = 8 * 1024 * 1024;

/// Commands the loop will buffer before `broadcast` blocks.
const COMMAND_BACKLOG: usize = 64;

/// Read scratch size per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// Bytes of batched frames at which `broadcast` hands the batch to the event
/// loop without waiting for `end_superstep`. Small supersteps ship as a
/// single contiguous buffer (one command, one waker write, one socket write
/// per peer); large supersteps stream in `BATCH_FLUSH`-sized chunks so the
/// loop overlaps writing with the worker's encoding.
const BATCH_FLUSH: usize = 256 * 1024;

/// Most queue entries one coalesced `write_vectored` call gathers.
const MAX_WRITE_VECTORS: usize = 16;

/// Frame bytes shared by every peer's write queue: one batch buffer checked
/// out of the plane's [`BufferPool`], enqueued once per peer, returned to the
/// pool when the last peer finishes writing it.
type SharedBatch = Arc<PooledBuf>;

/// The event loop's observability counters (see `docs/OBSERVABILITY.md` for
/// the catalog). Handles are fetched from the global registry once at
/// establish time; the loop's updates are relaxed atomic adds — never an
/// allocation, never read back by the loop itself.
struct LoopCounters {
    /// Coalesced `write_vectored` calls issued.
    write_vectored_calls: Counter,
    /// Frame bytes actually written to peer sockets.
    bytes_written: Counter,
    /// Intake rounds skipped because some peer's write queue was above
    /// [`WRITE_HIGH_WATER`] (each one is a round of producer backpressure).
    high_water_stalls: Counter,
    /// Largest write-queue depth any peer reached, in bytes (gauge).
    queued_bytes_peak: Counter,
    /// Peers whose stream ended (clean or not) — the reconnect-relevant
    /// signal a future fault-tolerance layer would watch.
    peers_lost: Counter,
}

impl LoopCounters {
    fn registered() -> Self {
        let registry = global_counters();
        LoopCounters {
            write_vectored_calls: registry.counter("poll.write_vectored_calls"),
            bytes_written: registry.counter("poll.bytes_written"),
            high_water_stalls: registry.counter("poll.high_water_stalls"),
            queued_bytes_peak: registry.counter("poll.queued_bytes_peak"),
            peers_lost: registry.counter("poll.peers_lost"),
        }
    }
}

// ---------------------------------------------------------------------------
// Readiness abstraction
// ---------------------------------------------------------------------------

/// Which directions a socket is interesting in / ready for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Reading would make progress (data, EOF, or a pending error).
    pub readable: bool,
    /// Writing would make progress.
    pub writable: bool,
}

impl Readiness {
    /// Neither direction.
    pub fn none() -> Self {
        Self::default()
    }

    /// Is either direction set?
    pub fn any(self) -> bool {
        self.readable || self.writable
    }
}

/// The minimal mio-style readiness seam the event loop drives sockets with.
///
/// Sockets are registered once, in order; each [`poll`](Self::poll) round
/// then pairs `interest[i]` / `ready[i]` with the `i`-th registered socket.
/// Implementations may block up to `timeout`, and may over-report readiness
/// (the loop's non-blocking I/O treats `WouldBlock` as "not actually ready"),
/// but must never under-report it forever — a byte sitting in a socket's
/// receive buffer must eventually set `readable`.
pub trait ReadinessPoller: Send {
    /// Register the next socket; its index is the number of sockets
    /// registered before it.
    fn register(&mut self, stream: &TcpStream) -> std::io::Result<()>;

    /// Report readiness for every registered socket whose `interest[i]` has a
    /// direction set, blocking up to `timeout` when none is ready.
    fn poll(
        &mut self,
        interest: &[Readiness],
        ready: &mut [Readiness],
        timeout: Duration,
    ) -> std::io::Result<()>;

    /// Register a listening socket as the next slot (its `readable` means a
    /// connection is waiting to be accepted). Only the resilient plane needs
    /// this; pollers that cannot watch a listener refuse here, failing
    /// `establish_resilient` loudly instead of never accepting reconnects.
    fn register_listener(&mut self, _listener: &TcpListener) -> std::io::Result<()> {
        Err(std::io::Error::other(
            "this poller cannot watch a listener (resilient mode unsupported)",
        ))
    }

    /// Replace the socket behind an existing slot (a reconnected peer
    /// stream). Pollers that re-derive readiness each round (the spin
    /// fallback) need no bookkeeping; fd-based pollers swap the descriptor.
    fn reregister(&mut self, _slot: usize, _stream: &TcpStream) -> std::io::Result<()> {
        Ok(())
    }
}

/// Level-triggered readiness via the `poll(2)` syscall.
///
/// Declared directly against the C ABI std already links on Linux — no `libc`
/// crate, no new dependency. Entries without interest are skipped by handing
/// the kernel a negative fd (ignored per POSIX).
#[cfg(target_os = "linux")]
pub struct PollSyscallPoller {
    fds: Vec<std::os::unix::io::RawFd>,
    /// Reused `pollfd` array — `poll` runs once per event-loop round (the
    /// hottest path in the plane), so it must not allocate per call.
    pollfds: Vec<sys::PollFd>,
}

#[cfg(target_os = "linux")]
mod sys {
    use std::os::unix::io::RawFd;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `poll(2)`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        /// `int poll(struct pollfd *fds, nfds_t nfds, int timeout)` — nfds_t
        /// is `unsigned long` on Linux.
        pub fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    }
}

#[cfg(target_os = "linux")]
impl PollSyscallPoller {
    /// A poller with no sockets registered yet.
    pub fn new() -> Self {
        Self {
            fds: Vec::new(),
            pollfds: Vec::new(),
        }
    }
}

#[cfg(target_os = "linux")]
impl Default for PollSyscallPoller {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(target_os = "linux")]
impl ReadinessPoller for PollSyscallPoller {
    fn register(&mut self, stream: &TcpStream) -> std::io::Result<()> {
        use std::os::unix::io::AsRawFd;
        self.fds.push(stream.as_raw_fd());
        Ok(())
    }

    fn register_listener(&mut self, listener: &TcpListener) -> std::io::Result<()> {
        use std::os::unix::io::AsRawFd;
        self.fds.push(listener.as_raw_fd());
        Ok(())
    }

    fn reregister(&mut self, slot: usize, stream: &TcpStream) -> std::io::Result<()> {
        use std::os::unix::io::AsRawFd;
        self.fds[slot] = stream.as_raw_fd();
        Ok(())
    }

    fn poll(
        &mut self,
        interest: &[Readiness],
        ready: &mut [Readiness],
        timeout: Duration,
    ) -> std::io::Result<()> {
        debug_assert_eq!(interest.len(), self.fds.len());
        debug_assert_eq!(ready.len(), self.fds.len());
        self.pollfds.clear();
        self.pollfds
            .extend(interest.iter().zip(&self.fds).map(|(want, &fd)| {
                let mut events = 0i16;
                if want.readable {
                    events |= sys::POLLIN;
                }
                if want.writable {
                    events |= sys::POLLOUT;
                }
                sys::PollFd {
                    // Negative fds are ignored by poll(2): no-interest entries
                    // stay index-aligned without waking the loop.
                    fd: if events == 0 { -1 } else { fd },
                    events,
                    revents: 0,
                }
            }));
        // Zero stays zero (the event loop's "burst in progress, don't sleep"
        // round); anything else is at least 1 ms so a sub-millisecond value
        // does not truncate into a busy loop.
        let timeout_ms = if timeout.is_zero() {
            0
        } else {
            i32::try_from(timeout.as_millis())
                .unwrap_or(i32::MAX)
                .max(1)
        };
        loop {
            let rc = unsafe {
                sys::poll(
                    self.pollfds.as_mut_ptr(),
                    self.pollfds.len() as std::os::raw::c_ulong,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        for (slot, pollfd) in ready.iter_mut().zip(&self.pollfds) {
            let r = pollfd.revents;
            // Errors and hangups surface through the read path (a read
            // returns the error or EOF), so they count as readable.
            slot.readable = r & (sys::POLLIN | sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0;
            slot.writable = r & (sys::POLLOUT | sys::POLLERR) != 0;
        }
        Ok(())
    }
}

/// Portable FFI-less fallback: claim every interesting socket ready and let
/// the non-blocking `read`/`write` calls discover the truth (`WouldBlock`).
///
/// A short sleep per round keeps the spin from pegging a core; the sleep is
/// skipped when the previous round made progress (the loop passes a zero
/// timeout then). Used on non-Linux targets, and forced everywhere by the
/// conformance tests so the trait seam itself is exercised.
pub struct SpinPoller {
    registered: usize,
    /// Upper bound on one round's sleep; defaults to 1 ms.
    nap: Duration,
}

impl SpinPoller {
    /// A spin poller with the default 1 ms nap.
    pub fn new() -> Self {
        Self {
            registered: 0,
            nap: Duration::from_millis(1),
        }
    }
}

impl Default for SpinPoller {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadinessPoller for SpinPoller {
    fn register(&mut self, _stream: &TcpStream) -> std::io::Result<()> {
        self.registered += 1;
        Ok(())
    }

    fn register_listener(&mut self, _listener: &TcpListener) -> std::io::Result<()> {
        self.registered += 1;
        Ok(())
    }

    fn poll(
        &mut self,
        interest: &[Readiness],
        ready: &mut [Readiness],
        timeout: Duration,
    ) -> std::io::Result<()> {
        debug_assert_eq!(interest.len(), self.registered);
        ready.copy_from_slice(interest);
        if !timeout.is_zero() {
            std::thread::sleep(timeout.min(self.nap));
        }
        Ok(())
    }
}

/// The platform's best poller: `poll(2)` on Linux, the spin fallback
/// elsewhere.
pub fn default_poller() -> Box<dyn ReadinessPoller> {
    #[cfg(target_os = "linux")]
    {
        Box::new(PollSyscallPoller::new())
    }
    #[cfg(not(target_os = "linux"))]
    {
        Box::new(SpinPoller::new())
    }
}

/// This process's OS thread count (Linux: `Threads:` in `/proc/self/status`;
/// `None` where that is unavailable). Test aid for the "exactly one
/// event-loop thread" and clean-shutdown assertions.
pub fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

// ---------------------------------------------------------------------------
// Plane
// ---------------------------------------------------------------------------

/// A poll plane that has bound its listener but not yet connected to its
/// peers — same two-phase establishment as
/// [`crate::socket::BoundSocketPlane`], so launchers can treat the two TCP
/// backends interchangeably.
pub struct BoundPollPlane {
    id: ServerId,
    num_servers: u32,
    listener: TcpListener,
}

impl BoundPollPlane {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Seed-node bootstrap: learn the full `id → address` book from `seeds`
    /// via `GHHM` exchanges on this plane's listener (see
    /// [`crate::membership::discover`]). Follow with
    /// [`Self::establish_discovered`] or [`Self::establish_resilient_discovered`].
    pub fn discover(
        &self,
        seeds: &[SocketAddr],
        timeout: Duration,
    ) -> std::io::Result<crate::membership::MembershipView> {
        crate::membership::discover(
            self.id,
            self.num_servers as usize,
            &self.listener,
            seeds,
            timeout,
        )
    }

    /// Connect to every peer and return the ready plane, with the platform's
    /// default poller and the default establish timeout.
    pub fn establish(self, peer_addrs: &[SocketAddr]) -> std::io::Result<PollPlane> {
        self.establish_with(peer_addrs, DEFAULT_ESTABLISH_TIMEOUT, default_poller())
    }

    /// [`Self::establish`] with an explicit timeout.
    pub fn establish_with_timeout(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
    ) -> std::io::Result<PollPlane> {
        self.establish_with(peer_addrs, timeout, default_poller())
    }

    /// [`Self::establish`] with an explicit timeout and poller (tests force
    /// [`SpinPoller`] here so the readiness seam runs on every platform).
    pub fn establish_with(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
        poller: Box<dyn ReadinessPoller>,
    ) -> std::io::Result<PollPlane> {
        self.establish_inner(peer_addrs, timeout, poller, Vec::new(), None)
    }

    /// The address book learned by seed discovery ([`crate::membership::discover`])
    /// replaces the static peer table; early-stashed bootstrap connections
    /// feed the normal accept handling and the listener keeps answering
    /// `GHHM` exchanges for peers still bootstrapping their own books.
    pub fn establish_discovered(
        self,
        view: crate::membership::MembershipView,
        timeout: Duration,
    ) -> std::io::Result<PollPlane> {
        let crate::membership::MembershipView {
            handle,
            peer_addrs,
            early,
            ..
        } = view;
        self.establish_inner(&peer_addrs, timeout, default_poller(), early, Some(&handle))
    }

    fn establish_inner(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
        mut poller: Box<dyn ReadinessPoller>,
        early: Vec<TcpStream>,
        membership: Option<&crate::membership::MembershipState>,
    ) -> std::io::Result<PollPlane> {
        let BoundPollPlane {
            id,
            num_servers,
            listener,
        } = self;
        let streams = establish_streams(
            id,
            num_servers,
            listener,
            peer_addrs,
            timeout,
            early,
            membership,
        )?;

        let (waker_tx, waker_rx) = waker_pair()?;
        poller.register(&waker_rx)?;
        let registry = global_counters();
        let mut peers = Vec::with_capacity(streams.len());
        for (peer, stream) in streams {
            stream.set_nonblocking(true)?;
            poller.register(&stream)?;
            peers.push(Peer {
                id: peer,
                stream,
                decoder: FrameDecoder::new(),
                outbound: VecDeque::new(),
                queued_bytes: 0,
                read_open: true,
                write_open: true,
                ack_delivered: None,
                done: false,
                // Per-peer traffic counters, named at establish time (the
                // only place the name formatting — an allocation — happens).
                frames_in: registry.counter(&format!("poll.s{id}.from{peer}.frames_in")),
                bytes_in: registry.counter(&format!("poll.s{id}.from{peer}.bytes_in")),
            });
        }

        let (command_tx, command_rx) = sync_channel::<Command>(COMMAND_BACKLOG);
        let (inbox_tx, inbox) = channel::<InboxEvent>();
        let peer_ids: Vec<ServerId> = peers.iter().map(|p| p.id).collect();
        let event_loop = std::thread::Builder::new()
            .name(format!("graphh-poll-loop-{id}"))
            .spawn(move || {
                EventLoop {
                    peers,
                    waker_rx,
                    commands: command_rx,
                    inbox: inbox_tx,
                    poller,
                    counters: LoopCounters::registered(),
                    resilient: None,
                }
                .run()
            })
            .map_err(|e| std::io::Error::other(format!("spawn event-loop thread: {e}")))?;

        let pool = BufferPool::new();
        let batch = pool.checkout();
        Ok(PollPlane {
            id,
            num_servers,
            peer_ids,
            commands: command_tx,
            waker: waker_tx,
            inbox,
            collector: SuperstepCollector::new(),
            event_loop: Some(event_loop),
            pool,
            batch,
            batch_flushes: registry.counter("poll.batch_flushes"),
            resilient: false,
            batch_superstep: 0,
        })
    }

    /// Connect to every peer and return a fault-tolerant poll plane: same
    /// event loop and wire protocol, but the handshake is the 16-byte `GHHR`
    /// resume hello (both directions), broadcast batches are retained for
    /// replay until acked, and a mid-run connection loss triggers
    /// reconnect-and-resume inside the loop (redial for lower-id peers, the
    /// kept-open listener for higher-id ones) instead of reporting terminal
    /// peer loss. Only a failure outliving `config.reconnect_deadline` (or a
    /// resume request below the replay floor) surfaces as `PeerLost`.
    pub fn establish_resilient(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
        config: ResilienceConfig,
    ) -> std::io::Result<PollPlane> {
        self.establish_resilient_with(peer_addrs, timeout, config, default_poller())
    }

    /// [`Self::establish_resilient`] against a seed-discovered address book:
    /// installs the membership handle into the config (redials re-consult the
    /// gossiped book; the event loop answers `GHHM` exchanges from late
    /// bootstrappers and replacement processes) and uses the learned peer
    /// table. The view's early-stashed connections are dropped — they carry
    /// `GHHR` dials whose owners retry against the listener, which stays
    /// open with the event loop.
    pub fn establish_resilient_discovered(
        self,
        view: crate::membership::MembershipView,
        timeout: Duration,
        mut config: ResilienceConfig,
    ) -> std::io::Result<PollPlane> {
        let crate::membership::MembershipView {
            handle, peer_addrs, ..
        } = view;
        config.membership = Some(handle);
        self.establish_resilient_with(&peer_addrs, timeout, config, default_poller())
    }

    /// [`Self::establish_resilient`] with an explicit poller.
    pub fn establish_resilient_with(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
        config: ResilienceConfig,
        mut poller: Box<dyn ReadinessPoller>,
    ) -> std::io::Result<PollPlane> {
        let BoundPollPlane {
            id,
            num_servers,
            listener,
        } = self;
        if peer_addrs.len() != num_servers as usize {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "peer table has {} entries for a {num_servers}-server cluster",
                    peer_addrs.len()
                ),
            ));
        }
        let mut fault_budget = if config.handshake_fault.is_some() {
            config.handshake_fault_budget
        } else {
            0
        };
        let streams = establish_resilient_streams(
            id,
            num_servers,
            &listener,
            peer_addrs,
            timeout,
            &config,
            &mut fault_budget,
        )?;

        let (waker_tx, waker_rx) = waker_pair()?;
        poller.register(&waker_rx)?;
        let registry = global_counters();
        let mut peers = Vec::with_capacity(streams.len());
        // The peers' initial resume_from values are ignored here: this
        // endpoint's replay log is empty at establish time, so there is
        // nothing to replay regardless of where a peer asks to resume (a
        // restarted process re-broadcasts from its checkpoint cursor through
        // the normal worker loop instead).
        for (peer, stream, _peer_resume_from) in streams {
            stream.set_nonblocking(true)?;
            poller.register(&stream)?;
            peers.push(Peer {
                id: peer,
                stream,
                decoder: FrameDecoder::new(),
                outbound: VecDeque::new(),
                queued_bytes: 0,
                read_open: true,
                write_open: true,
                ack_delivered: None,
                done: false,
                frames_in: registry.counter(&format!("poll.s{id}.from{peer}.frames_in")),
                bytes_in: registry.counter(&format!("poll.s{id}.from{peer}.bytes_in")),
            });
        }
        // The listener stays open for the whole run (slot `peers + 1`) so
        // cut peers — or a restarted process — can always dial back in.
        listener.set_nonblocking(true)?;
        poller.register_listener(&listener)?;

        let resilient = ResilientState {
            id,
            num_servers,
            listener,
            peer_addrs: peer_addrs.to_vec(),
            config: config.clone(),
            fault_budget,
            replay: ReplayLog::resuming_from(num_servers, id, config.resume_from),
            recv_cursor: vec![config.resume_from; num_servers as usize],
            down: (0..peers.len()).map(|_| None).collect(),
            gone: vec![false; peers.len()],
            last_ack: None,
            aborted: false,
            pool: BufferPool::new(),
            reconnects: registry.counter("fabric.reconnects"),
            replayed_frames: registry.counter("fabric.replayed_frames"),
            // The establish itself proves every peer holds a complete book:
            // nothing to gossip until the book moves again.
            last_gossip_version: config.membership.as_ref().map_or(0, |m| m.version()),
        };

        let (command_tx, command_rx) = sync_channel::<Command>(COMMAND_BACKLOG);
        let (inbox_tx, inbox) = channel::<InboxEvent>();
        let peer_ids: Vec<ServerId> = peers.iter().map(|p| p.id).collect();
        let event_loop = std::thread::Builder::new()
            .name(format!("graphh-rpoll-loop-{id}"))
            .spawn(move || {
                EventLoop {
                    peers,
                    waker_rx,
                    commands: command_rx,
                    inbox: inbox_tx,
                    poller,
                    counters: LoopCounters::registered(),
                    resilient: Some(resilient),
                }
                .run()
            })
            .map_err(|e| std::io::Error::other(format!("spawn event-loop thread: {e}")))?;

        let pool = BufferPool::new();
        let batch = pool.checkout();
        Ok(PollPlane {
            id,
            num_servers,
            peer_ids,
            commands: command_tx,
            waker: waker_tx,
            inbox,
            collector: SuperstepCollector::new(),
            event_loop: Some(event_loop),
            pool,
            batch,
            batch_flushes: registry.counter("poll.batch_flushes"),
            resilient: true,
            batch_superstep: 0,
        })
    }
}

/// Event-driven TCP implementation of [`BroadcastPlane`]: one non-blocking
/// stream per peer, all driven by a single readiness-loop thread. See the
/// [module docs](self) for the threading model.
///
/// Construction mirrors [`crate::socket::SocketPlane`]: [`PollPlane::bind`]
/// then [`BoundPollPlane::establish`].
pub struct PollPlane {
    id: ServerId,
    num_servers: u32,
    /// Peer ids, sorted — the collector's completeness set.
    peer_ids: Vec<ServerId>,
    /// Bounded command channel into the event loop (the backpressure edge).
    commands: SyncSender<Command>,
    /// Write end of the waker: one byte unblocks the loop's `poll`.
    waker: TcpStream,
    /// Frames (and peer-loss events) from the event loop.
    inbox: Receiver<InboxEvent>,
    collector: SuperstepCollector,
    event_loop: Option<JoinHandle<()>>,
    /// Recycles batch buffers: the event loop drops a batch once every peer
    /// has written it, which returns the allocation here for the next one.
    pool: BufferPool,
    /// Frames encoded since the last flush, shipped to the event loop as one
    /// contiguous buffer (see [`BATCH_FLUSH`]) — the write-coalescing half of
    /// the plane: peers receive whole supersteps in one or two writes
    /// instead of one write per frame.
    batch: PooledBuf,
    /// Batches handed to the event loop (`poll.batch_flushes`).
    batch_flushes: Counter,
    /// True when this plane was built by `establish_resilient`: batches are
    /// shipped retained (replay log) and acks/severs become commands. The
    /// default path never sets this, so fault-free planes behave exactly as
    /// before.
    resilient: bool,
    /// The superstep every frame in the current batch belongs to (batches
    /// never span supersteps — `end_superstep` flushes).
    batch_superstep: u32,
}

impl PollPlane {
    /// Bind the listener for server `id` of a `num_servers` cluster on
    /// `listen_addr` (port 0 picks a free port; see
    /// [`BoundPollPlane::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(
        id: ServerId,
        num_servers: u32,
        listen_addr: A,
    ) -> std::io::Result<BoundPollPlane> {
        let listener = bind_listener(id, num_servers, listen_addr)?;
        Ok(BoundPollPlane {
            id,
            num_servers,
            listener,
        })
    }

    /// Hand the accumulated batch to the event loop (blocking while the loop
    /// is `COMMAND_BACKLOG` commands behind) and wake it. The batch buffer
    /// cycles: a fresh one is checked out of the pool, and the shipped one
    /// returns there once the last peer has written it.
    fn flush_batch(&mut self) -> Result<(), PlaneError> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let full = std::mem::replace(&mut self.batch, self.pool.checkout());
        let command = if self.resilient {
            Command::SendRetained {
                superstep: self.batch_superstep,
                batch: Arc::new(full),
            }
        } else {
            Command::Send(Arc::new(full))
        };
        self.commands
            .send(command)
            .map_err(|_| PlaneError::Disconnected)?;
        self.batch_flushes.incr();
        self.wake();
        Ok(())
    }

    fn wake(&self) {
        // A full waker pipe means the loop already has a pending wakeup;
        // any other failure surfaces through the command channel.
        let _ = (&self.waker).write(&[1]);
    }
}

impl BroadcastPlane for PollPlane {
    fn num_servers(&self) -> u32 {
        self.num_servers
    }

    fn server_id(&self) -> ServerId {
        self.id
    }

    fn broadcast(&mut self, superstep: u32, wire: &[u8]) -> Result<(), PlaneError> {
        // Frames accumulate in the batch (encode_message_into appends); they
        // reach the event loop when the batch fills or the superstep ends —
        // whole supersteps travel as one contiguous buffer instead of one
        // command + waker write + socket write per frame.
        self.batch_superstep = superstep;
        crate::frame::encode_message_into(self.id, superstep, wire, &mut self.batch)
            .map_err(|e| PlaneError::Protocol(e.to_string()))?;
        if self.batch.len() >= BATCH_FLUSH {
            self.flush_batch()?;
        }
        Ok(())
    }

    fn end_superstep(&mut self, superstep: u32) -> Result<(), PlaneError> {
        self.batch_superstep = superstep;
        Frame::EndOfSuperstep {
            sender: self.id,
            superstep,
        }
        .encode(&mut self.batch);
        // The batch must ship now — peers block in `collect` until they see
        // this marker. Delivery itself stays a liveness property of the
        // event loop (no blocking socket write here).
        self.flush_batch()
    }

    fn collect(&mut self, superstep: u32) -> Result<Vec<WireMessage>, PlaneError> {
        let inbox = &self.inbox;
        self.collector.collect(superstep, &self.peer_ids, || {
            inbox.recv().map_err(|_| PlaneError::Disconnected)
        })
    }

    fn acknowledge(&mut self, superstep: u32) -> Result<(), PlaneError> {
        if !self.resilient {
            return Ok(());
        }
        // Acks travel unretained (losing one to a cut only delays replay-log
        // trimming) in their own batch, so they never mix into a retained one.
        let mut buf = self.pool.checkout();
        Frame::Ack {
            sender: self.id,
            superstep,
        }
        .encode(&mut buf);
        self.commands
            .send(Command::Ack {
                superstep,
                batch: Arc::new(buf),
            })
            .map_err(|_| PlaneError::Disconnected)?;
        self.wake();
        Ok(())
    }

    fn abort(&mut self) {
        // The abort rides whatever is still batched (stream order preserved).
        // On a resilient plane the batched frames travel unretained here —
        // acceptable, because an abort ends the run for every peer anyway.
        Frame::Abort { sender: self.id }.encode(&mut self.batch);
        // Best effort and non-blocking (the WIRE.md §5 contract): try_send,
        // not send — a full command channel means the loop is backpressured,
        // and an aborting worker must unwind rather than park on it. A
        // dropped abort is recovered by peers observing the stream close.
        let full = std::mem::replace(&mut self.batch, self.pool.checkout());
        let _ = self.commands.try_send(Command::Abort(Arc::new(full)));
        self.wake();
    }
}

impl SeverPeer for PollPlane {
    fn sever_peer(&mut self, peer: ServerId) {
        if !self.resilient {
            return;
        }
        let _ = self.commands.send(Command::Sever(peer));
        self.wake();
    }
}

impl PollPlane {
    /// Tear this endpoint down as a *crash* — the in-process analog of
    /// `kill -9` for chaos tests: the event loop closes every stream on the
    /// spot (queued bytes included) and exits without sending a goodbye,
    /// serving a linger, or attempting recovery. Without this, a crash
    /// simulated as "sever, then drop" races the plane's own redial
    /// machinery, which can resurrect the link in the gap and turn the drop
    /// into a clean goodbye exit — peers would then stop holding the door
    /// open for a replacement.
    pub fn crash(self) {
        let _ = self.commands.send(Command::Crash);
        self.wake();
        // The normal drop runs next: its Shutdown command lands on a closed
        // channel (ignored) and it joins the already-exiting event loop.
    }
}

impl Drop for PollPlane {
    fn drop(&mut self) {
        // Ship any still-batched frames (normally none: `end_superstep`
        // flushes), then everything is in the FIFO command channel and the
        // loop flushes it all before half-closing.
        if !self.batch.is_empty() {
            let full = std::mem::replace(&mut self.batch, self.pool.checkout());
            let _ = self.commands.send(Command::Send(Arc::new(full)));
        }
        let _ = self.commands.send(Command::Shutdown);
        self.wake();
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for PollPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PollPlane")
            .field("id", &self.id)
            .field("num_servers", &self.num_servers)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Backend dispatch
// ---------------------------------------------------------------------------

/// Which TCP broadcast backend to run — the launchers' (`graphh-node
/// --plane`, tests, examples) shared vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpPlaneKind {
    /// [`crate::socket::SocketPlane`]: blocking I/O, one reader thread per
    /// peer.
    Socket,
    /// [`PollPlane`]: non-blocking I/O, one event-loop thread per endpoint.
    Poll,
}

impl std::str::FromStr for TcpPlaneKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "socket" => Ok(TcpPlaneKind::Socket),
            "poll" => Ok(TcpPlaneKind::Poll),
            other => Err(format!("unknown plane {other:?} (socket or poll)")),
        }
    }
}

/// A bound-but-unconnected endpoint of either TCP backend, so launchers can
/// stay plane-agnostic between bind and establish (the two backends share
/// the two-phase establishment and the GHH1 wire protocol — see
/// `docs/WIRE.md` §6).
pub enum BoundTcpPlane {
    /// A bound [`crate::socket::SocketPlane`] endpoint.
    Socket(crate::socket::BoundSocketPlane),
    /// A bound [`PollPlane`] endpoint.
    Poll(BoundPollPlane),
}

impl BoundTcpPlane {
    /// Bind the listener for server `id` of a `num_servers` cluster with the
    /// chosen backend.
    pub fn bind<A: ToSocketAddrs>(
        kind: TcpPlaneKind,
        id: ServerId,
        num_servers: u32,
        listen_addr: A,
    ) -> std::io::Result<Self> {
        match kind {
            TcpPlaneKind::Socket => crate::socket::SocketPlane::bind(id, num_servers, listen_addr)
                .map(BoundTcpPlane::Socket),
            TcpPlaneKind::Poll => {
                PollPlane::bind(id, num_servers, listen_addr).map(BoundTcpPlane::Poll)
            }
        }
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        match self {
            BoundTcpPlane::Socket(b) => b.local_addr(),
            BoundTcpPlane::Poll(b) => b.local_addr(),
        }
    }

    /// Connect to every peer with the default establish timeout.
    pub fn establish(self, peer_addrs: &[SocketAddr]) -> std::io::Result<Box<dyn BroadcastPlane>> {
        self.establish_with_timeout(peer_addrs, DEFAULT_ESTABLISH_TIMEOUT)
    }

    /// [`Self::establish`] with an explicit timeout.
    pub fn establish_with_timeout(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
    ) -> std::io::Result<Box<dyn BroadcastPlane>> {
        Ok(match self {
            BoundTcpPlane::Socket(b) => {
                Box::new(b.establish_with_timeout(peer_addrs, timeout)?) as Box<dyn BroadcastPlane>
            }
            BoundTcpPlane::Poll(b) => Box::new(b.establish_with_timeout(peer_addrs, timeout)?),
        })
    }

    /// Connect to every peer with the *resilient* wire protocol (`GHHR`
    /// resume handshake, frame retention + replay, reconnect-and-resume; see
    /// `docs/WIRE.md` §9). Either backend, same launcher-facing shape as
    /// [`Self::establish`].
    pub fn establish_resilient(
        self,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
        config: ResilienceConfig,
    ) -> std::io::Result<Box<dyn BroadcastPlane>> {
        Ok(match self {
            BoundTcpPlane::Socket(b) => {
                Box::new(b.establish_resilient(peer_addrs, timeout, config)?)
                    as Box<dyn BroadcastPlane>
            }
            BoundTcpPlane::Poll(b) => Box::new(b.establish_resilient(peer_addrs, timeout, config)?),
        })
    }

    /// Seed-node bootstrap on either backend: learn the full address book
    /// from `seeds` via `GHHM` exchanges (`docs/WIRE.md` §10).
    pub fn discover(
        &self,
        seeds: &[SocketAddr],
        timeout: Duration,
    ) -> std::io::Result<crate::membership::MembershipView> {
        match self {
            BoundTcpPlane::Socket(b) => b.discover(seeds, timeout),
            BoundTcpPlane::Poll(b) => b.discover(seeds, timeout),
        }
    }

    /// [`Self::establish`] against a seed-discovered address book.
    pub fn establish_discovered(
        self,
        view: crate::membership::MembershipView,
        timeout: Duration,
    ) -> std::io::Result<Box<dyn BroadcastPlane>> {
        Ok(match self {
            BoundTcpPlane::Socket(b) => {
                Box::new(b.establish_discovered(view, timeout)?) as Box<dyn BroadcastPlane>
            }
            BoundTcpPlane::Poll(b) => Box::new(b.establish_discovered(view, timeout)?),
        })
    }

    /// [`Self::establish_resilient`] against a seed-discovered address book:
    /// the membership handle is installed into the config, so redials consult
    /// the gossiped book and replacement processes are adopted mid-run.
    pub fn establish_resilient_discovered(
        self,
        view: crate::membership::MembershipView,
        timeout: Duration,
        config: ResilienceConfig,
    ) -> std::io::Result<Box<dyn BroadcastPlane>> {
        Ok(match self {
            BoundTcpPlane::Socket(b) => {
                Box::new(b.establish_resilient_discovered(view, timeout, config)?)
                    as Box<dyn BroadcastPlane>
            }
            BoundTcpPlane::Poll(b) => {
                Box::new(b.establish_resilient_discovered(view, timeout, config)?)
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

enum Command {
    /// Enqueue this batch of pre-encoded frame bytes to every peer.
    Send(SharedBatch),
    /// Same, but also retain the batch in the replay log under `superstep`
    /// until every peer acks it (resilient planes only — a batch never spans
    /// supersteps because `end_superstep` always flushes).
    SendRetained { superstep: u32, batch: SharedBatch },
    /// An acknowledgement batch: enqueued like [`Command::Send`], but the
    /// superstep is also remembered so a re-established link can repeat the
    /// latest ack (acks travel unretained and die with a cut stream).
    Ack { superstep: u32, batch: SharedBatch },
    /// An abort batch: enqueued like [`Command::Send`], but also marks the
    /// run aborted so shutdown never lingers for stragglers.
    Abort(SharedBatch),
    /// Chaos injection: cut the live connection to this peer (flush its
    /// queue, then close our write half — the peer sees a full stream then a
    /// FIN, exactly like a real boundary failure).
    Sever(ServerId),
    /// Chaos injection: die like a killed process — close every stream on
    /// the spot (queued bytes included), send no goodbye, serve no linger,
    /// attempt no recovery, and exit the loop immediately.
    Crash,
    /// Flush all write queues, half-close the streams, exit the loop.
    Shutdown,
}

/// One peer connection's event-driven state.
struct Peer {
    id: ServerId,
    stream: TcpStream,
    /// Carries partial frames across loop iterations.
    decoder: FrameDecoder,
    /// Pending outbound (batch, offset-already-written). The batch `Arc` is
    /// shared across all peers' queues: one broadcast batch, one buffer —
    /// returned to the plane's pool when the last peer finishes it.
    outbound: VecDeque<(SharedBatch, usize)>,
    queued_bytes: usize,
    /// False once this peer's stream ended and its loss was reported.
    read_open: bool,
    /// False once a write failed; the queue is discarded (reads attribute
    /// the actual loss).
    write_open: bool,
    /// Highest ack superstep queued on this link while writable (`None`
    /// when none). Acks travel unretained, so this is what tells a finished
    /// endpoint whether a down peer might still be waiting on our floor.
    ack_delivered: Option<u32>,
    /// True once the peer sent a `Goodbye`: its next EOF is a deliberate
    /// clean exit, so the cut must not arm recovery and the linger must not
    /// hold the door for it.
    done: bool,
    /// Complete frames decoded off this peer's stream.
    frames_in: Counter,
    /// Raw stream bytes read from this peer.
    bytes_in: Counter,
}

impl Peer {
    fn enqueue(&mut self, bytes: &SharedBatch, queued_peak: &Counter) {
        if self.write_open {
            self.queued_bytes += bytes.len();
            queued_peak.record_max(self.queued_bytes as u64);
            self.outbound.push_back((Arc::clone(bytes), 0));
        }
    }
}

/// One down peer's recovery clock.
struct DownState {
    /// Past this instant the peer is declared terminally lost.
    deadline: Instant,
    /// Next redial attempt (dial-side recovery only).
    next_retry: Instant,
    /// Deterministic seeded exponential backoff pacing the redials.
    backoff: crate::membership::ReconnectBackoff,
}

/// Everything the event loop needs for reconnect-and-resume, present only on
/// planes built by `establish_resilient`. The loop is single-threaded, so
/// unlike the socket plane's fabric none of this needs locks or generations:
/// command intake, replay appends, stream replacement and recovery all
/// interleave at loop-iteration granularity, which makes replay trivially
/// gap-free (no frame can be appended between a replay snapshot and the
/// stream install — both happen on this thread).
struct ResilientState {
    id: ServerId,
    num_servers: u32,
    /// Kept open (and polled, last slot) for the whole run so peers can
    /// redial at any point — including a restarted process rejoining.
    listener: TcpListener,
    peer_addrs: Vec<SocketAddr>,
    config: ResilienceConfig,
    /// Remaining sabotaged dial attempts (chaos handshake faults).
    fault_budget: u32,
    replay: ReplayLog,
    /// Per-peer count of completed supersteps received (EOS superstep + 1),
    /// indexed by server id: the `resume_from` this endpoint requests when a
    /// link is re-established.
    recv_cursor: Vec<u32>,
    /// Recovery clocks, indexed like `peers` (None = link believed up).
    down: Vec<Option<DownState>>,
    /// Terminally lost peers, indexed like `peers`.
    gone: Vec<bool>,
    /// Highest superstep this endpoint acknowledged; repeated on every
    /// re-established link (acks are unretained — any the peer missed while
    /// down died with the old stream, and it needs the current floor to trim
    /// its own replay log and finish its own linger).
    last_ack: Option<u32>,
    /// Set by [`Command::Abort`]: an aborted run never lingers at shutdown.
    aborted: bool,
    /// Buffers for replay blobs (recycled like broadcast batches).
    pool: BufferPool,
    reconnects: Counter,
    replayed_frames: Counter,
    /// Book version last pushed as a tag-6 gossip frame. The loop is
    /// single-threaded, so the steady-state cadence check in `gossip_tick`
    /// is one u64 compare per iteration — zero allocation until the book
    /// actually moves (never, on a fault-free run).
    last_gossip_version: u64,
}

struct EventLoop {
    /// Registered with the poller as slots `1..=peers.len()`.
    peers: Vec<Peer>,
    /// Poller slot 0.
    waker_rx: TcpStream,
    commands: Receiver<Command>,
    inbox: Sender<InboxEvent>,
    poller: Box<dyn ReadinessPoller>,
    counters: LoopCounters,
    /// Present only on resilient planes; `None` leaves every code path of
    /// the default plane byte-identical.
    resilient: Option<ResilientState>,
}

impl EventLoop {
    fn run(mut self) {
        let mut read_buf = vec![0u8; READ_CHUNK];
        // Slot layout: 0 = waker, 1..=peers = peer streams, and on resilient
        // planes one more for the always-open listener.
        let slots = self.peers.len() + 1 + usize::from(self.resilient.is_some());
        let mut interest = vec![Readiness::none(); slots];
        let mut ready = vec![Readiness::none(); slots];
        let mut shutting_down = false;
        // Armed on the first shutdown iteration that still has unacked
        // retained frames: the graceful-termination linger window.
        let mut linger_deadline: Option<Instant> = None;
        let mut progressed = true;
        loop {
            // 1. Commands — but only while below the high-water mark: a slow
            // peer's growing queue stops the intake, the bounded channel
            // fills, and the producer blocks in `broadcast`.
            loop {
                if !self.peers.iter().all(|p| p.queued_bytes < WRITE_HIGH_WATER) {
                    // Intake gated: backpressure is reaching the producer.
                    self.counters.high_water_stalls.incr();
                    break;
                }
                match self.commands.try_recv() {
                    Ok(Command::Send(bytes)) => {
                        for peer in &mut self.peers {
                            peer.enqueue(&bytes, &self.counters.queued_bytes_peak);
                        }
                        progressed = true;
                    }
                    Ok(Command::SendRetained { superstep, batch }) => {
                        if let Some(r) = self.resilient.as_mut() {
                            // Retain before enqueueing: a frame is replayable
                            // the moment any peer could have missed it.
                            r.replay.append(superstep, &batch, count_frames(&batch));
                        }
                        for peer in &mut self.peers {
                            peer.enqueue(&batch, &self.counters.queued_bytes_peak);
                        }
                        progressed = true;
                    }
                    Ok(Command::Ack { superstep, batch }) => {
                        if let Some(r) = self.resilient.as_mut() {
                            r.last_ack = Some(r.last_ack.map_or(superstep, |s| s.max(superstep)));
                        }
                        for peer in &mut self.peers {
                            peer.enqueue(&batch, &self.counters.queued_bytes_peak);
                            if peer.write_open {
                                // Queued while writable counts as delivered:
                                // the exit path flushes queues before close.
                                peer.ack_delivered = Some(
                                    peer.ack_delivered.map_or(superstep, |s| s.max(superstep)),
                                );
                            }
                        }
                        progressed = true;
                    }
                    Ok(Command::Abort(batch)) => {
                        if let Some(r) = self.resilient.as_mut() {
                            r.aborted = true;
                        }
                        for peer in &mut self.peers {
                            peer.enqueue(&batch, &self.counters.queued_bytes_peak);
                        }
                        progressed = true;
                    }
                    Ok(Command::Sever(peer_id)) => {
                        if let Some(peer) = self.peers.iter_mut().find(|p| p.id == peer_id) {
                            sever_poll_peer(peer);
                        }
                        progressed = true;
                    }
                    Ok(Command::Crash) => {
                        // kill -9: everything closes abruptly — queued bytes
                        // die with the process, no goodbye, no linger, no
                        // recovery served. Returning drops the listener too.
                        for peer in &mut self.peers {
                            let _ = peer.stream.shutdown(Shutdown::Both);
                            peer.read_open = false;
                            peer.write_open = false;
                            peer.outbound.clear();
                            peer.queued_bytes = 0;
                        }
                        return;
                    }
                    Ok(Command::Shutdown) => shutting_down = true,
                    // A disconnected sender means the plane was dropped; it
                    // always sends Shutdown first, but be safe either way.
                    Err(TryRecvError::Disconnected) => shutting_down = true,
                    Err(TryRecvError::Empty) => break,
                }
                if shutting_down {
                    break;
                }
            }

            // 1b. Graceful-termination linger: a finished endpoint must keep
            // serving (accepts, replay, recovery) while a *down* peer might
            // still need something only we can give it — frames we retain
            // (it has not acked everything) or our latest ack (acks travel
            // unretained, so one lost to a cut leaves the peer unable to
            // trim its own log and finish its own linger). Exiting early
            // slams the listener on a peer cut near the end of the run; its
            // redials bounce until its deadline declares us lost. Up links
            // owe nothing (queued bytes reach the peer even after we close),
            // gone peers can never come back, and an aborted run never
            // lingers. Bounded by the reconnect deadline (a peer down that
            // long is given up by recovery, which forgets it from the log).
            let lingering = shutting_down
                && match self.resilient.as_ref() {
                    Some(r) if !r.aborted => {
                        let replay_needed = r.replay.retained_supersteps() > 0;
                        let owes_a_down_peer =
                            self.peers.iter().zip(&r.down).any(|(peer, down)| {
                                down.is_some()
                                    && (replay_needed
                                        || r.last_ack
                                            .is_some_and(|ack| peer.ack_delivered != Some(ack)))
                            });
                        owes_a_down_peer && {
                            let deadline = *linger_deadline.get_or_insert_with(|| {
                                Instant::now() + r.config.reconnect_deadline
                            });
                            Instant::now() < deadline
                        }
                    }
                    _ => false,
                };

            // 1c. Resilient recovery: declare deadline-expired peers lost and
            // redial lower-id down peers (higher-id ones come back through
            // the listener). Skipped once shutting down past the linger — the
            // run is over.
            if !shutting_down || lingering {
                if let Some(r) = self.resilient.as_mut() {
                    progressed |= recovery_tick(
                        &mut self.peers,
                        r,
                        &self.inbox,
                        self.poller.as_mut(),
                        &self.counters,
                    );
                    progressed |= gossip_tick(&mut self.peers, r, &self.counters);
                }
            }

            // 2. Exit once told to stop, done lingering, and every queue is
            // flushed (or its peer unreachable). Half-close so peers see a
            // clean EOF after our final bytes.
            if shutting_down
                && !lingering
                && self
                    .peers
                    .iter()
                    .all(|p| p.outbound.is_empty() || !p.write_open)
            {
                // Announce the clean exit so peers treat the coming EOFs as
                // a deliberate close, not a cut to recover from. Best-effort
                // (9 bytes into a drained socket buffer).
                if let Some(r) = self.resilient.as_ref() {
                    let mut goodbye = Vec::new();
                    Frame::Goodbye { sender: r.id }.encode(&mut goodbye);
                    for peer in self.peers.iter().filter(|p| p.write_open) {
                        let _ = (&peer.stream).write_all(&goodbye);
                    }
                }
                for peer in &self.peers {
                    let _ = peer.stream.shutdown(Shutdown::Write);
                }
                return;
            }

            // 3. Readiness round. Zero timeout while work remains from the
            // previous round, so a burst is serviced without sleeping.
            interest[0] = Readiness {
                readable: true,
                writable: false,
            };
            for (slot, peer) in interest[1..].iter_mut().zip(&self.peers) {
                slot.readable = peer.read_open;
                slot.writable = peer.write_open && !peer.outbound.is_empty();
            }
            if self.resilient.is_some() {
                interest[1 + self.peers.len()] = Readiness {
                    readable: true,
                    writable: false,
                };
            }
            let timeout = if progressed {
                Duration::ZERO
            } else {
                POLL_TIMEOUT
            };
            if self.poller.poll(&interest, &mut ready, timeout).is_err() {
                // A broken poller cannot drive any stream: report every live
                // peer lost, then park on the command channel until the
                // plane shuts us down (no point spinning on a dead poller).
                for peer in &mut self.peers {
                    if peer.read_open {
                        peer.read_open = false;
                        self.counters.peers_lost.incr();
                        let _ = self
                            .inbox
                            .send(InboxEvent::PeerLost(peer.id, PlaneError::Disconnected));
                    }
                    peer.write_open = false;
                    peer.outbound.clear();
                    peer.queued_bytes = 0;
                }
                loop {
                    match self.commands.recv() {
                        Ok(Command::Shutdown) | Err(_) => return,
                        Ok(_) => continue,
                    }
                }
            }

            progressed = false;
            if ready[0].readable {
                progressed |= drain_waker(&self.waker_rx, &mut read_buf);
            }
            match self.resilient.as_mut() {
                None => {
                    for (peer, state) in self.peers.iter_mut().zip(&ready[1..]) {
                        if state.readable && peer.read_open {
                            progressed |=
                                pump_reads(peer, &mut read_buf, &self.inbox, &self.counters);
                        }
                        if state.writable && peer.write_open && !peer.outbound.is_empty() {
                            progressed |= pump_writes(peer, &self.counters);
                        }
                    }
                }
                Some(r) => {
                    for (idx, peer) in self.peers.iter_mut().enumerate() {
                        let state = ready[1 + idx];
                        if state.readable && peer.read_open {
                            let (prog, ended) =
                                pump_reads_resilient(peer, &mut read_buf, &self.inbox, r);
                            progressed |= prog;
                            if ended {
                                // A stream end is a *cut*, not a loss: park
                                // the link and start the recovery clock. Only
                                // the reconnect deadline makes it terminal.
                                enter_down(peer, idx, r, &self.inbox);
                                progressed = true;
                            }
                        }
                        if state.writable && peer.write_open && !peer.outbound.is_empty() {
                            progressed |= pump_writes(peer, &self.counters);
                        }
                    }
                    if (!shutting_down || lingering) && ready[1 + self.peers.len()].readable {
                        progressed |= accept_poll_connections(
                            &mut self.peers,
                            r,
                            &self.inbox,
                            self.poller.as_mut(),
                            &self.counters,
                        );
                    }
                }
            }
        }
    }
}

/// How long a resume-handshake read may block the event loop (or an
/// establishment) before the counterpart is written off as a stray.
const RESUME_HANDSHAKE_CAP: Duration = Duration::from_secs(2);

/// Chaos injection on one peer link: flush everything queued (blocking — a
/// sever is deterministic, the peer must receive the full superstep), then
/// close only our write half. The peer observes a complete stream followed by
/// a FIN — exactly a superstep-boundary failure; its recovery then closes its
/// socket, which our read path observes, parking our side of the link too.
fn sever_poll_peer(peer: &mut Peer) {
    if !peer.write_open {
        return;
    }
    let _ = peer.stream.set_nonblocking(false);
    while let Some((bytes, offset)) = peer.outbound.pop_front() {
        if peer.stream.write_all(&bytes[offset..]).is_err() {
            break;
        }
    }
    peer.outbound.clear();
    peer.queued_bytes = 0;
    let _ = peer.stream.set_nonblocking(true);
    let _ = peer.stream.shutdown(Shutdown::Write);
    peer.write_open = false;
}

/// Park a peer whose stream ended: close it fully, reset the decoder (a torn
/// frame tail is re-delivered by replay, not resumed mid-frame), and start
/// the recovery clock — unless the peer is already terminally gone or
/// announced a clean exit with a goodbye.
fn enter_down(peer: &mut Peer, idx: usize, r: &mut ResilientState, inbox: &Sender<InboxEvent>) {
    let _ = peer.stream.shutdown(Shutdown::Both);
    peer.read_open = false;
    peer.write_open = false;
    peer.outbound.clear();
    peer.queued_bytes = 0;
    // Anything queued (acks included) may have died with the stream; the
    // reinstall's repeated ack is what re-establishes delivery.
    peer.ack_delivered = None;
    peer.decoder = FrameDecoder::new();
    if r.gone[idx] {
        return;
    }
    if peer.done {
        // Announced clean exit: nothing to recover — no redial clock, no
        // linger obligation — but the collector must still learn the stream
        // is over, with the same benign-after-end-of-superstep semantics as
        // a plain plane's EOF.
        let _ = inbox.send(InboxEvent::PeerLost(peer.id, PlaneError::Disconnected));
        return;
    }
    let now = Instant::now();
    r.down[idx] = Some(DownState {
        deadline: now + r.config.reconnect_deadline,
        next_retry: now,
        backoff: r.config.backoff_for(r.id, peer.id),
    });
}

/// One round of recovery: expire deadlines into terminal `PeerLost`, redial
/// lower-id down peers whose backoff elapsed. Higher-id peers redial us; we
/// only watch their deadline here.
fn recovery_tick(
    peers: &mut [Peer],
    r: &mut ResilientState,
    inbox: &Sender<InboxEvent>,
    poller: &mut dyn ReadinessPoller,
    counters: &LoopCounters,
) -> bool {
    let mut progressed = false;
    for idx in 0..peers.len() {
        let (deadline, next_retry) = match &r.down[idx] {
            Some(d) => (d.deadline, d.next_retry),
            None => continue,
        };
        let now = Instant::now();
        if now >= deadline {
            r.down[idx] = None;
            r.gone[idx] = true;
            r.replay.forget(peers[idx].id);
            counters.peers_lost.incr();
            let _ = inbox.send(InboxEvent::PeerLost(
                peers[idx].id,
                PlaneError::Disconnected,
            ));
            progressed = true;
            continue;
        }
        let peer_id = peers[idx].id;
        if peer_id < r.id && now >= next_retry {
            match dial_poll_link(r, peer_id) {
                Some((stream, peer_resume_from)) => {
                    progressed = true;
                    install_poll_link(
                        peers,
                        idx,
                        stream,
                        peer_resume_from,
                        r,
                        inbox,
                        poller,
                        counters,
                    );
                }
                None => {
                    if let Some(d) = r.down[idx].as_mut() {
                        d.next_retry = Instant::now() + d.backoff.next_delay();
                    }
                }
            }
        }
    }
    progressed
}

/// Anti-entropy push, one check per loop iteration: if the address book
/// moved past what this endpoint last gossiped, flood the delta to every
/// writable peer as an unretained tag-6 frame. Receivers whose merge changes
/// nothing do not bump their own version, so the flood converges. Fault-free
/// runs never get past the version compare — the book only moves when an
/// address changes.
fn gossip_tick(peers: &mut [Peer], r: &mut ResilientState, counters: &LoopCounters) -> bool {
    let Some(membership) = r.config.membership.as_ref() else {
        return false;
    };
    let version = membership.version();
    if version <= r.last_gossip_version {
        return false;
    }
    r.last_gossip_version = version;
    let payload = membership.delta_payload();
    let mut buf = r.pool.checkout();
    Frame::Membership {
        sender: r.id,
        payload: payload.into(),
    }
    .encode(&mut buf);
    let batch = Arc::new(buf);
    for peer in peers.iter_mut() {
        peer.enqueue(&batch, &counters.queued_bytes_peak);
    }
    true
}

/// One bounded redial attempt (connect + resume handshake). The target
/// address comes from the gossiped book when membership is live — a
/// replacement process may have adopted the peer's id at a fresh address.
fn dial_poll_link(r: &mut ResilientState, peer: ServerId) -> Option<(TcpStream, u32)> {
    let addr = r.config.peer_addr(peer, &r.peer_addrs);
    let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(100)).ok()?;
    resume_dial_handshake(
        stream,
        r.num_servers,
        r.id,
        peer,
        r.recv_cursor[peer as usize],
        r.config.handshake_fault,
        &mut r.fault_budget,
    )
}

/// Dial-side half of the `GHHR` resume handshake: send our hello (or a
/// chaos-sabotaged one, consuming fault budget), read and validate the reply.
/// Returns the stream plus the superstep the peer asks us to resume from.
fn resume_dial_handshake(
    mut stream: TcpStream,
    num_servers: u32,
    id: ServerId,
    peer: ServerId,
    resume_from: u32,
    fault: Option<HandshakeFault>,
    fault_budget: &mut u32,
) -> Option<(TcpStream, u32)> {
    let _ = stream.set_nodelay(true);
    let hello = ResumeHello {
        cluster_size: num_servers,
        sender: id,
        resume_from,
    };
    let encoded = hello.encode();
    if let Some(fault) = fault {
        if *fault_budget > 0 {
            *fault_budget -= 1;
            match fault {
                HandshakeFault::Torn { bytes } => {
                    let cut = bytes.min(RESUME_HELLO_LEN);
                    let _ = stream.write_all(&encoded[..cut]);
                }
                HandshakeFault::Duplicate => {
                    let _ = stream
                        .write_all(&encoded)
                        .and_then(|_| stream.write_all(&encoded));
                }
                HandshakeFault::Drop => {}
            }
            return None; // dropping `stream` closes the sabotaged attempt
        }
    }
    stream.write_all(&encoded).ok()?;
    let _ = stream.set_read_timeout(Some(RESUME_HANDSHAKE_CAP));
    let mut reply = [0u8; RESUME_HELLO_LEN];
    stream.read_exact(&mut reply).ok()?;
    let _ = stream.set_read_timeout(None);
    let reply = ResumeHello::decode(&reply).ok()?;
    reply.check(num_servers, id, Some(peer)).ok()?;
    Some((stream, reply.resume_from))
}

/// Accept-side half of the `GHHR` resume handshake: read and validate the
/// dialer's hello (must come from a higher-id peer — dial direction is
/// fixed), reply with our own cursor for that peer. Any malformed, stale or
/// misdirected hello drops the connection without disturbing the plane.
fn resume_accept_handshake(
    mut stream: TcpStream,
    num_servers: u32,
    id: ServerId,
    cursor_of: &dyn Fn(ServerId) -> u32,
) -> Option<(ServerId, TcpStream, u32)> {
    stream.set_nonblocking(false).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(RESUME_HANDSHAKE_CAP));
    let mut buf = [0u8; RESUME_HELLO_LEN];
    stream.read_exact(&mut buf).ok()?;
    let hello = ResumeHello::decode(&buf).ok()?;
    hello.check(num_servers, id, None).ok()?;
    if hello.sender <= id {
        return None;
    }
    let reply = ResumeHello {
        cluster_size: num_servers,
        sender: id,
        resume_from: cursor_of(hello.sender),
    };
    stream.write_all(&reply.encode()).ok()?;
    let _ = stream.set_read_timeout(None);
    Some((hello.sender, stream, hello.resume_from))
}

/// Drain the listener's accept queue: every valid reconnect supersedes
/// whatever stream its slot holds and is installed with replay.
fn accept_poll_connections(
    peers: &mut [Peer],
    r: &mut ResilientState,
    inbox: &Sender<InboxEvent>,
    poller: &mut dyn ReadinessPoller,
    counters: &LoopCounters,
) -> bool {
    let mut progressed = false;
    loop {
        let stream = match r.listener.accept() {
            Ok((stream, _from)) => stream,
            Err(_) => break, // WouldBlock or a transient accept error
        };
        // Membership dispatch first: a restarted process runs seed discovery
        // before it can resume, and its `GHHM` exchanges land on this same
        // listener. Serving one may teach us a replacement's fresh address;
        // the next `gossip_tick` floods it to the survivors.
        if let Some(m) = r.config.membership.as_ref() {
            if stream.set_nonblocking(false).is_err() {
                continue;
            }
            match crate::membership::peek_magic(&stream) {
                Ok(magic) if magic == crate::membership::MEMBERSHIP_MAGIC => {
                    let mut s = stream;
                    let _ = m.serve_stream(&mut s);
                    progressed = true;
                    continue;
                }
                Ok(_) => {}
                Err(_) => continue, // silent or dead stray
            }
        }
        let (sender, stream, peer_resume_from) =
            match resume_accept_handshake(stream, r.num_servers, r.id, &|s| {
                r.recv_cursor[s as usize]
            }) {
                Some(accepted) => accepted,
                None => continue,
            };
        // Higher-id sender (checked above): its slot is `sender - 1`.
        let idx = (sender - 1) as usize;
        if r.gone[idx] {
            continue; // terminally lost peers stay dead
        }
        // Supersede the old stream (cut, or abandoned by the peer). Unread
        // tail bytes on it are torn-tail frames ≥ the cursor we just sent —
        // the peer replays them on the new stream and the collector dedups.
        let _ = peers[idx].stream.shutdown(Shutdown::Both);
        progressed = true;
        install_poll_link(
            peers,
            idx,
            stream,
            peer_resume_from,
            r,
            inbox,
            poller,
            counters,
        );
    }
    progressed
}

/// Adopt a handshaken stream as the live link for slot `idx`: replay what
/// the peer still needs, announce the resume, and rearm the poller slot.
/// Single-threaded, so the replay snapshot and the install are atomic with
/// respect to broadcast intake — replay is gap-free by construction.
#[allow(clippy::too_many_arguments)]
fn install_poll_link(
    peers: &mut [Peer],
    idx: usize,
    stream: TcpStream,
    peer_resume_from: u32,
    r: &mut ResilientState,
    inbox: &Sender<InboxEvent>,
    poller: &mut dyn ReadinessPoller,
    counters: &LoopCounters,
) {
    let peer_id = peers[idx].id;
    let (blob, frames) = match r.replay.replay_from(peer_resume_from) {
        Ok(snapshot) => snapshot,
        Err(e) => {
            // The peer wants frames already trimmed below the replay floor:
            // permanently unrecoverable, not a transient failure.
            r.down[idx] = None;
            r.gone[idx] = true;
            r.replay.forget(peer_id);
            counters.peers_lost.incr();
            let _ = inbox.send(InboxEvent::PeerLost(
                peer_id,
                PlaneError::Protocol(e.to_string()),
            ));
            return;
        }
    };
    if stream.set_nonblocking(true).is_err() || poller.reregister(1 + idx, &stream).is_err() {
        return; // could not adopt the stream; recovery keeps retrying
    }
    let peer = &mut peers[idx];
    peer.stream = stream;
    peer.decoder = FrameDecoder::new();
    peer.outbound.clear();
    peer.queued_bytes = 0;
    peer.read_open = true;
    peer.write_open = true;
    // The resume event precedes everything the new stream can deliver
    // (frames only surface through pump_reads, which runs after this
    // returns): the collector purges the old torn tail at the event, then
    // dedups whatever the replay below re-delivers.
    let _ = inbox.send(InboxEvent::PeerResumed(peer_id));
    r.reconnects.incr();
    if !blob.is_empty() {
        let mut buf = r.pool.checkout();
        buf.extend_from_slice(&blob);
        peer.enqueue(&Arc::new(buf), &counters.queued_bytes_peak);
        r.replayed_frames.add(frames);
    }
    // Repeat our latest ack on the new link: the peer may have missed it
    // while down, and it needs the current floor to trim its own replay log
    // (and finish its own linger at shutdown).
    if let Some(superstep) = r.last_ack {
        let mut buf = r.pool.checkout();
        Frame::Ack {
            sender: r.id,
            superstep,
        }
        .encode(&mut buf);
        peer.enqueue(&Arc::new(buf), &counters.queued_bytes_peak);
    }
    peer.ack_delivered = r.last_ack;
    // A rejoining (restarted) peer is a live participant again.
    peer.done = false;
    r.down[idx] = None;
}

/// Resilient twin of [`pump_reads`]: same decode loop, but acks are
/// intercepted into the replay log, end-of-superstep markers raise the
/// peer's receive cursor, and *any* stream end — EOF, torn frame, corrupt
/// bytes, sender mismatch, I/O error — is reported as `(.., true)` for the
/// caller to park the link instead of declaring the peer lost.
fn pump_reads_resilient(
    peer: &mut Peer,
    buf: &mut [u8],
    inbox: &Sender<InboxEvent>,
    r: &mut ResilientState,
) -> (bool, bool) {
    let mut progressed = false;
    loop {
        match (&peer.stream).read(buf) {
            Ok(0) => return (true, true),
            Ok(n) => {
                progressed = true;
                peer.bytes_in.add(n as u64);
                peer.decoder.push(&buf[..n]);
                loop {
                    match peer.decoder.next_frame() {
                        Ok(Some(frame)) => {
                            if frame.sender() != peer.id {
                                return (true, true); // poisoned stream: cut it
                            }
                            peer.frames_in.incr();
                            match frame {
                                Frame::Ack { sender, superstep } => {
                                    r.replay.ack(sender, superstep);
                                    continue; // transport-level, never forwarded
                                }
                                Frame::Goodbye { .. } => {
                                    // Deliberate clean exit: the EOF that
                                    // follows is not a cut. Never forwarded.
                                    peer.done = true;
                                    continue;
                                }
                                Frame::Membership { ref payload, .. } => {
                                    // Address-book gossip: merge it; the next
                                    // `gossip_tick` pushes any news onward.
                                    // Never forwarded to the collector; a
                                    // malformed payload is dropped (the
                                    // anti-entropy cadence re-converges).
                                    if let Some(m) = r.config.membership.as_ref() {
                                        if let Ok(msg) =
                                            crate::membership::MembershipMsg::decode(payload)
                                        {
                                            let _ = m.merge_msg(&msg);
                                        }
                                    }
                                    continue;
                                }
                                Frame::EndOfSuperstep { superstep, .. } => {
                                    let cursor = &mut r.recv_cursor[peer.id as usize];
                                    *cursor = (*cursor).max(superstep.saturating_add(1));
                                }
                                _ => {}
                            }
                            if inbox.send(InboxEvent::Frame(frame)).is_err() {
                                // Plane dropped; stop decoding, no recovery.
                                peer.read_open = false;
                                return (true, false);
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return (true, true),
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return (progressed, false),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return (true, true),
        }
    }
}

/// Blocking `GHHR` establishment for the resilient poll plane: dial every
/// lower-id peer (retrying — and spending any chaos fault budget — until the
/// deadline), then accept every higher-id peer, exchanging resume hellos in
/// both directions. The listener is borrowed, not consumed: it stays open
/// with the event loop for the whole run.
fn establish_resilient_streams(
    id: ServerId,
    num_servers: u32,
    listener: &TcpListener,
    peer_addrs: &[SocketAddr],
    timeout: Duration,
    config: &ResilienceConfig,
    fault_budget: &mut u32,
) -> std::io::Result<Vec<(ServerId, TcpStream, u32)>> {
    let deadline = Instant::now() + timeout;
    let mut streams: Vec<(ServerId, TcpStream, u32)> = Vec::new();
    for peer in 0..id {
        loop {
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("server {id}: timed out dialing server {peer}"),
                ));
            }
            if let Ok(stream) = TcpStream::connect(peer_addrs[peer as usize]) {
                if let Some((stream, resume)) = resume_dial_handshake(
                    stream,
                    num_servers,
                    id,
                    peer,
                    config.resume_from,
                    config.handshake_fault,
                    fault_budget,
                ) {
                    streams.push((peer, stream, resume));
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    listener.set_nonblocking(true)?;
    let needed = (num_servers - id - 1) as usize;
    let mut seen = vec![false; num_servers as usize];
    let mut accepted = 0usize;
    while accepted < needed {
        if Instant::now() >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("server {id}: timed out waiting for higher-id peers to dial in"),
            ));
        }
        match listener.accept() {
            Ok((stream, _from)) => {
                // Peers still finishing their own seed discovery dial `GHHM`
                // exchanges at this listener mid-establishment; serve them so
                // their books converge and they can join.
                if let Some(m) = config.membership.as_ref() {
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    match crate::membership::peek_magic(&stream) {
                        Ok(magic) if magic == crate::membership::MEMBERSHIP_MAGIC => {
                            let mut s = stream;
                            let _ = m.serve_stream(&mut s);
                            continue;
                        }
                        Ok(_) => {}
                        Err(_) => continue,
                    }
                }
                if let Some((sender, stream, resume)) =
                    resume_accept_handshake(stream, num_servers, id, &|_| config.resume_from)
                {
                    if !seen[sender as usize] {
                        seen[sender as usize] = true;
                        accepted += 1;
                        streams.push((sender, stream, resume));
                    }
                }
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    streams.sort_by_key(|&(peer, _, _)| peer);
    Ok(streams)
}

/// Read one peer's socket until it would block, feeding the frame decoder and
/// forwarding complete frames. Any stream end — clean EOF, mid-frame EOF,
/// corruption, I/O error — reports a terminal [`InboxEvent::PeerLost`] with
/// the same attribution the blocking `SocketPlane` reader threads use.
/// Returns whether any bytes were consumed.
fn pump_reads(
    peer: &mut Peer,
    buf: &mut [u8],
    inbox: &Sender<InboxEvent>,
    counters: &LoopCounters,
) -> bool {
    let mut progressed = false;
    loop {
        match (&peer.stream).read(buf) {
            Ok(0) => {
                let error = if peer.decoder.is_clean() {
                    PlaneError::Disconnected
                } else {
                    PlaneError::Protocol(format!(
                        "stream from server {} ended inside a frame",
                        peer.id
                    ))
                };
                report_loss(peer, inbox, error, counters);
                return true;
            }
            Ok(n) => {
                progressed = true;
                peer.bytes_in.add(n as u64);
                peer.decoder.push(&buf[..n]);
                loop {
                    match peer.decoder.next_frame() {
                        Ok(Some(frame)) => {
                            if frame.sender() != peer.id {
                                let sender = frame.sender();
                                report_loss(
                                    peer,
                                    inbox,
                                    PlaneError::Protocol(format!(
                                        "stream from server {} carried a frame claiming \
                                         sender {sender}",
                                        peer.id
                                    )),
                                    counters,
                                );
                                return true;
                            }
                            peer.frames_in.incr();
                            if inbox.send(InboxEvent::Frame(frame)).is_err() {
                                // Plane dropped; stop decoding, the loop will
                                // be shut down by the command channel.
                                peer.read_open = false;
                                return true;
                            }
                        }
                        Ok(None) => break,
                        Err(FrameError::Corrupt(m)) | Err(FrameError::Io(m)) => {
                            report_loss(
                                peer,
                                inbox,
                                PlaneError::Protocol(format!(
                                    "corrupt frame from server {}: {m}",
                                    peer.id
                                )),
                                counters,
                            );
                            return true;
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return progressed,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                report_loss(peer, inbox, PlaneError::Disconnected, counters);
                return true;
            }
        }
    }
}

fn report_loss(
    peer: &mut Peer,
    inbox: &Sender<InboxEvent>,
    error: PlaneError,
    counters: &LoopCounters,
) {
    peer.read_open = false;
    counters.peers_lost.incr();
    let _ = inbox.send(InboxEvent::PeerLost(peer.id, error));
}

/// Write queued bytes to one peer until its socket would block or the queue
/// drains, gathering up to [`MAX_WRITE_VECTORS`] queued batches into a single
/// `write_vectored` call — one syscall moves everything the queue holds,
/// however the batches were produced. A write failure discards the queue and
/// closes the write half — the peer's own read path is what attributes the
/// loss. Returns whether any bytes moved.
fn pump_writes(peer: &mut Peer, counters: &LoopCounters) -> bool {
    let mut progressed = false;
    loop {
        let mut iov = [IoSlice::new(&[]); MAX_WRITE_VECTORS];
        let mut vectors = 0usize;
        for (bytes, offset) in peer.outbound.iter().take(MAX_WRITE_VECTORS) {
            iov[vectors] = IoSlice::new(&bytes[*offset..]);
            vectors += 1;
        }
        if vectors == 0 {
            return progressed;
        }
        counters.write_vectored_calls.incr();
        let wrote = match (&peer.stream).write_vectored(&iov[..vectors]) {
            Ok(0) => {
                // A zero-length write on non-empty slices: treat as a dead
                // stream rather than spinning.
                peer.write_open = false;
                peer.queued_bytes = 0;
                peer.outbound.clear();
                return progressed;
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return progressed,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                peer.write_open = false;
                peer.queued_bytes = 0;
                peer.outbound.clear();
                return progressed;
            }
        };
        progressed = true;
        counters.bytes_written.add(wrote as u64);
        peer.queued_bytes -= wrote;
        // Advance the queue past the written bytes (a short write can end
        // mid-batch; the remainder goes out next readiness round).
        let mut remaining = wrote;
        while remaining > 0 {
            let (bytes, offset) = peer
                .outbound
                .front_mut()
                .expect("written bytes came from the queue");
            let left = bytes.len() - *offset;
            if remaining >= left {
                remaining -= left;
                peer.outbound.pop_front();
            } else {
                *offset += remaining;
                remaining = 0;
            }
        }
    }
}

/// Drain the waker pipe (its only payload is "wake up").
fn drain_waker(waker: &TcpStream, buf: &mut [u8]) -> bool {
    let mut progressed = false;
    loop {
        match (&*waker).read(buf) {
            Ok(0) => return progressed, // plane dropped its write end
            Ok(_) => progressed = true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return progressed, // WouldBlock or a dead waker: either way, proceed
        }
    }
}

/// A connected loopback TCP pair used as a portable waker: the write end
/// lives with the plane, the read end sits in the poll set. (Unix pipes would
/// do on Unix; a loopback pair works on every std target and registers with
/// any [`ReadinessPoller`].)
fn waker_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
    let addr = listener.local_addr()?;
    let tx = TcpStream::connect(addr)?;
    // Guard against a stranger racing onto the transient listener.
    let local = tx.local_addr()?;
    let rx = loop {
        let (candidate, peer_addr) = listener.accept()?;
        if peer_addr == local {
            break candidate;
        }
    };
    tx.set_nodelay(true)?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn bind_cluster(n: u32) -> (Vec<BoundPollPlane>, Vec<SocketAddr>) {
        let bound: Vec<BoundPollPlane> = (0..n)
            .map(|sid| PollPlane::bind(sid, n, "127.0.0.1:0").unwrap())
            .collect();
        let addrs = bound.iter().map(|b| b.local_addr().unwrap()).collect();
        (bound, addrs)
    }

    fn establish_all(bound: Vec<BoundPollPlane>, addrs: &[SocketAddr]) -> Vec<PollPlane> {
        thread::scope(|scope| {
            let handles: Vec<_> = bound
                .into_iter()
                .map(|b| scope.spawn(move || b.establish(addrs).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn config_errors_are_rejected_at_bind() {
        assert!(PollPlane::bind(0, 0, "127.0.0.1:0").is_err());
        assert!(PollPlane::bind(3, 3, "127.0.0.1:0").is_err());
        assert!(PollPlane::bind(0, 1, "127.0.0.1:0").is_ok());
    }

    #[test]
    fn single_server_poll_plane_collects_nothing() {
        let (bound, addrs) = bind_cluster(1);
        let mut plane = bound.into_iter().next().unwrap().establish(&addrs).unwrap();
        plane.end_superstep(0).unwrap();
        assert_eq!(plane.collect(0).unwrap(), Vec::<WireMessage>::new());
    }

    #[test]
    fn all_to_all_delivery_over_the_event_loop() {
        let (bound, addrs) = bind_cluster(3);
        let planes = establish_all(bound, &addrs);
        let results: Vec<Vec<usize>> = thread::scope(|scope| {
            let handles: Vec<_> = planes
                .into_iter()
                .map(|mut p| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for s in 0..4u32 {
                            for _ in 0..=s {
                                p.broadcast(s, &[p.server_id() as u8, s as u8]).unwrap();
                            }
                            p.end_superstep(s).unwrap();
                            let got = p.collect(s).unwrap();
                            assert!(got.iter().all(|w| w.len() == 2 && w[1] == s as u8));
                            seen.push(got.len());
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for seen in results {
            assert_eq!(seen, vec![2, 4, 6, 8]);
        }
    }

    /// Same exchange, poller forced to the portable spin fallback: the
    /// readiness seam (not just the Linux syscall shim) carries the protocol.
    #[test]
    fn all_to_all_delivery_with_the_spin_poller() {
        let (bound, addrs) = bind_cluster(2);
        let planes: Vec<PollPlane> = thread::scope(|scope| {
            let handles: Vec<_> = bound
                .into_iter()
                .map(|b| {
                    let addrs = &addrs;
                    scope.spawn(move || {
                        b.establish_with(
                            addrs,
                            DEFAULT_ESTABLISH_TIMEOUT,
                            Box::new(SpinPoller::new()),
                        )
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        thread::scope(|scope| {
            for mut p in planes {
                scope.spawn(move || {
                    for s in 0..3u32 {
                        p.broadcast(s, &[p.server_id() as u8]).unwrap();
                        p.end_superstep(s).unwrap();
                        assert_eq!(p.collect(s).unwrap().len(), 1);
                    }
                });
            }
        });
    }

    #[test]
    fn abort_crosses_the_event_loop() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_all(bound, &addrs).into_iter();
        let mut a = planes.next().unwrap();
        let mut b = planes.next().unwrap();
        b.abort();
        a.end_superstep(0).unwrap();
        assert_eq!(a.collect(0), Err(PlaneError::Aborted(1)));
    }

    #[test]
    fn dropped_peer_surfaces_as_disconnect() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_all(bound, &addrs).into_iter();
        let mut a = planes.next().unwrap();
        let b = planes.next().unwrap();
        drop(b); // peer flushes (nothing), half-closes, exits its loop
        assert_eq!(a.collect(0), Err(PlaneError::Disconnected));
    }

    /// Frames queued before a drop must still reach the peer: a worker that
    /// finishes the run and drops its plane has, by then, broadcast its last
    /// end-of-superstep marker — the loop flushes before half-closing.
    #[test]
    fn drop_flushes_queued_frames_before_closing() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_all(bound, &addrs).into_iter();
        let mut a = planes.next().unwrap();
        let mut b = planes.next().unwrap();
        b.broadcast(0, &[42]).unwrap();
        b.end_superstep(0).unwrap();
        drop(b);
        let wires = a.collect(0).unwrap();
        assert_eq!(wires.len(), 1);
        assert_eq!(&wires[0][..], &[42]);
    }

    /// A large broadcast volume must flow even though both sides write
    /// before either reads — the loop's concurrent read/write pumping is
    /// what makes this deadlock-free (a blocking all-write-then-read
    /// design would stall once both TCP buffers filled).
    #[test]
    fn bulk_bidirectional_traffic_does_not_deadlock() {
        let (bound, addrs) = bind_cluster(2);
        let planes = establish_all(bound, &addrs);
        let payload = vec![7u8; 256 * 1024];
        thread::scope(|scope| {
            for mut p in planes {
                let payload = &payload;
                scope.spawn(move || {
                    for s in 0..3u32 {
                        for _ in 0..8 {
                            p.broadcast(s, payload).unwrap();
                        }
                        p.end_superstep(s).unwrap();
                        let got = p.collect(s).unwrap();
                        assert_eq!(got.len(), 8);
                        assert!(got.iter().all(|w| w.len() == payload.len()));
                    }
                });
            }
        });
    }

    #[test]
    fn missing_peer_times_out_instead_of_hanging() {
        let bound = PollPlane::bind(1, 2, "127.0.0.1:0").unwrap();
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let addrs = vec![dead_addr, bound.local_addr().unwrap()];
        let err = bound
            .establish_with_timeout(&addrs, Duration::from_millis(300))
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    }

    // The "exactly one event-loop thread per plane" and clean-shutdown
    // assertions live in `tests/poll_threads.rs`: thread counts are
    // process-wide, so they need a test binary of their own rather than a
    // unit test racing the rest of this crate's parallel suite.
}

#[cfg(test)]
mod resilient_tests {
    use super::*;
    use crate::chaos::{CutPlan, FaultPlane};
    use std::thread;

    fn bind_cluster(n: u32) -> (Vec<BoundPollPlane>, Vec<SocketAddr>) {
        let bound: Vec<BoundPollPlane> = (0..n)
            .map(|sid| PollPlane::bind(sid, n, "127.0.0.1:0").unwrap())
            .collect();
        let addrs = bound.iter().map(|b| b.local_addr().unwrap()).collect();
        (bound, addrs)
    }

    fn establish_resilient_all(
        bound: Vec<BoundPollPlane>,
        addrs: &[SocketAddr],
        config: &ResilienceConfig,
    ) -> Vec<PollPlane> {
        thread::scope(|scope| {
            let handles: Vec<_> = bound
                .into_iter()
                .map(|b| {
                    let config = config.clone();
                    scope.spawn(move || {
                        b.establish_resilient(addrs, Duration::from_secs(10), config)
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    /// Fault-free resilient runs behave exactly like the plain poll plane.
    #[test]
    fn resilient_all_to_all_parity_without_faults() {
        let (bound, addrs) = bind_cluster(3);
        let planes = establish_resilient_all(bound, &addrs, &ResilienceConfig::default());
        let results: Vec<Vec<usize>> = thread::scope(|scope| {
            let handles: Vec<_> = planes
                .into_iter()
                .map(|mut p| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for s in 0..4u32 {
                            for _ in 0..=s {
                                p.broadcast(s, &[p.server_id() as u8, s as u8]).unwrap();
                            }
                            p.end_superstep(s).unwrap();
                            let got = p.collect(s).unwrap();
                            assert!(got.iter().all(|w| w.len() == 2 && w[1] == s as u8));
                            p.acknowledge(s).unwrap();
                            seen.push(got.len());
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for seen in results {
            assert_eq!(seen, vec![2, 4, 6, 8]);
        }
    }

    /// A connection cut at a superstep boundary recovers via redial + replay,
    /// and every superstep still collects exactly once per peer per message.
    #[test]
    fn boundary_cut_recovers_with_exactly_once_delivery() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_resilient_all(bound, &addrs, &ResilienceConfig::default());
        let p1 = planes.pop().unwrap();
        let p0 = planes.pop().unwrap();
        // Server 0 severs its link to server 1 right after superstep 1 ends:
        // server 1 sees a full superstep then a FIN, redials, and resumes.
        let mut p0 = FaultPlane::new(p0, CutPlan::explicit(vec![(1, 1)]));

        let run = |p: &mut dyn BroadcastPlane| {
            let id = p.server_id();
            let peer = 1 - id;
            for s in 0..5u32 {
                p.broadcast(s, &[id as u8, s as u8]).unwrap();
                p.end_superstep(s).unwrap();
                let got = p.collect(s).unwrap();
                assert_eq!(
                    got.len(),
                    1,
                    "server {id} superstep {s}: exactly one message expected"
                );
                assert_eq!(&got[0][..], &[peer as u8, s as u8]);
                p.acknowledge(s).unwrap();
            }
        };
        thread::scope(|scope| {
            let h0 = scope.spawn(move || run(&mut p0));
            let mut p1 = p1;
            let h1 = scope.spawn(move || run(&mut p1));
            h0.join().unwrap();
            h1.join().unwrap();
        });
    }

    /// Both directions cut at once (a reconnect storm, here at different
    /// supersteps each) still converges to exactly-once delivery.
    #[test]
    fn mutual_cuts_still_converge() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_resilient_all(bound, &addrs, &ResilienceConfig::default());
        let p1 = planes.pop().unwrap();
        let p0 = planes.pop().unwrap();
        let mut p0 = FaultPlane::new(p0, CutPlan::explicit(vec![(1, 1), (2, 1)]));
        let mut p1 = FaultPlane::new(p1, CutPlan::explicit(vec![(1, 0)]));

        let run = |p: &mut dyn BroadcastPlane| {
            let id = p.server_id();
            let peer = 1 - id;
            for s in 0..5u32 {
                p.broadcast(s, &[id as u8, s as u8]).unwrap();
                p.end_superstep(s).unwrap();
                let got = p.collect(s).unwrap();
                assert_eq!(got.len(), 1, "server {id} superstep {s}");
                assert_eq!(&got[0][..], &[peer as u8, s as u8]);
                p.acknowledge(s).unwrap();
            }
        };
        thread::scope(|scope| {
            let h0 = scope.spawn(move || run(&mut p0));
            let h1 = scope.spawn(move || run(&mut p1));
            h0.join().unwrap();
            h1.join().unwrap();
        });
    }

    /// The recovery machinery also rides the portable spin poller — the
    /// resilient path must not depend on the Linux `poll(2)` shim (listener
    /// readiness degrades to opportunistic accept attempts).
    #[test]
    fn boundary_cut_recovers_on_the_spin_poller() {
        let (bound, addrs) = bind_cluster(2);
        let planes: Vec<PollPlane> = thread::scope(|scope| {
            let handles: Vec<_> = bound
                .into_iter()
                .map(|b| {
                    let addrs = &addrs;
                    scope.spawn(move || {
                        b.establish_resilient_with(
                            addrs,
                            Duration::from_secs(10),
                            ResilienceConfig::default(),
                            Box::new(SpinPoller::new()),
                        )
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut planes = planes.into_iter();
        let p0 = planes.next().unwrap();
        let p1 = planes.next().unwrap();
        let mut p0 = FaultPlane::new(p0, CutPlan::explicit(vec![(0, 1)]));
        let run = |p: &mut dyn BroadcastPlane| {
            let id = p.server_id();
            for s in 0..3u32 {
                p.broadcast(s, &[id as u8, s as u8]).unwrap();
                p.end_superstep(s).unwrap();
                let got = p.collect(s).unwrap();
                assert_eq!(got.len(), 1, "server {id} superstep {s}");
                p.acknowledge(s).unwrap();
            }
        };
        thread::scope(|scope| {
            let h0 = scope.spawn(move || run(&mut p0));
            let mut p1 = p1;
            let h1 = scope.spawn(move || run(&mut p1));
            h0.join().unwrap();
            h1.join().unwrap();
        });
    }

    /// A peer that never comes back is terminal — but only after the
    /// reconnect deadline, not on the first EOF.
    #[test]
    fn dead_peer_is_terminal_only_after_the_deadline() {
        let (bound, addrs) = bind_cluster(2);
        let config = ResilienceConfig {
            reconnect_deadline: Duration::from_millis(200),
            retry_backoff: Duration::from_millis(20),
            ..ResilienceConfig::default()
        };
        let mut planes = establish_resilient_all(bound, &addrs, &config);
        let p1 = planes.pop().unwrap();
        let mut p0 = planes.pop().unwrap();
        let start = Instant::now();
        // Simulate a crash, not a graceful exit: no goodbye ever reaches p0
        // (a killed process sends none) and no self-recovery runs.
        p1.crash();
        p0.end_superstep(0).unwrap();
        assert_eq!(p0.collect(0), Err(PlaneError::Disconnected));
        assert!(
            start.elapsed() >= Duration::from_millis(150),
            "terminal loss must wait out the reconnect deadline"
        );
    }

    /// Sabotaged resume handshakes (torn hello, then dropped hello) are
    /// retried until the fault budget runs out; establishment still succeeds.
    #[test]
    fn torn_and_dropped_handshakes_are_survived() {
        for fault in [HandshakeFault::Torn { bytes: 7 }, HandshakeFault::Drop] {
            let (bound, addrs) = bind_cluster(2);
            let mut iter = bound.into_iter();
            let b0 = iter.next().unwrap();
            let b1 = iter.next().unwrap();
            let faulty = ResilienceConfig {
                handshake_fault: Some(fault),
                handshake_fault_budget: 2,
                ..ResilienceConfig::default()
            };
            let (mut p0, mut p1) = thread::scope(|scope| {
                let addrs0 = &addrs;
                let h0 = scope.spawn(move || {
                    b0.establish_resilient(
                        addrs0,
                        Duration::from_secs(10),
                        ResilienceConfig::default(),
                    )
                    .unwrap()
                });
                let addrs1 = &addrs;
                let h1 = scope.spawn(move || {
                    b1.establish_resilient(addrs1, Duration::from_secs(10), faulty)
                        .unwrap()
                });
                (h0.join().unwrap(), h1.join().unwrap())
            });
            p0.broadcast(0, b"after-chaos").unwrap();
            p0.end_superstep(0).unwrap();
            p1.end_superstep(0).unwrap();
            let got = p1.collect(0).unwrap();
            assert_eq!(&got[0][..], b"after-chaos");
            assert!(p0.collect(0).unwrap().is_empty());
            // Ack like a real worker would: an unacked final superstep makes
            // the last plane to drop linger for its (now absent) peer.
            p1.acknowledge(0).unwrap();
            p0.acknowledge(0).unwrap();
        }
    }

    /// Severing an already-severed (or recovering) link is a harmless no-op.
    #[test]
    fn double_sever_is_idempotent() {
        let (bound, addrs) = bind_cluster(2);
        let mut planes = establish_resilient_all(bound, &addrs, &ResilienceConfig::default());
        let p1 = planes.pop().unwrap();
        let mut p0 = planes.pop().unwrap();
        p0.sever_peer(1);
        p0.sever_peer(1);
        let run = |mut p: PollPlane| {
            let id = p.server_id();
            for s in 0..3u32 {
                p.broadcast(s, &[id as u8, s as u8]).unwrap();
                p.end_superstep(s).unwrap();
                assert_eq!(p.collect(s).unwrap().len(), 1, "server {id} superstep {s}");
                p.acknowledge(s).unwrap();
            }
        };
        thread::scope(|scope| {
            let h0 = scope.spawn(move || run(p0));
            let h1 = scope.spawn(move || run(p1));
            h0.join().unwrap();
            h1.join().unwrap();
        });
    }

    /// A cluster bootstrapped from one seed address (no static peer table)
    /// converges its address books and reaches all-to-all parity.
    #[test]
    fn seed_discovered_cluster_reaches_parity() {
        let (bound, addrs) = bind_cluster(3);
        let seed = addrs[0];
        let planes: Vec<PollPlane> = thread::scope(|scope| {
            let handles: Vec<_> = bound
                .into_iter()
                .map(|b| {
                    scope.spawn(move || {
                        let view = b.discover(&[seed], Duration::from_secs(10)).unwrap();
                        assert_eq!(view.incarnation, 0, "fresh bootstrap never bumps");
                        b.establish_resilient_discovered(
                            view,
                            Duration::from_secs(10),
                            ResilienceConfig::default(),
                        )
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let results: Vec<Vec<usize>> = thread::scope(|scope| {
            let handles: Vec<_> = planes
                .into_iter()
                .map(|mut p| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for s in 0..4u32 {
                            p.broadcast(s, &[p.server_id() as u8, s as u8]).unwrap();
                            p.end_superstep(s).unwrap();
                            let got = p.collect(s).unwrap();
                            assert!(got.iter().all(|w| w.len() == 2 && w[1] == s as u8));
                            p.acknowledge(s).unwrap();
                            seen.push(got.len());
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for seen in results {
            assert_eq!(seen, vec![2, 2, 2, 2]);
        }
    }

    /// The tentpole scenario on the event-loop backend: a peer is killed
    /// mid-run and a replacement with the same server id rejoins **at a
    /// different address** via seed discovery. The survivor learns the fresh
    /// address through the `GHHM` exchange on its listener, its redial
    /// consults the gossiped book, and the run finishes exactly-once.
    #[test]
    fn replacement_at_a_new_address_is_adopted_mid_run() {
        let (bound, addrs) = bind_cluster(2);
        let seed = addrs[0];
        let survivor_config = ResilienceConfig {
            reconnect_deadline: Duration::from_secs(10),
            retry_backoff: Duration::from_millis(10),
            ..ResilienceConfig::default()
        };
        let victim_config = ResilienceConfig {
            reconnect_deadline: Duration::from_millis(300),
            retry_backoff: Duration::from_millis(10),
            ..ResilienceConfig::default()
        };
        let (p0, p1) = thread::scope(|scope| {
            let mut iter = bound.into_iter();
            let b0 = iter.next().unwrap();
            let b1 = iter.next().unwrap();
            let c0 = survivor_config.clone();
            let c1 = victim_config.clone();
            let h0 = scope.spawn(move || {
                let view = b0.discover(&[seed], Duration::from_secs(10)).unwrap();
                b0.establish_resilient_discovered(view, Duration::from_secs(10), c0)
                    .unwrap()
            });
            let h1 = scope.spawn(move || {
                let view = b1.discover(&[seed], Duration::from_secs(10)).unwrap();
                b1.establish_resilient_discovered(view, Duration::from_secs(10), c1)
                    .unwrap()
            });
            (h0.join().unwrap(), h1.join().unwrap())
        });

        const TOTAL: u32 = 6;
        const CRASH_AT: u32 = 3;
        // Per-server progress (supersteps fully collected + acked), so the
        // victim can crash only once the survivor has absorbed everything it
        // broadcast pre-crash — the multiprocess driver guarantees the same
        // by killing well after the victim's checkpoint lands. Crashing
        // earlier can destroy queued frames the survivor still needs, which
        // no replacement can replay (its log starts at the resume cursor):
        // that is *correctly* terminal, but it is not this test's scenario.
        let progress = [
            std::sync::atomic::AtomicU32::new(0),
            std::sync::atomic::AtomicU32::new(0),
        ];
        let run = |p: &mut PollPlane, from: u32, to: u32| {
            let id = p.server_id();
            let peer = 1 - id;
            for s in from..to {
                p.broadcast(s, &[id as u8, s as u8]).unwrap();
                p.end_superstep(s).unwrap();
                let got = p.collect(s).unwrap();
                assert_eq!(got.len(), 1, "server {id} superstep {s}");
                assert_eq!(&got[0][..], &[peer as u8, s as u8]);
                p.acknowledge(s).unwrap();
                progress[id as usize].store(s + 1, std::sync::atomic::Ordering::Release);
            }
        };
        thread::scope(|scope| {
            let h0 = scope.spawn(|| {
                let mut p0 = p0;
                run(&mut p0, 0, TOTAL);
            });
            let h1 = scope.spawn(|| {
                let mut p1 = p1;
                run(&mut p1, 0, CRASH_AT);
                while progress[0].load(std::sync::atomic::Ordering::Acquire) < CRASH_AT {
                    thread::sleep(Duration::from_millis(1));
                }
                // Die like a killed process: no goodbye, no linger, no
                // self-recovery — the survivor must hold the door open.
                p1.crash();
                let rb = PollPlane::bind(1, 2, "127.0.0.1:0").unwrap();
                assert_ne!(rb.local_addr().unwrap(), addrs[1]);
                let view = rb.discover(&[seed], Duration::from_secs(10)).unwrap();
                // The replacement runs to a clean goodbye, so it does not
                // need the victim's short crash-linger deadline — and must
                // not have it: if its dial and the survivor's book-guided
                // redial cross, the duplicate-connection re-park plus
                // backoff can outlast 300ms on a loaded machine.
                let config = ResilienceConfig {
                    resume_from: CRASH_AT,
                    ..survivor_config.clone()
                };
                let mut p1 = rb
                    .establish_resilient_discovered(view, Duration::from_secs(10), config)
                    .unwrap();
                run(&mut p1, CRASH_AT, TOTAL);
            });
            h0.join().unwrap();
            h1.join().unwrap();
        });
    }
}
