//! Deterministic reduction of per-worker metrics into [`ClusterMetrics`].
//!
//! Workers stream one [`MetricsSlice`] per (superstep, server) to the executor
//! thread in arbitrary arrival order; the reducer re-assembles them into
//! per-superstep reports ordered by server id, so the reduced metrics are
//! independent of thread scheduling.

use crate::worker::MetricsSlice;
use graphh_cluster::{ClusterMetrics, CostModel, SuperstepReport};

/// Reduced metrics plus the per-superstep updated-vertex counts.
pub struct ReducedMetrics {
    /// Per-superstep metrics with simulated seconds filled in.
    pub metrics: ClusterMetrics,
    /// Fraction of vertices updated per superstep.
    pub updated_ratio_per_superstep: Vec<f64>,
}

/// Assemble `slices` (any order) into finalized superstep reports.
///
/// Every superstep must have exactly one slice per server; supersteps are
/// emitted in index order.
pub fn reduce_metrics(
    mut slices: Vec<MetricsSlice>,
    num_servers: u32,
    num_vertices: u64,
    cost_model: &CostModel,
) -> ReducedMetrics {
    // Deterministic order: by (superstep, server id).
    slices.sort_by_key(|s| (s.superstep, s.server));
    let mut metrics = ClusterMetrics::default();
    let mut updated_ratio = Vec::new();
    let mut iter = slices.into_iter().peekable();
    while let Some(superstep) = iter.peek().map(|s| s.superstep) {
        let mut report = SuperstepReport::new(superstep, num_servers);
        let mut total_updates = 0u64;
        for expected_sid in 0..num_servers {
            let slice = iter
                .next()
                .expect("one metrics slice per server per superstep");
            assert_eq!(slice.superstep, superstep, "metrics slice misaligned");
            assert_eq!(slice.server, expected_sid, "metrics slice misaligned");
            report.servers[expected_sid as usize] = slice.metrics;
            total_updates = slice.total_updates;
        }
        report.total_vertices_updated = total_updates;
        updated_ratio.push(total_updates as f64 / num_vertices as f64);
        metrics.push(cost_model.finalize(report));
    }
    ReducedMetrics {
        metrics,
        updated_ratio_per_superstep: updated_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphh_cluster::{ClusterConfig, ServerMetrics};

    #[test]
    fn slices_reassemble_in_server_order_regardless_of_arrival() {
        let cost = CostModel::new(ClusterConfig::paper_testbed(2));
        let slice = |superstep, server, edges| MetricsSlice {
            superstep,
            server,
            metrics: ServerMetrics {
                edges_processed: edges,
                ..Default::default()
            },
            total_updates: 10,
        };
        // Deliberately scrambled arrival order.
        let slices = vec![
            slice(1, 1, 40),
            slice(0, 1, 20),
            slice(1, 0, 30),
            slice(0, 0, 10),
        ];
        let reduced = reduce_metrics(slices, 2, 100, &cost);
        assert_eq!(reduced.metrics.num_supersteps(), 2);
        let s0 = &reduced.metrics.supersteps[0];
        assert_eq!(s0.servers[0].edges_processed, 10);
        assert_eq!(s0.servers[1].edges_processed, 20);
        assert_eq!(s0.total_vertices_updated, 10);
        assert!(s0.simulated_seconds > 0.0);
        assert_eq!(reduced.updated_ratio_per_superstep, vec![0.1, 0.1]);
    }
}
