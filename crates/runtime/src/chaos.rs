//! The chaos harness: deterministic fault injection over any broadcast plane.
//!
//! Fault tolerance that is not *tested* against real failures is decoration.
//! This module makes failure injection a first-class subsystem: a
//! [`FaultPlane`] wraps any [`BroadcastPlane`] whose transport can sever a
//! live peer connection ([`SeverPeer`]) and cuts connections at exact
//! superstep boundaries according to a [`CutPlan`]. Plans are either explicit
//! (`cut peer 2 at superstep 3`) or derived from a seed by a fixed xorshift
//! generator — either way the fault schedule is a pure function of its
//! inputs, so a chaos test that fails replays byte-identically from its seed.
//!
//! Cuts are injected immediately after [`BroadcastPlane::end_superstep`]
//! returns: every frame of the superstep is queued on the stream before the
//! cut, which exercises the hard case — the peer may observe a torn tail of
//! the in-flight superstep and must recover it from replay (see
//! `crate::frame::SuperstepCollector`'s resume discipline and
//! `crate::resume::ReplayLog`).
//!
//! Handshake-level faults (torn/duplicated/dropped resume hellos) are
//! injected by the resilient transports themselves via
//! [`crate::resume::ResilienceConfig`], since they happen below the plane
//! API.

use crate::frame::{PlaneError, WireMessage};
use crate::plane::BroadcastPlane;
use graphh_graph::ids::ServerId;

/// A transport that can sever its live connection to one peer on demand —
/// simulating a transient network failure from this side. The severed link
/// must look to both sides exactly like a real mid-run TCP failure (EOF /
/// reset), and the transport's recovery machinery (redial, resume handshake,
/// replay) must then bring it back without help.
pub trait SeverPeer {
    /// Cut the live connection to `peer`. A no-op if the link is already
    /// down; never panics and never aborts the run by itself.
    fn sever_peer(&mut self, peer: ServerId);
}

/// A deterministic schedule of connection cuts: `(superstep, peer)` pairs
/// meaning "after ending `superstep`, sever `peer`".
#[derive(Debug, Clone, Default)]
pub struct CutPlan {
    cuts: Vec<(u32, ServerId)>,
}

impl CutPlan {
    /// No faults at all (the wrapper then delegates transparently).
    pub fn none() -> Self {
        Self::default()
    }

    /// An explicit schedule of `(superstep, peer)` cuts.
    pub fn explicit(cuts: Vec<(u32, ServerId)>) -> Self {
        Self { cuts }
    }

    /// A seed-derived schedule: `count` cuts, each at a superstep in
    /// `0..max_superstep` against one of `peers`, drawn from a fixed
    /// xorshift64 stream. The same `(seed, max_superstep, peers, count)`
    /// always yields the same plan on every platform.
    pub fn seeded(seed: u64, max_superstep: u32, peers: &[ServerId], count: usize) -> Self {
        if peers.is_empty() || max_superstep == 0 {
            return Self::none();
        }
        // xorshift64 (Marsaglia): small, portable, and plenty for schedules.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cuts = (0..count)
            .map(|_| {
                let superstep = (next() % u64::from(max_superstep)) as u32;
                let peer = peers[(next() % peers.len() as u64) as usize];
                (superstep, peer)
            })
            .collect();
        Self { cuts }
    }

    /// The peers scheduled to be cut right after `superstep` ends.
    pub fn cuts_after(&self, superstep: u32) -> impl Iterator<Item = ServerId> + '_ {
        self.cuts
            .iter()
            .filter(move |&&(s, _)| s == superstep)
            .map(|&(_, p)| p)
    }

    /// Every scheduled cut, in plan order.
    pub fn cuts(&self) -> &[(u32, ServerId)] {
        &self.cuts
    }
}

/// A [`BroadcastPlane`] wrapper that injects the [`CutPlan`]'s connection
/// cuts into the inner plane at superstep boundaries. Everything else
/// delegates untouched, so a `FaultPlane` with an empty plan is
/// behavior-identical to the inner plane.
pub struct FaultPlane<P: BroadcastPlane + SeverPeer> {
    inner: P,
    plan: CutPlan,
}

impl<P: BroadcastPlane + SeverPeer> FaultPlane<P> {
    /// Wrap `inner`, cutting connections per `plan`.
    pub fn new(inner: P, plan: CutPlan) -> Self {
        Self { inner, plan }
    }

    /// The wrapped plane (e.g. to inspect transport state after a run).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwrap, discarding the plan.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: BroadcastPlane + SeverPeer> BroadcastPlane for FaultPlane<P> {
    fn num_servers(&self) -> u32 {
        self.inner.num_servers()
    }

    fn server_id(&self) -> ServerId {
        self.inner.server_id()
    }

    fn broadcast(&mut self, superstep: u32, wire: &[u8]) -> Result<(), PlaneError> {
        self.inner.broadcast(superstep, wire)
    }

    fn end_superstep(&mut self, superstep: u32) -> Result<(), PlaneError> {
        self.inner.end_superstep(superstep)?;
        // Cut *after* the superstep's frames (including the end marker) are
        // queued: the victim link carries a full superstep that may tear
        // anywhere in flight, which is exactly what recovery must survive.
        for peer in self.plan.cuts_after(superstep) {
            self.inner.sever_peer(peer);
        }
        Ok(())
    }

    fn collect(&mut self, superstep: u32) -> Result<Vec<WireMessage>, PlaneError> {
        self.inner.collect(superstep)
    }

    fn acknowledge(&mut self, superstep: u32) -> Result<(), PlaneError> {
        self.inner.acknowledge(superstep)
    }

    fn abort(&mut self) {
        self.inner.abort()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let peers = [0, 2, 3];
        let a = CutPlan::seeded(2017, 8, &peers, 16);
        let b = CutPlan::seeded(2017, 8, &peers, 16);
        assert_eq!(a.cuts(), b.cuts(), "same seed, same plan");
        assert_eq!(a.cuts().len(), 16);
        for &(s, p) in a.cuts() {
            assert!(s < 8);
            assert!(peers.contains(&p));
        }
        let c = CutPlan::seeded(2018, 8, &peers, 16);
        assert_ne!(a.cuts(), c.cuts(), "different seed, different plan");
        assert!(CutPlan::seeded(1, 0, &peers, 4).cuts().is_empty());
        assert!(CutPlan::seeded(1, 8, &[], 4).cuts().is_empty());
    }

    #[test]
    fn cuts_fire_at_their_superstep_only() {
        let plan = CutPlan::explicit(vec![(1, 2), (1, 0), (3, 2)]);
        assert_eq!(plan.cuts_after(0).count(), 0);
        assert_eq!(plan.cuts_after(1).collect::<Vec<_>>(), vec![2, 0]);
        assert_eq!(plan.cuts_after(3).collect::<Vec<_>>(), vec![2]);
    }
}
